//! Every workload must execute cleanly; every bug must be findable and
//! replayable by Light with Theorem 1 correlation.

use light_core::Light;
use light_runtime::{run, ExecConfig, SchedulerSpec};
use light_workloads::{benchmarks, bugs};
use std::sync::Arc;

#[test]
fn benchmarks_run_cleanly_under_free_scheduling() {
    for w in benchmarks() {
        let program = w.program();
        let args = w.args(4, 1);
        let out = run(&program, &args, ExecConfig::default()).expect("setup");
        assert!(
            out.completed(),
            "{} faulted: {}",
            w.name,
            out.fault.unwrap()
        );
        assert!(out.stats.events > 0, "{} had no shared accesses", w.name);
    }
}

#[test]
fn benchmarks_run_cleanly_under_chaos() {
    for w in benchmarks() {
        let program = w.program();
        // Tiny scale: chaos serializes execution.
        let args = w.args(3, 1).iter().map(|&a| a.min(40)).collect::<Vec<_>>();
        let config = ExecConfig {
            scheduler: SchedulerSpec::Chaos { seed: 1 },
            ..ExecConfig::default()
        };
        let out = run(&program, &args, config).expect("setup");
        assert!(
            out.completed(),
            "{} faulted under chaos: {}",
            w.name,
            out.fault.unwrap()
        );
    }
}

#[test]
fn benchmarks_record_and_replay_with_light() {
    for w in benchmarks() {
        let program = w.program();
        let light = Light::new(program);
        // Reduced scale keeps schedules small.
        let args: Vec<i64> = w.args(3, 1).iter().map(|&a| a.min(30)).collect();
        let (recording, original) = light.record(&args, 11).expect("record");
        assert!(
            original.completed(),
            "{} faulted during recording: {}",
            w.name,
            original.fault.unwrap()
        );
        let report = light.replay(&recording).unwrap_or_else(|e| {
            panic!("{}: replay failed: {e}", w.name);
        });
        assert!(
            report.correlated,
            "{}: replay fault {:?}",
            w.name,
            report.outcome.fault
        );
        assert_eq!(
            original.prints, report.outcome.prints,
            "{}: replay output differs",
            w.name
        );
    }
}

#[test]
fn all_bugs_are_found_and_replayed_by_light() {
    for bug in bugs() {
        let program = bug.program();
        let light = Light::new(Arc::clone(&program));
        let found = light.find_bug(&bug.args, bug.search_seeds.clone());
        let (recording, original) = found.unwrap_or_else(|| {
            panic!("{}: no chaos seed exposed the bug", bug.name);
        });
        let fault = original.fault.as_ref().expect("fault present");
        assert_eq!(
            fault.kind, bug.expect_kind,
            "{}: unexpected fault kind ({fault})",
            bug.name
        );
        let report = light.replay(&recording).unwrap_or_else(|e| {
            panic!("{}: replay failed: {e}", bug.name);
        });
        assert!(
            report.correlated,
            "{}: replay not correlated; original {fault}, replay {:?}",
            bug.name, report.outcome.fault
        );
    }
}
