//! The evaluation workloads of the Light paper, as LIR programs.
//!
//! Two catalogs:
//!
//! - [`benchmarks`] — 24 programs mirroring the paper's suites (3 Java
//!   Grande kernels, 8 STAMP-style transactional applications, 7 server /
//!   crawler applications, 6 Dacapo-style applications), used by the
//!   Figure 4/5/7 overhead and space experiments;
//! - [`bugs`] — 8 concurrency-bug programs modeled on the Apache issues of
//!   Figure 6 (Cache4j, FtpServer, Lucene-481, Lucene-651, Tomcat-37458,
//!   Tomcat-50885, Tomcat-53498, Weblech), used by the Figure 6 / Table 1
//!   reproduction experiments.
//!
//! Absolute scales are laptop-sized; the *shapes* (shared-access density,
//! locality, synchronization idioms, solver-opaque constructs) mirror the
//! originals. See `DESIGN.md` for the substitution rationale.

mod bench_programs;
pub mod contention;
pub mod generators;
mod bug_programs;

pub use bench_programs::{benchmarks, synthetic, Suite, Workload};
pub use bug_programs::{bugs, BugCase};

use lir::Program;
use std::sync::Arc;

pub(crate) fn parse_program(name: &str, source: &str) -> Arc<Program> {
    match lir::parse(source) {
        Ok(p) => Arc::new(p),
        Err(e) => panic!("workload `{name}` does not parse: {e}"),
    }
}

/// A notify-storm stress program, separate from both catalogs: `t`
/// waiters park on one monitor and the main thread hands out one token
/// per round with a single `notify`, so *which* waiter wakes is a real
/// scheduling decision on every round. Each woken waiter prints its id
/// while still holding the monitor, making the wake order observable
/// through [`light_runtime::RunOutcome::prints`]. Used by the wake-all
/// replay tests: a replayer that wakes every waiter must still steer the
/// recorded waiter through the monitor first.
pub fn notify_storm() -> Arc<Program> {
    parse_program("notify-storm", NOTIFY_STORM)
}

const NOTIFY_STORM: &str = "
// t waiters block on one monitor; main releases one token per round with
// a single notify. Consumers print their id in wake order.
global mon; global ready; global tokens; global served;
class M { field pad; }

fn waiter(id) {
    sync (mon) {
        ready = ready + 1;
        notify_all(mon);
        while (tokens == 0) { wait(mon); }
        tokens = tokens - 1;
        served = served + 1;
        print(id);
        notify_all(mon);
    }
}

fn main(t) {
    mon = new M();
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn waiter(i); i = i + 1; }
    sync (mon) { while (ready < t) { wait(mon); } }
    let r = 0;
    while (r < t) {
        sync (mon) {
            tokens = tokens + 1;
            notify(mon);
        }
        sync (mon) { while (tokens > 0) { wait(mon); } }
        r = r + 1;
    }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    assert(served == t);
}";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_parse_and_have_main() {
        let all = benchmarks();
        assert_eq!(all.len(), 24);
        for w in &all {
            let p = w.program();
            assert!(p.entry.is_some(), "{} has no main", w.name);
        }
    }

    #[test]
    fn all_bugs_parse() {
        let all = bugs();
        assert_eq!(all.len(), 8);
        for b in &all {
            let p = b.program();
            assert!(p.entry.is_some(), "{} has no main", b.name);
        }
    }

    #[test]
    fn benchmark_names_are_unique() {
        let all = benchmarks();
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn notify_storm_parses_and_has_main() {
        let p = notify_storm();
        assert!(p.entry.is_some());
    }

    #[test]
    fn synthetic_wide_recording_decomposes_into_independent_components() {
        let turbo = light_core::TurboOptions::default();
        let rec = synthetic::wide_recording(8, 6);
        let sys = light_core::ConstraintSystem::build(&rec);
        let (_, _, stats) = sys.solve_with(&rec, Some(&turbo)).expect("satisfiable");
        assert_eq!(stats.expect("turbo stats").components, 8);

        let narrow = synthetic::narrow_recording(48);
        let sys = light_core::ConstraintSystem::build(&narrow);
        let (_, _, stats) = sys.solve_with(&narrow, Some(&turbo)).expect("satisfiable");
        assert_eq!(stats.expect("turbo stats").components, 1);
    }

    #[test]
    fn clap_support_split_matches_paper() {
        // The paper: CLAP fails on 5 of the 8 bugs (HashMap-style types).
        let all = bugs();
        let unsupported = all.iter().filter(|b| !b.clap_supported).count();
        assert_eq!(unsupported, 5);
        // Chimera misses 3 (serialized methods).
        let hidden = all.iter().filter(|b| !b.chimera_reproducible).count();
        assert_eq!(hidden, 3);
    }
}
