//! Parameterized workload generators: synthesize LIR programs with
//! controlled shared-memory characteristics, for calibration sweeps and
//! stress tests beyond the fixed 24-benchmark catalog.

use lir::Program;
use std::fmt::Write as _;
use std::sync::Arc;

/// Shape parameters of a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorParams {
    /// Worker thread count.
    pub threads: usize,
    /// Iterations per worker.
    pub iterations: usize,
    /// Distinct shared counters.
    pub locations: usize,
    /// Of 100 accesses, how many are reads (the rest are
    /// read-modify-writes of the counter).
    pub read_pct: u8,
    /// Whether accesses run under a single global lock.
    pub locked: bool,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        Self {
            threads: 4,
            iterations: 200,
            locations: 8,
            read_pct: 60,
            locked: false,
        }
    }
}

/// A shared-counter stress workload: each worker walks the counter array
/// with its own stride, reading or updating according to `read_pct`.
///
/// The generated program prints a checksum so record/replay equivalence is
/// observable.
pub fn counter_stress(params: GeneratorParams) -> Arc<Program> {
    let mut src = String::new();
    let _ = writeln!(src, "global counters; global checksum; global lock;");
    let _ = writeln!(src, "class L {{ field pad; }}");
    let _ = writeln!(src, "fn worker(id, iters, nlocs) {{");
    let _ = writeln!(src, "    let i = 0;\n    let local = 0;");
    let _ = writeln!(src, "    while (i < iters) {{");
    let _ = writeln!(src, "        let slot = (id * 7 + i * 13) % nlocs;");
    let _ = writeln!(src, "        let pick = (id * 31 + i * 17) % 100;");
    let body_read = "local = local + counters[slot];";
    let body_write = "counters[slot] = counters[slot] + 1;";
    if params.locked {
        let _ = writeln!(
            src,
            "        sync (lock) {{ if (pick < {}) {{ {body_read} }} else {{ {body_write} }} }}",
            params.read_pct
        );
    } else {
        let _ = writeln!(
            src,
            "        if (pick < {}) {{ {body_read} }} else {{ {body_write} }}",
            params.read_pct
        );
    }
    let _ = writeln!(src, "        i = i + 1;\n    }}");
    if params.locked {
        let _ = writeln!(src, "    sync (lock) {{ checksum = checksum + local; }}");
    } else {
        let _ = writeln!(src, "    checksum = checksum + local;");
    }
    let _ = writeln!(src, "}}");
    let _ = writeln!(src, "fn main() {{");
    let _ = writeln!(src, "    lock = new L();");
    let _ = writeln!(src, "    counters = new [{}];", params.locations);
    let _ = writeln!(src, "    let hs = new [{}];", params.threads);
    let _ = writeln!(src, "    let i = 0;");
    let _ = writeln!(
        src,
        "    while (i < {}) {{ hs[i] = spawn worker(i, {}, {}); i = i + 1; }}",
        params.threads, params.iterations, params.locations
    );
    let _ = writeln!(
        src,
        "    let j = 0;\n    while (j < {}) {{ join hs[j]; j = j + 1; }}",
        params.threads
    );
    let _ = writeln!(src, "    print(checksum);\n}}");
    crate::parse_program("generated.counter_stress", &src)
}

/// A producer/consumer pipeline of `stages` hand-offs through bounded
/// wait/notify queues — stresses the Section 4.3 synchronization modeling.
pub fn pipeline(stages: usize, items: usize) -> Arc<Program> {
    assert!(stages >= 1, "pipeline needs at least one stage");
    let mut src = String::new();
    for s in 0..=stages {
        let _ = writeln!(src, "global q{s}; global n{s};");
    }
    let _ = writeln!(src, "global mon; global done;");
    let _ = writeln!(src, "class M {{ field pad; }}");
    // Stage k moves items from queue k to queue k+1, transforming them.
    for s in 0..stages {
        let _ = writeln!(src, "fn stage{s}(count) {{");
        let _ = writeln!(src, "    let moved = 0;");
        let _ = writeln!(src, "    while (moved < count) {{");
        let _ = writeln!(src, "        sync (mon) {{");
        let _ = writeln!(src, "            while (n{s} == 0) {{ wait(mon); }}");
        let _ = writeln!(src, "            n{s} = n{s} - 1;");
        let _ = writeln!(src, "            let v = q{s};");
        let _ = writeln!(src, "            q{} = v + 1;", s + 1);
        let _ = writeln!(src, "            n{} = n{} + 1;", s + 1, s + 1);
        let _ = writeln!(src, "            notify_all(mon);");
        let _ = writeln!(src, "        }}");
        let _ = writeln!(src, "        moved = moved + 1;");
        let _ = writeln!(src, "    }}");
        let _ = writeln!(src, "}}");
    }
    let _ = writeln!(src, "fn main() {{");
    let _ = writeln!(src, "    mon = new M();");
    let _ = writeln!(src, "    let hs = new [{stages}];");
    for s in 0..stages {
        let _ = writeln!(src, "    hs[{s}] = spawn stage{s}({items});");
    }
    // Feed the first queue.
    let _ = writeln!(src, "    let fed = 0;");
    let _ = writeln!(src, "    while (fed < {items}) {{");
    let _ = writeln!(src, "        sync (mon) {{");
    let _ = writeln!(src, "            q0 = fed;");
    let _ = writeln!(src, "            n0 = n0 + 1;");
    let _ = writeln!(src, "            notify_all(mon);");
    let _ = writeln!(src, "            while (n0 > 0) {{ wait(mon); }}");
    let _ = writeln!(src, "        }}");
    let _ = writeln!(src, "        fed = fed + 1;");
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "    let j = 0;");
    let _ = writeln!(src, "    while (j < {stages}) {{ join hs[j]; j = j + 1; }}");
    let _ = writeln!(src, "    print(q{stages});");
    let _ = writeln!(src, "    print(n{stages});");
    let _ = writeln!(src, "}}");
    crate::parse_program("generated.pipeline", &src)
}

/// A lock-hierarchy workload: `nlocks` locks always acquired in ascending
/// order (deadlock-free by construction), each protecting one counter.
pub fn lock_ladder(nlocks: usize, threads: usize, iterations: usize) -> Arc<Program> {
    assert!((1..=8).contains(&nlocks), "1..=8 locks supported");
    let mut src = String::new();
    for l in 0..nlocks {
        let _ = writeln!(src, "global lk{l}; global c{l};");
    }
    let _ = writeln!(src, "class L {{ field pad; }}");
    let _ = writeln!(src, "fn worker(id, iters) {{");
    let _ = writeln!(src, "    let i = 0;");
    let _ = writeln!(src, "    while (i < iters) {{");
    // Nested ascending acquisition.
    for l in 0..nlocks {
        let _ = writeln!(src, "        sync (lk{l}) {{");
    }
    for l in 0..nlocks {
        let _ = writeln!(src, "        c{l} = c{l} + 1;");
    }
    for _ in 0..nlocks {
        let _ = writeln!(src, "        }}");
    }
    let _ = writeln!(src, "        i = i + 1;");
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "}}");
    let _ = writeln!(src, "fn main() {{");
    for l in 0..nlocks {
        let _ = writeln!(src, "    lk{l} = new L();");
    }
    let _ = writeln!(src, "    let hs = new [{threads}];");
    let _ = writeln!(src, "    let i = 0;");
    let _ = writeln!(
        src,
        "    while (i < {threads}) {{ hs[i] = spawn worker(i, {iterations}); i = i + 1; }}"
    );
    let _ = writeln!(
        src,
        "    let j = 0;\n    while (j < {threads}) {{ join hs[j]; j = j + 1; }}"
    );
    for l in 0..nlocks {
        let _ = writeln!(src, "    assert(c{l} == {threads} * {iterations});");
    }
    let _ = writeln!(src, "}}");
    crate::parse_program("generated.lock_ladder", &src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::{run, ExecConfig};

    #[test]
    fn counter_stress_runs_and_replays() {
        for locked in [false, true] {
            let params = GeneratorParams {
                threads: 3,
                iterations: 60,
                locations: 5,
                read_pct: 50,
                locked,
            };
            let program = counter_stress(params);
            let out = run(&program, &[], ExecConfig::default()).unwrap();
            assert!(out.completed(), "locked={locked}: {:?}", out.fault);
        }
    }

    #[test]
    fn pipeline_moves_all_items() {
        let program = pipeline(3, 10);
        let out = run(&program, &[], ExecConfig::default()).unwrap();
        assert!(out.completed(), "{:?}", out.fault);
        // n3 == items: every item reached the last queue.
        assert_eq!(out.prints[1], "10");
    }

    #[test]
    fn lock_ladder_counts_exactly() {
        let program = lock_ladder(4, 3, 25);
        let out = run(&program, &[], ExecConfig::default()).unwrap();
        assert!(out.completed(), "{:?}", out.fault);
    }

    #[test]
    fn generated_workloads_record_and_replay() {
        use light_core::Light;
        for program in [
            counter_stress(GeneratorParams {
                threads: 2,
                iterations: 30,
                locations: 4,
                read_pct: 70,
                locked: false,
            }),
            pipeline(2, 6),
            lock_ladder(2, 2, 10),
        ] {
            let light = Light::new(program);
            let (recording, original) = light.record(&[], 3).unwrap();
            assert!(original.completed(), "{:?}", original.fault);
            let report = light.replay(&recording).unwrap();
            assert!(report.correlated, "{:?}", report.outcome.fault);
            assert_eq!(original.prints, report.outcome.prints);
        }
    }
}
