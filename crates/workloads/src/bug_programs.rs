//! The 8 concurrency-bug programs of Figure 6, modeled on the Apache
//! issues the paper evaluates. Each program is correct under most
//! interleavings and faults under specific ones, found deterministically
//! with seeded chaos scheduling.
//!
//! The catalog encodes the paper's comparison matrix:
//!
//! - `clap_supported == false` for the five bugs whose code uses
//!   `HashMap`-style collections or hash computations (no solver theory —
//!   CLAP's documented failure mode);
//! - `chimera_reproducible == false` for the three bugs living in racy
//!   non-blocking methods, which Chimera's transformation serializes
//!   whole, hiding the buggy interleaving.

use light_runtime::FaultKind;
use lir::Program;
use std::ops::Range;
use std::sync::Arc;

/// One bug case.
#[derive(Debug, Clone)]
pub struct BugCase {
    pub name: &'static str,
    /// The Apache issue the scenario models.
    pub models: &'static str,
    pub source: &'static str,
    pub args: Vec<i64>,
    /// Chaos seeds to scan when hunting the bug.
    pub search_seeds: Range<u64>,
    /// The fault kind the bug manifests as.
    pub expect_kind: FaultKind,
    /// Whether a computation-based (CLAP-style) tool can encode the
    /// program (paper: fails on HashMap-style constructs).
    pub clap_supported: bool,
    /// Whether the Chimera-style transformation leaves the bug
    /// manifestable (paper: serialization hides three bugs).
    pub chimera_reproducible: bool,
}

impl BugCase {
    /// Parses the program.
    pub fn program(&self) -> Arc<Program> {
        crate::parse_program(self.name, self.source)
    }
}

/// The eight bugs, in the paper's order.
pub fn bugs() -> Vec<BugCase> {
    vec![
        BugCase {
            name: "cache4j",
            models: "Cache4j CacheObject._createTime TOCTOU",
            source: BUG_CACHE4J,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::NullDeref,
            clap_supported: true,
            chimera_reproducible: false,
        },
        BugCase {
            name: "ftpserver",
            models: "FTPSERVER transfer-slot index race",
            source: BUG_FTPSERVER,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::IndexOutOfBounds,
            clap_supported: false,
            chimera_reproducible: true,
        },
        BugCase {
            name: "lucene-481",
            models: "LUCENE-481 close/commit ordering",
            source: BUG_LUCENE_481,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::AssertFailed,
            clap_supported: false,
            chimera_reproducible: true,
        },
        BugCase {
            name: "lucene-651",
            models: "LUCENE-651 reader refresh null window",
            source: BUG_LUCENE_651,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::NullDeref,
            clap_supported: false,
            chimera_reproducible: true,
        },
        BugCase {
            name: "tomcat-37458",
            models: "Tomcat 37458 stats double-reset",
            source: BUG_TOMCAT_37458,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::AssertFailed,
            clap_supported: true,
            chimera_reproducible: false,
        },
        BugCase {
            name: "tomcat-50885",
            models: "Tomcat 50885 logger swap null window",
            source: BUG_TOMCAT_50885,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::NullDeref,
            clap_supported: true,
            chimera_reproducible: false,
        },
        BugCase {
            name: "tomcat-53498",
            models: "Tomcat 53498 counter reset divide-by-zero",
            source: BUG_TOMCAT_53498,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::DivByZero,
            clap_supported: false,
            chimera_reproducible: true,
        },
        BugCase {
            name: "weblech",
            models: "WebLech queue-size check race",
            source: BUG_WEBLECH,
            args: vec![],
            search_seeds: 0..400,
            expect_kind: FaultKind::AssertFailed,
            clap_supported: false,
            chimera_reproducible: true,
        },
    ]
}

// Chimera-hidden bugs: the racy methods below contain no spawn/join/wait,
// so the transformation serializes them whole and the window closes.

const BUG_CACHE4J: &str = "
// put() briefly nulls the entry while replacing it; get() checks and then
// dereferences without holding a common lock.
class Cache { field entry; }
class Entry { field value; field create_time; }
global cache; global clock;

fn put_fresh(v) {
    cache.entry = null;            // window opens
    let e = new Entry();
    e.value = v;
    clock = clock + 1;
    e.create_time = clock;
    cache.entry = e;               // window closes
}

fn reader() {
    let i = 0;
    while (i < 6) {
        let e = cache.entry;
        if (e != null) {
            let v = cache.entry.value;   // may hit the null window
        }
        i = i + 1;
    }
}

fn writer() {
    let i = 0;
    while (i < 6) { put_fresh(i); i = i + 1; }
}

fn main() {
    cache = new Cache();
    put_fresh(0);
    let t1 = spawn writer();
    let t2 = spawn reader();
    join t1; join t2;
}";

const BUG_TOMCAT_37458: &str = "
// Request-stats reset races with increment: two non-atomic updates let a
// reset land between read and write, making the processed counter exceed
// the accepted counter.
global accepted; global processed;

fn counter() {
    let i = 0;
    while (i < 8) {
        let a = accepted;
        accepted = a + 1;
        let p = processed;
        processed = p + 1;
        i = i + 1;
    }
}

fn resetter() {
    let i = 0;
    while (i < 4) {
        accepted = 0;
        processed = 0;
        i = i + 1;
    }
}

fn checker() {
    let i = 0;
    while (i < 8) {
        // Increment order (accepted first) keeps processed <= accepted at
        // every program point — unless a reset lands between the pair.
        let p = processed;
        let a = accepted;
        assert(p <= a);
        i = i + 1;
    }
}

fn main() {
    let t1 = spawn counter();
    let t2 = spawn resetter();
    let t3 = spawn checker();
    join t1; join t2; join t3;
}";

const BUG_TOMCAT_50885: &str = "
// Log rotation swaps the writer object through a null intermediate while
// another thread logs.
class Logger { field writer; }
class Writer { field lines; }
global logger;

fn rotate() {
    let i = 0;
    while (i < 6) {
        logger.writer = null;          // old writer detached
        let w = new Writer();
        logger.writer = w;             // new writer attached
        i = i + 1;
    }
}

fn log_worker() {
    let i = 0;
    while (i < 6) {
        let w = logger.writer;
        if (w != null) {
            logger.writer.lines = logger.writer.lines + 1;
        }
        i = i + 1;
    }
}

fn main() {
    logger = new Logger();
    let w = new Writer();
    logger.writer = w;
    let t1 = spawn rotate();
    let t2 = spawn log_worker();
    join t1; join t2;
}";

// Chimera-reproducible bugs: the racing statements live in blocking
// functions (they spawn/join/wait), so only statement-level locks are
// added and the buggy orderings survive. All five use map/hash constructs,
// putting them outside CLAP's solver theories.

const BUG_FTPSERVER: &str = "
// Transfer bookkeeping: the slot index is published before the slot table
// is grown; a transfer task reads a stale bound.
global slots; global slot_count; global registry; global helper_done;

fn transfer_task() {
    // Blocking function: waits for a helper it spawns.
    let h = spawn helper();
    let idx = slot_count - 1;
    let s = slots;
    let v = s[idx];            // stale table + new count -> out of bounds
    join h;
}

fn helper() {
    helper_done = 1;
}

fn main() {
    registry = map_new();
    slots = new [2];
    slot_count = 2;
    let t1 = spawn transfer_task();
    // Grow: publish the new count first (the bug), then install the table.
    // Inlined into main (a blocking function), as in the original where
    // the growing method also dispatches the transfer thread.
    let want = 6;
    slot_count = want;
    let ns = new [want];
    let i = 0;
    while (i < 2) { ns[i] = slots[i]; i = i + 1; }
    slots = ns;
    map_put(registry, want, 1);
    join t1;
}";

const BUG_LUCENE_481: &str = "
// Commit/close ordering: closer marks the index closed before the final
// segment count is published; committer asserts consistency.
global seg_map; global committed_segs; global closed; global observer_done;

fn closer() {
    let h = spawn close_helper();
    closed = 1;                      // published too early
    let n = map_size(seg_map);
    committed_segs = n;
    join h;
}

fn close_helper() {
    observer_done = 1;
}

fn committer() {
    let h = spawn commit_helper();
    if (closed == 1) {
        // If close finished, the committed count must match the map.
        assert(committed_segs == map_size(seg_map));
    }
    join h;
}

fn commit_helper() {
    observer_done = 2;
}

fn main() {
    seg_map = map_new();
    map_put(seg_map, 1, 10);
    map_put(seg_map, 2, 20);
    let t1 = spawn closer();
    let t2 = spawn committer();
    join t1; join t2;
}";

const BUG_LUCENE_651: &str = "
// Reader refresh: the active reader is swapped through a null window
// while a searcher resolves terms against it.
class Index { field reader; }
class Reader { field docs; }
global index; global term_cache;

fn refresher() {
    let h = spawn warm_cache();
    index.reader = null;            // close old reader
    let r = new Reader();
    r.docs = map_size(term_cache);
    index.reader = r;               // open new reader
    join h;
}

fn warm_cache() {
    map_put(term_cache, hash(7) % 100, 1);
}

fn searcher() {
    let h = spawn warm_cache();
    let r = index.reader;
    if (r != null) {
        let d = index.reader.docs;  // null window dereference
    }
    join h;
}

fn main() {
    term_cache = map_new();
    index = new Index();
    let r0 = new Reader();
    r0.docs = 0;
    index.reader = r0;
    let t1 = spawn refresher();
    let t2 = spawn searcher();
    join t1; join t2;
}";

const BUG_TOMCAT_53498: &str = "
// Rate computation: a stats reset zeroes the request counter between the
// sum update and the division.
global bytes_total; global request_count; global stats_log;

fn request_worker() {
    let h = spawn audit();
    bytes_total = bytes_total + 1024;
    request_count = request_count + 1;
    join h;
}

fn audit() {
    map_put(stats_log, hash(3) % 10, 1);
}

fn reporter() {
    let h = spawn audit();
    let b = bytes_total;
    let c = request_count;
    let avg = b / c;                 // c may be reset to 0 here -> /0
    join h;
}

fn resetter() {
    let h = spawn audit();
    request_count = 0;
    bytes_total = 0;
    join h;
}

fn main() {
    stats_log = map_new();
    bytes_total = 2048;
    request_count = 2;
    let t1 = spawn request_worker();
    let t2 = spawn resetter();
    let t3 = spawn reporter();
    join t1; join t2; join t3;
}";

const BUG_WEBLECH: &str = "
// Queue-size accounting: the pending counter is decremented before the
// URL is actually removed from the frontier map; the consistency check
// observes the mismatch... modeled as count going negative.
global frontier; global pending; global checker_done;

fn downloader() {
    let h = spawn touch();
    let p = pending;
    pending = p - 1;                 // decrement first (the bug)
    map_remove(frontier, 1);
    join h;
}

fn touch() {
    checker_done = 1;
}

fn monitor_thread() {
    let h = spawn touch();
    let p = pending;
    let q = map_size(frontier);
    // Invariant: the pending counter never lags behind the actual queue.
    assert(p >= q);
    join h;
}

fn main() {
    frontier = map_new();
    map_put(frontier, 1, 1);
    pending = 1;
    let t1 = spawn downloader();
    let t2 = spawn monitor_thread();
    join t1; join t2;
}";
