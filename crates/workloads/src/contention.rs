//! A seeded high-thread-count contention generator for the recorder's
//! scaling benchmarks (E18).
//!
//! The fig4/fig5 workloads are LIR programs driven by the controlled
//! scheduler, which serializes execution — ideal for determinism, useless
//! for measuring how the recorder's *concurrent* hot path scales. This
//! module instead plans per-thread access sequences to be replayed by raw
//! OS threads directly against [`light_core::LightRecorder::on_access`]:
//! a tunable mix of thread-private locations (where `prec`/O1 collapse
//! keeps the log bounded) and a small set of hot shared locations (where
//! threads collide on last-write-map stripes and produce cross-thread
//! dependences).
//!
//! Everything is a pure function of `(seed, thread)`: the same spec
//! yields the same access sequence on every run and on every
//! thread-count sweep point, so baseline (no recorder) and recorded arms
//! of a benchmark execute identical instruction streams.

use light_runtime::{AccessKind, Loc, ObjId, Tid};
use lir::FieldId;

/// Shape of one contention workload: `threads` OS threads each replaying
/// `events_per_thread` planned accesses.
#[derive(Debug, Clone, Copy)]
pub struct ContentionSpec {
    /// Number of worker threads.
    pub threads: usize,
    /// Accesses each thread performs.
    pub events_per_thread: u64,
    /// Number of hot shared locations all threads collide on.
    pub shared_locs: u32,
    /// Thread-private locations per thread (round-robined, so `prec`/O1
    /// keep runs open across consecutive touches).
    pub private_locs: u32,
    /// Percentage of accesses that target a shared location (0..=100).
    pub shared_pct: u32,
    /// Percentage of accesses that are writes (0..=100); the rest read.
    pub write_pct: u32,
    /// Base seed; thread `k` derives its stream from `seed ^ k`.
    pub seed: u64,
}

impl Default for ContentionSpec {
    fn default() -> Self {
        Self {
            threads: 8,
            events_per_thread: 100_000,
            shared_locs: 16,
            private_locs: 4,
            // ~90% private traffic keeps the log tightly bounded (the
            // paper's locality assumption); ~10% shared keeps the
            // last-write map stripes genuinely contended.
            shared_pct: 10,
            write_pct: 30,
            seed: 42,
        }
    }
}

/// One planned access: where, and whether it writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedAccess {
    pub loc: Loc,
    pub kind: AccessKind,
}

impl ContentionSpec {
    /// The LIR thread id worker `k` records under.
    pub fn tid(&self, thread: usize) -> Tid {
        Tid::ROOT.child(thread as u32)
    }

    /// The deterministic access stream for worker `k`.
    pub fn stream(&self, thread: usize) -> ContentionStream {
        ContentionStream {
            // splitmix-style scramble so nearby (seed, thread) pairs do
            // not yield correlated streams; never zero.
            rng: (self.seed ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(0x243f_6a88_85a3_08d3)
                | 1,
            spec: *self,
            thread: thread as u32,
            next_private: 0,
            remaining: self.events_per_thread,
        }
    }

    /// Total accesses across all threads.
    pub fn total_events(&self) -> u64 {
        self.threads as u64 * self.events_per_thread
    }
}

/// Iterator over one thread's planned accesses (see
/// [`ContentionSpec::stream`]).
pub struct ContentionStream {
    rng: u64,
    spec: ContentionSpec,
    thread: u32,
    next_private: u32,
    remaining: u64,
}

impl ContentionStream {
    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, and identical cost in the
        // baseline and recorded benchmark arms.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl Iterator for ContentionStream {
    type Item = PlannedAccess;

    fn next(&mut self) -> Option<PlannedAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let r = self.next_u64();
        let spec = &self.spec;
        let shared = (r % 100) < spec.shared_pct as u64;
        let write = ((r >> 32) % 100) < spec.write_pct as u64;
        let obj = if shared {
            // Hot objects live in a small dense id range every thread hits.
            ObjId(1 + ((r >> 8) % spec.shared_locs.max(1) as u64) as u32)
        } else {
            // Private objects are disjoint per thread and round-robined so
            // consecutive touches revisit the same few locations — the
            // access pattern prec/O1 (and the N-way open-run table) are
            // built to collapse.
            let j = self.next_private;
            self.next_private = (j + 1) % spec.private_locs.max(1);
            ObjId(0x0001_0000 + self.thread * spec.private_locs.max(1) + j)
        };
        Some(PlannedAccess {
            loc: Loc::Field(obj, FieldId(0)),
            kind: if write { AccessKind::Write } else { AccessKind::Read },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let spec = ContentionSpec::default();
        let a: Vec<PlannedAccess> = spec.stream(3).take(1000).collect();
        let b: Vec<PlannedAccess> = spec.stream(3).take(1000).collect();
        assert_eq!(a, b);
        let other: Vec<PlannedAccess> = spec.stream(4).take(1000).collect();
        assert_ne!(a, other, "threads get distinct streams");
    }

    #[test]
    fn mix_approximates_the_spec() {
        let spec = ContentionSpec {
            events_per_thread: 100_000,
            ..Default::default()
        };
        let events: Vec<PlannedAccess> = spec.stream(0).collect();
        assert_eq!(events.len(), 100_000);
        let shared = events
            .iter()
            .filter(|a| matches!(a.loc, Loc::Field(ObjId(o), _) if o < 0x0001_0000))
            .count();
        let writes = events
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        let pct = |n: usize| n * 100 / events.len();
        assert!((8..=12).contains(&pct(shared)), "shared ~10%, got {}%", pct(shared));
        assert!((28..=32).contains(&pct(writes)), "writes ~30%, got {}%", pct(writes));
    }

    #[test]
    fn private_locations_are_disjoint_across_threads() {
        let spec = ContentionSpec {
            events_per_thread: 10_000,
            ..Default::default()
        };
        let privates = |k: usize| -> std::collections::HashSet<u32> {
            spec.stream(k)
                .filter_map(|a| match a.loc {
                    Loc::Field(ObjId(o), _) if o >= 0x0001_0000 => Some(o),
                    _ => None,
                })
                .collect()
        };
        let p0 = privates(0);
        let p1 = privates(1);
        assert!(!p0.is_empty() && !p1.is_empty());
        assert!(p0.is_disjoint(&p1));
    }
}
