//! The 24 overhead benchmarks (Figures 4, 5 and 7).
//!
//! Every program takes `main(t, n)` — thread count and problem scale — and
//! mirrors the shared-memory shape of its original suite:
//!
//! - **JGF** kernels: dense numeric loops over shared arrays, little
//!   locking;
//! - **STAMP**-style applications: transactional read-modify-write over
//!   shared tables (maps) and grids, guarded by locks;
//! - **server/crawler** applications: request loops over synchronized
//!   shared structures, wait/notify handoffs;
//! - **Dacapo**-style applications: mixed read-heavy / locked-update
//!   workloads.

use lir::Program;
use std::sync::Arc;

/// Which suite a benchmark models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    Jgf,
    Stamp,
    Server,
    Dacapo,
}

impl Suite {
    /// Display name matching the paper's grouping.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Jgf => "JGF",
            Suite::Stamp => "STAMP",
            Suite::Server => "server",
            Suite::Dacapo => "Dacapo",
        }
    }
}

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub name: &'static str,
    pub suite: Suite,
    pub source: &'static str,
    /// Default `(threads, scale)` for a quick measurement run.
    pub default_args: (i64, i64),
}

impl Workload {
    /// Parses the program (panics on parse errors — covered by tests).
    pub fn program(&self) -> Arc<Program> {
        crate::parse_program(self.name, self.source)
    }

    /// The `main(t, n)` argument vector for a given thread count and scale
    /// multiplier (1 = default).
    pub fn args(&self, threads: i64, scale_mul: i64) -> Vec<i64> {
        vec![threads, self.default_args.1 * scale_mul]
    }

    /// Default argument vector.
    pub fn default_arg_vec(&self) -> Vec<i64> {
        vec![self.default_args.0, self.default_args.1]
    }
}

/// Synthetic recordings for solver-scaling benchmarks.
///
/// Real recordings are nearly always one connected component: every
/// thread's ghost accesses chain through shared monitors, coupling all
/// location groups. These builders produce `Recording` structs directly,
/// with controlled component structure, so the turbo solver's scaling can
/// be measured in isolation:
///
/// - [`wide_recording`] — `groups` independent location groups, each on
///   its own disjoint thread pair, decomposing into exactly `groups`
///   components;
/// - [`narrow_recording`] — the same total work on one location and one
///   thread pair: a single component, the sequential worst case.
///
/// Each group is a writer/reader pair: the writer's accesses `1..=k`
/// produce one flow dependence each, and same-location dependences force
/// Equation 1's pairwise non-interference disjunctions, so clause search
/// (not just hard-edge propagation) dominates.
pub mod synthetic {
    use light_core::{AccessId, DepEdge, Recording};
    use light_runtime::{Loc, Tid};

    /// Builds one location group's dependences on a writer/reader thread
    /// pair. Satisfiable by construction: the serial order
    /// `w1 r1 w2 r2 ...` respects every thread-order, flow, and
    /// non-interference constraint.
    fn group(deps: &mut Vec<DepEdge>, loc: u64, writer: Tid, reader: Tid, k: usize) {
        for i in 1..=k as u64 {
            deps.push(DepEdge {
                loc,
                w: Some(AccessId::new(writer, i)),
                r_tid: reader,
                r_first: i,
                r_last: i,
            });
        }
    }

    /// A recording that decomposes into exactly `groups` independent
    /// components. Each group is **two** writer/reader thread pairs
    /// sharing one location, with `deps_per_group` dependences alternating
    /// between the pairs: thread-order and flow chains force the order
    /// within a pair, but nothing orders pair A against pair B, so every
    /// cross-pair non-interference disjunction is a genuine search
    /// decision. That keeps real solver work inside each component — the
    /// shape parallel solving has to be measured on — while preprocessing
    /// still resolves the forced intra-pair clauses. Satisfiable by
    /// construction: placing all of pair A's accesses before pair B's
    /// respects every constraint.
    ///
    /// `groups` is capped at 63 by the thread-id space (four fresh
    /// children of the root per group).
    pub fn wide_recording(groups: usize, deps_per_group: usize) -> Recording {
        assert!(groups <= 63, "thread-id space allows at most 63 groups");
        let mut deps = Vec::with_capacity(groups * deps_per_group);
        for g in 0..groups {
            let loc = Loc::Global(lir::GlobalId(g as u32)).key();
            let base = 4 * g as u32;
            let pairs = [
                (Tid::ROOT.child(base), Tid::ROOT.child(base + 1)),
                (Tid::ROOT.child(base + 2), Tid::ROOT.child(base + 3)),
            ];
            let mut ctr = [0u64; 2];
            for i in 0..deps_per_group {
                let p = i % 2;
                ctr[p] += 1;
                let (writer, reader) = pairs[p];
                deps.push(DepEdge {
                    loc,
                    w: Some(AccessId::new(writer, ctr[p])),
                    r_tid: reader,
                    r_first: ctr[p],
                    r_last: ctr[p],
                });
            }
        }
        Recording {
            deps,
            ..Recording::default()
        }
    }

    /// The single-component control: the same number of dependences as
    /// `wide_recording(groups, deps_per_group)` but all on one location
    /// and one thread pair, so decomposition finds nothing to split.
    pub fn narrow_recording(total_deps: usize) -> Recording {
        let mut deps = Vec::with_capacity(total_deps);
        group(
            &mut deps,
            Loc::Global(lir::GlobalId(0)).key(),
            Tid::ROOT.child(0),
            Tid::ROOT.child(1),
            total_deps,
        );
        Recording {
            deps,
            ..Recording::default()
        }
    }
}

/// The full catalog, in the order the figures print them.
pub fn benchmarks() -> Vec<Workload> {
    vec![
        Workload { name: "jgf.series", suite: Suite::Jgf, source: JGF_SERIES, default_args: (4, 600) },
        Workload { name: "jgf.crypt", suite: Suite::Jgf, source: JGF_CRYPT, default_args: (4, 800) },
        Workload { name: "jgf.sor", suite: Suite::Jgf, source: JGF_SOR, default_args: (4, 400) },
        Workload { name: "stamp.kmeans", suite: Suite::Stamp, source: STAMP_KMEANS, default_args: (4, 300) },
        Workload { name: "stamp.vacation", suite: Suite::Stamp, source: STAMP_VACATION, default_args: (4, 150) },
        Workload { name: "stamp.genome", suite: Suite::Stamp, source: STAMP_GENOME, default_args: (4, 250) },
        Workload { name: "stamp.intruder", suite: Suite::Stamp, source: STAMP_INTRUDER, default_args: (4, 150) },
        Workload { name: "stamp.labyrinth", suite: Suite::Stamp, source: STAMP_LABYRINTH, default_args: (4, 300) },
        Workload { name: "stamp.ssca2", suite: Suite::Stamp, source: STAMP_SSCA2, default_args: (4, 300) },
        Workload { name: "stamp.yada", suite: Suite::Stamp, source: STAMP_YADA, default_args: (4, 250) },
        Workload { name: "stamp.bayes", suite: Suite::Stamp, source: STAMP_BAYES, default_args: (4, 120) },
        Workload { name: "srv.cache4j", suite: Suite::Server, source: SRV_CACHE4J, default_args: (4, 250) },
        Workload { name: "srv.ftpserver", suite: Suite::Server, source: SRV_FTPSERVER, default_args: (4, 120) },
        Workload { name: "srv.tomcat-pool", suite: Suite::Server, source: SRV_TOMCAT_POOL, default_args: (4, 150) },
        Workload { name: "srv.weblech", suite: Suite::Server, source: SRV_WEBLECH, default_args: (4, 150) },
        Workload { name: "srv.lucene-index", suite: Suite::Server, source: SRV_LUCENE_INDEX, default_args: (4, 150) },
        Workload { name: "srv.httpmsg", suite: Suite::Server, source: SRV_HTTPMSG, default_args: (4, 150) },
        Workload { name: "srv.chat", suite: Suite::Server, source: SRV_CHAT, default_args: (4, 80) },
        Workload { name: "dc.sensor-net", suite: Suite::Dacapo, source: DC_SENSOR_NET, default_args: (4, 150) },
        Workload { name: "dc.h2-bank", suite: Suite::Dacapo, source: DC_H2_BANK, default_args: (4, 200) },
        Workload { name: "dc.lusearch", suite: Suite::Dacapo, source: DC_LUSEARCH, default_args: (4, 300) },
        Workload { name: "dc.raytrace", suite: Suite::Dacapo, source: DC_RAYTRACE, default_args: (4, 250) },
        Workload { name: "dc.transform", suite: Suite::Dacapo, source: DC_TRANSFORM, default_args: (4, 200) },
        Workload { name: "dc.trading", suite: Suite::Dacapo, source: DC_TRADING, default_args: (4, 150) },
    ]
}

// ---------------------------------------------------------------------------
// JGF kernels
// ---------------------------------------------------------------------------

const JGF_SERIES: &str = "
// Fourier-series-style kernel: each thread fills a strip of shared
// coefficient arrays, then a locked reduction combines them.
global coeff_a; global coeff_b; global total; global lock;
class L { field pad; }

fn term(k) {
    // A cheap stand-in for the trigonometric term.
    let x = k * 2609 + 53;
    let y = (x * x) % 10007;
    return y - 5000;
}

fn worker(id, t, n) {
    let i = id;
    let local_sum = 0;
    while (i < n) {
        let a = term(i);
        let b = term(i + 1);
        coeff_a[i] = a;
        coeff_b[i] = b;
        local_sum = local_sum + a - b;
        i = i + t;
    }
    sync (lock) { total = total + local_sum; }
}

fn main(t, n) {
    lock = new L();
    coeff_a = new [n];
    coeff_b = new [n];
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn worker(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { print(total); }
}";

const JGF_CRYPT: &str = "
// IDEA-style block transform: encrypt a shared buffer in strips, then
// decrypt and check round-trip.
global plain; global cipher; global back; global ok; global lock;
class L { field pad; }

fn enc(v, k) { return ((v * 17 + k) % 251) ^ 37; }
fn dec(v, k) {
    let u = v ^ 37;
    // Brute-force modular inverse (small domain keeps this cheap).
    let c = 0;
    while (c < 251) {
        if ((c * 17 + k) % 251 == u) { return c; }
        c = c + 1;
    }
    return 0;
}

fn enc_worker(id, t, n) {
    let i = id;
    while (i < n) { cipher[i] = enc(plain[i], i % 7); i = i + t; }
}

fn dec_worker(id, t, n) {
    let i = id;
    while (i < n) { back[i] = dec(cipher[i], i % 7); i = i + t; }
}

fn main(t, n) {
    lock = new L();
    plain = new [n];
    cipher = new [n];
    back = new [n];
    let i = 0;
    while (i < n) { plain[i] = i % 251; i = i + 1; }
    let hs = new [t];
    i = 0;
    while (i < t) { hs[i] = spawn enc_worker(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    i = 0;
    while (i < t) { hs[i] = spawn dec_worker(i, t, n); i = i + 1; }
    j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    ok = 1;
    i = 0;
    while (i < n) {
        if (back[i] != plain[i]) { ok = 0; }
        i = i + 1;
    }
    assert(ok == 1);
}";

const JGF_SOR: &str = "
// Red/black successive over-relaxation on a shared 1-D grid; iterations
// are separated by join barriers.
global grid; global lock; global residual;
class L { field pad; }

fn sweep(id, t, n, color) {
    let i = id * 2 + color + 1;
    let local_res = 0;
    while (i < n - 1) {
        let new_v = (grid[i - 1] + grid[i + 1]) / 2;
        local_res = local_res + new_v - grid[i];
        grid[i] = new_v;
        i = i + t * 2;
    }
    sync (lock) { residual = residual + local_res; }
}

fn main(t, n) {
    lock = new L();
    grid = new [n];
    let i = 0;
    while (i < n) { grid[i] = (i * 31) % 100; i = i + 1; }
    let iter = 0;
    while (iter < 4) {
        let color = iter % 2;
        let hs = new [t];
        i = 0;
        while (i < t) { hs[i] = spawn sweep(i, t, n, color); i = i + 1; }
        let j = 0;
        while (j < t) { join hs[j]; j = j + 1; }
        iter = iter + 1;
    }
    sync (lock) { print(residual); }
}";

// ---------------------------------------------------------------------------
// STAMP-style transactional applications
// ---------------------------------------------------------------------------

const STAMP_KMEANS: &str = "
// k-means: shared read-only points, locked centroid accumulation.
global points; global sums; global counts; global lock;
class L { field pad; }

fn assign(id, t, n, k) {
    let i = id;
    while (i < n) {
        let p = points[i];
        let c = p % k;
        sync (lock) {
            sums[c] = sums[c] + p;
            counts[c] = counts[c] + 1;
        }
        i = i + t;
    }
}

fn main(t, n) {
    let k = 5;
    lock = new L();
    points = new [n];
    sums = new [k];
    counts = new [k];
    let i = 0;
    while (i < n) { points[i] = (i * 7919) % 1000; i = i + 1; }
    let round = 0;
    while (round < 2) {
        let hs = new [t];
        i = 0;
        while (i < t) { hs[i] = spawn assign(i, t, n, k); i = i + 1; }
        let j = 0;
        while (j < t) { join hs[j]; j = j + 1; }
        round = round + 1;
    }
    sync (lock) {
        let total = 0;
        i = 0;
        while (i < 5) { total = total + counts[i]; i = i + 1; }
        assert(total == 2 * n);
    }
}";

const STAMP_VACATION: &str = "
// Travel reservations: locked transactions over map-based tables.
global cars; global rooms; global lock; global booked;
class L { field pad; }

fn client(id, t, n) {
    let i = 0;
    while (i < n) {
        let item = (id * 31 + i * 7) % 40;
        sync (lock) {
            let avail = map_get(cars, item);
            if (avail == null) { avail = 3; }
            if (avail > 0) {
                map_put(cars, item, avail - 1);
                let r = map_get(rooms, item);
                if (r == null) { r = 0; }
                map_put(rooms, item, r + 1);
                booked = booked + 1;
            }
        }
        i = i + 1;
    }
}

fn main(t, n) {
    lock = new L();
    cars = map_new();
    rooms = map_new();
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn client(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) {
        print(booked);
        assert(booked <= 3 * 40);
    }
}";

const STAMP_GENOME: &str = "
// Genome assembly phase 1: deduplicate hashed segments into a shared map.
global segments; global unique; global lock; global dup_count;
class L { field pad; }

fn dedup(id, t, n) {
    let i = id;
    while (i < n) {
        let h = hash(segments[i]) % 97;
        sync (lock) {
            if (map_contains(unique, h) == 1) {
                dup_count = dup_count + 1;
            } else {
                map_put(unique, h, segments[i]);
            }
        }
        i = i + t;
    }
}

fn main(t, n) {
    lock = new L();
    segments = new [n];
    unique = map_new();
    let i = 0;
    while (i < n) { segments[i] = (i * 13) % 50; i = i + 1; }
    let hs = new [t];
    i = 0;
    while (i < t) { hs[i] = spawn dedup(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { assert(map_size(unique) + dup_count == n); }
}";

const STAMP_INTRUDER: &str = "
// Packet reassembly: fragments inserted into per-flow map entries, flows
// scanned when complete.
global flows; global lock; global alarms; global processed;
class L { field pad; }

fn capture(id, t, n) {
    let i = 0;
    while (i < n) {
        let flow = (id * 17 + i) % 20;
        sync (lock) {
            let have = map_get(flows, flow);
            if (have == null) { have = 0; }
            map_put(flows, flow, have + 1);
            if (have + 1 == 4) {
                map_remove(flows, flow);
                processed = processed + 1;
                if (hash(flow) % 10 == 0) { alarms = alarms + 1; }
            }
        }
        i = i + 1;
    }
}

fn main(t, n) {
    lock = new L();
    flows = map_new();
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn capture(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) {
        print(processed);
        print(alarms);
    }
}";

const STAMP_LABYRINTH: &str = "
// Path routing: threads claim maze cells transactionally.
global maze; global lock; global routed; global conflicts;
class L { field pad; }

fn route(id, t, n) {
    let trip = 0;
    while (trip < n) {
        let start = (id * 131 + trip * 29) % (n * 2);
        let len = 3 + (trip % 4);
        let k = 0;
        let okay = 1;
        sync (lock) {
            while (k < len) {
                let cell = (start + k) % (n * 2);
                if (maze[cell] != 0) { okay = 0; }
                k = k + 1;
            }
            if (okay == 1) {
                k = 0;
                while (k < len) {
                    maze[(start + k) % (n * 2)] = id + 1;
                    k = k + 1;
                }
                routed = routed + 1;
            } else {
                conflicts = conflicts + 1;
            }
        }
        trip = trip + 1;
    }
}

fn main(t, n) {
    lock = new L();
    maze = new [n * 2];
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn route(i, t, n / 8); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) {
        print(routed);
        print(conflicts);
    }
}";

const STAMP_SSCA2: &str = "
// Graph kernel: compute in-degrees of a synthetic graph in parallel.
global edges_to; global degree; global lock;
class L { field pad; }

fn count(id, t, m, nodes) {
    let i = id;
    while (i < m) {
        let dst = edges_to[i];
        sync (lock) { degree[dst] = degree[dst] + 1; }
        i = i + t;
    }
}

fn main(t, n) {
    let nodes = 64;
    lock = new L();
    edges_to = new [n];
    degree = new [nodes];
    let i = 0;
    while (i < n) { edges_to[i] = (i * 2654435761) % nodes; i = i + 1; }
    let hs = new [t];
    i = 0;
    while (i < t) { hs[i] = spawn count(i, t, n, nodes); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) {
        let total = 0;
        i = 0;
        while (i < 64) { total = total + degree[i]; i = i + 1; }
        assert(total == n);
    }
}";

const STAMP_YADA: &str = "
// Mesh refinement style: a locked work counter feeds tasks; results
// accumulate in a shared quality metric.
global next_task; global quality; global lock; global done_tasks;
class L { field pad; }

fn refine(id, t, n) {
    let running = 1;
    while (running == 1) {
        let task = 0 - 1;
        sync (lock) {
            if (next_task < n) { task = next_task; next_task = next_task + 1; }
        }
        if (task < 0) {
            running = 0;
        } else {
            // Local refinement work.
            let q = (task * task) % 1009;
            let r = 0;
            let k = 0;
            while (k < 20) { r = r + (q + k * id) % 7; k = k + 1; }
            sync (lock) {
                quality = quality + r;
                done_tasks = done_tasks + 1;
            }
        }
    }
}

fn main(t, n) {
    lock = new L();
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn refine(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) {
        assert(done_tasks == n);
        print(quality);
    }
}";

const STAMP_BAYES: &str = "
// Structure learning style: threads propose dependency edges into a
// locked adjacency matrix and track the score.
global adj; global score; global lock; global nodes;
class L { field pad; }

fn learn(id, t, n) {
    let i = 0;
    while (i < n) {
        let a = (id * 7 + i * 3) % nodes;
        let b = (id * 11 + i * 5) % nodes;
        if (a != b) {
            sync (lock) {
                let idx = a * nodes + b;
                if (adj[idx] == 0) {
                    adj[idx] = 1;
                    score = score + ((a + b) % 13) - 6;
                }
            }
        }
        i = i + 1;
    }
}

fn main(t, n) {
    nodes = 16;
    lock = new L();
    adj = new [16 * 16];
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn learn(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { print(score); }
}";

// ---------------------------------------------------------------------------
// Server / crawler applications
// ---------------------------------------------------------------------------

const SRV_CACHE4J: &str = "
// The paper's running example shape: a synchronized cache whose entries
// carry a creation time checked on get.
class Cache { field entry; field create_time; field hits; field misses; }
class Entry { field value; }
global cache; global clock;

fn put(v) {
    sync (cache) {
        let e = new Entry();
        e.value = v;
        cache.entry = e;
        clock = clock + 1;
        cache.create_time = clock;
    }
}

fn get(now) {
    sync (cache) {
        let e = cache.entry;
        if (e != null && now - cache.create_time < 50) {
            cache.hits = cache.hits + 1;
            return e.value;
        }
        cache.misses = cache.misses + 1;
        return null;
    }
}

fn putter(n) {
    let i = 0;
    while (i < n) { put(i); i = i + 1; }
}

fn getter(n) {
    let i = 0;
    while (i < n) { let v = get(i); i = i + 1; }
}

fn main(t, n) {
    cache = new Cache();
    clock = 0;
    put(0); // the cache starts warm, as get() assumes an entry exists
    let hs = new [t];
    let i = 0;
    while (i < t) {
        if (i % 2 == 0) { hs[i] = spawn putter(n); }
        else { hs[i] = spawn getter(n); }
        i = i + 1;
    }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (cache) { print(cache.hits); print(cache.misses); }
}";

const SRV_FTPSERVER: &str = "
// Command dispatch: producers enqueue commands into a bounded queue
// (wait/notify), session workers consume and update a transfer log map.
global queue_len; global queue_head; global commands; global mon;
global log; global lock; global produced; global consumed; global stop;
class M { field pad; }
class L { field pad; }

fn producer(n) {
    let i = 0;
    while (i < n) {
        sync (mon) {
            while (queue_len >= 8) { wait(mon); }
            commands[(queue_head + queue_len) % 16] = i + 1;
            queue_len = queue_len + 1;
            produced = produced + 1;
            notify_all(mon);
        }
        i = i + 1;
    }
}

fn session(n) {
    let running = 1;
    while (running == 1) {
        let cmd = 0;
        sync (mon) {
            while (queue_len == 0 && stop == 0) { wait(mon); }
            if (queue_len > 0) {
                cmd = commands[queue_head];
                queue_head = (queue_head + 1) % 16;
                queue_len = queue_len - 1;
                consumed = consumed + 1;
                notify_all(mon);
            } else {
                running = 0;
            }
        }
        if (cmd > 0) {
            sync (lock) {
                let c = map_get(log, cmd % 10);
                if (c == null) { c = 0; }
                map_put(log, cmd % 10, c + 1);
            }
        }
    }
}

fn main(t, n) {
    mon = new M();
    lock = new L();
    commands = new [16];
    log = map_new();
    let workers = t - 1;
    if (workers < 1) { workers = 1; }
    let hs = new [workers];
    let i = 0;
    while (i < workers) { hs[i] = spawn session(n); i = i + 1; }
    producer(n * workers);
    sync (mon) {
        while (queue_len > 0) { wait(mon); }
        stop = 1;
        notify_all(mon);
    }
    let j = 0;
    while (j < workers) { join hs[j]; j = j + 1; }
    sync (mon) { assert(consumed == produced); }
}";

const SRV_TOMCAT_POOL: &str = "
// Connection pool: bounded acquire/release with wait/notify, per-request
// work against the checked-out connection object.
class Conn { field in_use; field uses; }
global pool; global free_count; global mon; global served;
class M { field pad; }

fn acquire() {
    sync (mon) {
        while (free_count == 0) { wait(mon); }
        let i = 0;
        while (i < len(pool)) {
            let c = pool[i];
            if (c.in_use == 0) {
                c.in_use = 1;
                free_count = free_count - 1;
                return c;
            }
            i = i + 1;
        }
        return null;
    }
}

fn release(c) {
    sync (mon) {
        c.in_use = 0;
        free_count = free_count + 1;
        notify(mon);
    }
}

fn request_worker(n) {
    let i = 0;
    while (i < n) {
        let c = acquire();
        c.uses = c.uses + 1;
        sync (mon) { served = served + 1; }
        release(c);
        i = i + 1;
    }
}

fn main(t, n) {
    mon = new M();
    let size = 3;
    pool = new [size];
    let i = 0;
    while (i < size) { pool[i] = new Conn(); i = i + 1; }
    free_count = size;
    let hs = new [t];
    i = 0;
    while (i < t) { hs[i] = spawn request_worker(n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (mon) { assert(served == t * n); }
}";

const SRV_WEBLECH: &str = "
// Crawler: a locked URL frontier (map) and visited set; workers pop a
// URL, 'fetch' it, and push discovered links.
global frontier; global visited; global lock; global fetched; global budget;
class L { field pad; }

fn crawler(id) {
    let running = 1;
    while (running == 1) {
        let url = 0 - 1;
        sync (lock) {
            if (budget <= 0 || map_size(frontier) == 0) {
                running = 0;
            } else {
                // Pop an arbitrary pending URL (scan a small id space).
                let k = 0;
                while (k < 50 && url < 0) {
                    if (map_contains(frontier, k) == 1) { url = k; }
                    k = k + 1;
                }
                if (url >= 0) {
                    map_remove(frontier, url);
                    map_put(visited, url, 1);
                    budget = budget - 1;
                } else {
                    running = 0;
                }
            }
        }
        if (url >= 0) {
            // 'Fetch' and discover two links.
            let l1 = hash(url) % 50;
            let l2 = hash(url + 1) % 50;
            sync (lock) {
                fetched = fetched + 1;
                if (map_contains(visited, l1) == 0) { map_put(frontier, l1, 1); }
                if (map_contains(visited, l2) == 0) { map_put(frontier, l2, 1); }
            }
        }
    }
}

fn main(t, n) {
    lock = new L();
    frontier = map_new();
    visited = map_new();
    budget = n;
    map_put(frontier, 0, 1);
    map_put(frontier, 7, 1);
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn crawler(i); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { print(fetched); }
}";

const SRV_LUCENE_INDEX: &str = "
// Index writer: workers tokenize documents and merge postings into a
// shared locked map; a doc counter hands out work.
global postings; global next_doc; global lock; global indexed;
class L { field pad; }

fn indexer(id, t, n) {
    let running = 1;
    while (running == 1) {
        let doc = 0 - 1;
        sync (lock) {
            if (next_doc < n) { doc = next_doc; next_doc = next_doc + 1; }
        }
        if (doc < 0) {
            running = 0;
        } else {
            let w = 0;
            while (w < 6) {
                let term = hash(doc * 6 + w) % 30;
                sync (lock) {
                    let freq = map_get(postings, term);
                    if (freq == null) { freq = 0; }
                    map_put(postings, term, freq + 1);
                }
                w = w + 1;
            }
            sync (lock) { indexed = indexed + 1; }
        }
    }
}

fn main(t, n) {
    lock = new L();
    postings = map_new();
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn indexer(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { assert(indexed == n); }
}";

const SRV_HTTPMSG: &str = "
// Message-board server: session map with per-request read/update under a
// lock; sessions expire by 'time'.
global sessions; global lock; global requests; global expired;
class L { field pad; }

fn handle(id, n) {
    let i = 0;
    while (i < n) {
        let sid = (id * 13 + i) % 12;
        let now = time();
        sync (lock) {
            let last = map_get(sessions, sid);
            if (last != null && now - last > 40) {
                map_remove(sessions, sid);
                expired = expired + 1;
            }
            map_put(sessions, sid, now);
            requests = requests + 1;
        }
        i = i + 1;
    }
}

fn main(t, n) {
    lock = new L();
    sessions = map_new();
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn handle(i, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) {
        assert(requests == t * n);
        print(expired);
    }
}";

const SRV_CHAT: &str = "
// Chat room: one broadcaster notifies room members; members ack each
// message (wait/notify round per message).
global mon; global seq; global acks; global members; global stop;
class M { field pad; }

fn member() {
    let seen = 0;
    let running = 1;
    while (running == 1) {
        sync (mon) {
            while (seq == seen && stop == 0) { wait(mon); }
            if (seq != seen) {
                seen = seq;
                acks = acks + 1;
                notify_all(mon);
            }
            if (stop == 1 && seq == seen) { running = 0; }
        }
    }
}

fn main(t, n) {
    mon = new M();
    members = t;
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn member(); i = i + 1; }
    let msg = 0;
    while (msg < n) {
        sync (mon) {
            seq = seq + 1;
            notify_all(mon);
            while (acks < (msg + 1) * members) { wait(mon); }
        }
        msg = msg + 1;
    }
    sync (mon) { stop = 1; notify_all(mon); }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (mon) { assert(acks == n * members); }
}";

// ---------------------------------------------------------------------------
// Dacapo-style applications
// ---------------------------------------------------------------------------

const DC_SENSOR_NET: &str = "
// avrora-style sensor network: nodes exchange readings through locked
// per-node mailboxes.
global mailboxes; global lock; global delivered; global nodes;
class L { field pad; }

fn node(id, t, n) {
    let i = 0;
    while (i < n) {
        let dest = (id + 1 + (i % (t - 1 + (t == 1)))) % t;
        sync (lock) {
            mailboxes[dest] = mailboxes[dest] + (id + 1) * 100 + i;
            delivered = delivered + 1;
        }
        // Read own mailbox.
        sync (lock) { let inbox = mailboxes[id]; }
        i = i + 1;
    }
}

fn main(t, n) {
    lock = new L();
    nodes = t;
    mailboxes = new [t];
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn node(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { assert(delivered == t * n); }
}";

const DC_H2_BANK: &str = "
// h2-style transactional bank: transfers between locked accounts with a
// global invariant check.
global accounts; global lock; global transfers; global naccounts;
class L { field pad; }

fn teller(id, n) {
    let i = 0;
    while (i < n) {
        let from = (id * 7 + i) % naccounts;
        let to = (id * 11 + i * 3) % naccounts;
        if (from != to) {
            sync (lock) {
                let amt = (i % 9) + 1;
                if (accounts[from] >= amt) {
                    accounts[from] = accounts[from] - amt;
                    accounts[to] = accounts[to] + amt;
                    transfers = transfers + 1;
                }
            }
        }
        i = i + 1;
    }
}

fn main(t, n) {
    lock = new L();
    naccounts = 8;
    accounts = new [8];
    let i = 0;
    while (i < 8) { accounts[i] = 100; i = i + 1; }
    let hs = new [t];
    i = 0;
    while (i < t) { hs[i] = spawn teller(i, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) {
        let total = 0;
        i = 0;
        while (i < 8) { total = total + accounts[i]; i = i + 1; }
        assert(total == 800);
        print(transfers);
    }
}";

const DC_LUSEARCH: &str = "
// lusearch-style: a read-mostly shared index queried in parallel; only
// the hit counter is locked.
global index; global lock; global hits;
class L { field pad; }

fn searcher(id, n) {
    let local_hits = 0;
    let i = 0;
    while (i < n) {
        let term = hash(id * 1000 + i) % 200;
        if (map_contains(index, term) == 1) {
            let docs = map_get(index, term);
            local_hits = local_hits + docs;
        }
        i = i + 1;
    }
    sync (lock) { hits = hits + local_hits; }
}

fn main(t, n) {
    lock = new L();
    index = map_new();
    let i = 0;
    while (i < 100) { map_put(index, i * 2, (i % 5) + 1); i = i + 1; }
    let hs = new [t];
    i = 0;
    while (i < t) { hs[i] = spawn searcher(i, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { print(hits); }
}";

const DC_RAYTRACE: &str = "
// sunflow-style: heavy thread-local pixel computation, shared framebuffer
// strips, locked checksum accumulation.
global framebuffer; global lock; global checksum;
class L { field pad; }

fn render(id, t, n) {
    let i = id;
    let local_sum = 0;
    while (i < n) {
        // Local 'shading' work.
        let v = i + 1;
        let b = 0;
        while (b < 12) { v = (v * 48271 + 11) % 2147483647; b = b + 1; }
        let px = v % 256;
        framebuffer[i] = px;
        local_sum = local_sum + px;
        i = i + t;
    }
    sync (lock) { checksum = checksum + local_sum; }
}

fn main(t, n) {
    lock = new L();
    framebuffer = new [n];
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn render(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { print(checksum); }
}";

const DC_TRANSFORM: &str = "
// xalan-style: documents transformed against a shared read-only
// dictionary; output lengths stored per document.
global dict; global out_len; global lock; global transformed;
class L { field pad; }

fn transform(id, t, n) {
    let d = id;
    while (d < n) {
        let length = 0;
        let tok = 0;
        while (tok < 8) {
            let word = hash(d * 8 + tok) % 64;
            let repl = map_get(dict, word);
            if (repl == null) { repl = 1; }
            length = length + repl;
            tok = tok + 1;
        }
        out_len[d] = length;
        sync (lock) { transformed = transformed + 1; }
        d = d + t;
    }
}

fn main(t, n) {
    lock = new L();
    dict = map_new();
    let i = 0;
    while (i < 64) { map_put(dict, i, (i % 7) + 1); i = i + 1; }
    out_len = new [n];
    let hs = new [t];
    i = 0;
    while (i < t) { hs[i] = spawn transform(i, t, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { assert(transformed == n); }
}";

const DC_TRADING: &str = "
// tradebeans-style order matching: a locked order book (bid/ask arrays)
// with matching on insert.
global bids; global asks; global lock; global matched; global book_size;
class L { field pad; }

fn trader(id, n) {
    let i = 0;
    while (i < n) {
        let price = 50 + ((id * 13 + i * 7) % 21) - 10;
        let is_bid = (id + i) % 2;
        sync (lock) {
            if (is_bid == 1) {
                // Match against the best ask.
                if (book_size > 0 && asks[0] <= price) {
                    matched = matched + 1;
                    // Shift asks down.
                    let k = 0;
                    while (k < book_size - 1) { asks[k] = asks[k + 1]; k = k + 1; }
                    book_size = book_size - 1;
                } else {
                    bids[0] = price;
                }
            } else {
                if (book_size < 16) {
                    asks[book_size] = price;
                    book_size = book_size + 1;
                }
            }
        }
        i = i + 1;
    }
}

fn main(t, n) {
    lock = new L();
    bids = new [16];
    asks = new [16];
    let hs = new [t];
    let i = 0;
    while (i < t) { hs[i] = spawn trader(i, n); i = i + 1; }
    let j = 0;
    while (j < t) { join hs[j]; j = j + 1; }
    sync (lock) { print(matched); }
}";
