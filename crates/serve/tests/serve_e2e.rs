//! End-to-end acceptance: one daemon, 64 concurrent clients submitting
//! a mixed corpus with heavy duplication. Every unique recording must
//! be stored exactly once, every job must finish solve → replay →
//! doctor with zero unexpected divergences, and post-run queries by
//! program and by bug signature must return exact matches.

use light_core::{write_recording, Light};
use light_serve::{start, Client, ServerOptions};
use light_telemetry::events::STAGES;
use light_telemetry::{chrome_trace, read_events, JobEvent, Query, Registry, RunKind, RunStatus};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

const CLIENTS: usize = 64;

const RACE: &str = "global total;
     fn worker(n) {
         let i = 0;
         while (i < n) { total = total + 1; i = i + 1; }
     }
     fn main(n) {
         let t1 = spawn worker(n);
         let t2 = spawn worker(n);
         join t1; join t2;
         print(total);
     }";

const DIVZERO: &str = "global x;
     fn t() { x = 0; }
     fn main() {
         x = 1;
         let h = spawn t();
         let v = 10 / x;
         join h;
         print(v);
     }";

struct CorpusEntry {
    program: &'static str,
    source: &'static str,
    bytes: Vec<u8>,
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("light-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sixty_four_clients_submit_dedup_and_query() {
    // -- Build the corpus locally: 12 unique healthy recordings (the
    // same program at different argument values records different
    // bytes) plus one chaos-captured faulting recording with a known
    // bug signature.
    let race = Light::new(Arc::new(lir::parse(RACE).unwrap()));
    let mut corpus = Vec::new();
    for n in 0..12i64 {
        let (recording, _) = race.record(&[4 + n], 7).unwrap();
        corpus.push(CorpusEntry {
            program: "race",
            source: RACE,
            bytes: write_recording(&recording).to_vec(),
        });
    }
    let divzero = Light::new(Arc::new(lir::parse(DIVZERO).unwrap()));
    let (buggy, _) = divzero
        .find_bug(&[], 0..400)
        .expect("the div-by-zero interleaving exists in the seed range");
    let fault = buggy.fault.as_ref().expect("find_bug returns a faulting run");
    let bug_signature = format!("{:?}@{}", fault.kind, fault.line);
    corpus.push(CorpusEntry {
        program: "divzero",
        source: DIVZERO,
        bytes: write_recording(&buggy).to_vec(),
    });
    let unique = corpus.len();
    let corpus = Arc::new(corpus);

    // -- Start the daemon and hammer it: every client submits the full
    // corpus, so all but the first arrival of each entry is a duplicate.
    let dir = tmpdir("main");
    let handle = start(ServerOptions {
        registry: dir.clone(),
        conn_threads: 8,
        queue_capacity: 16, // smaller than the job count: exercises backpressure
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let submitted: Vec<(String, bool)> = std::thread::scope(|scope| {
        // A live scraper races the submission storm: the Metrics op must
        // answer mid-run without blocking on the job queue or a worker.
        let scraper = {
            let addr = &addr;
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..20 {
                    let m = c.metrics().unwrap();
                    assert!(!m.draining, "scrape mid-run, not mid-drain");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            })
        };
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = &addr;
                let corpus = corpus.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Stagger the walk so first-arrivals spread across
                    // clients instead of client 0 winning every entry.
                    (0..corpus.len())
                        .map(|i| {
                            let entry = &corpus[(c + i) % corpus.len()];
                            let reply = client
                                .submit(entry.program, entry.source, &entry.bytes)
                                .unwrap();
                            (reply.blob_hash, reply.dedup)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let out = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        scraper.join().unwrap();
        out
    });

    // -- Dedup accounting: every submission got a hash; exactly one
    // submission per unique recording was fresh, all others dedup hits.
    let total = CLIENTS * unique;
    assert_eq!(submitted.len(), total);
    let fresh = submitted.iter().filter(|(_, dedup)| !dedup).count();
    assert_eq!(fresh, unique, "each unique recording jobs exactly once");
    let hashes: HashSet<&str> = submitted.iter().map(|(h, _)| h.as_str()).collect();
    assert_eq!(hashes.len(), unique);

    // -- Drain, then check the counters the server itself reports.
    let mut client = Client::connect(&addr).unwrap();
    client.wait_idle().unwrap();
    let status = client.status().unwrap();
    assert_eq!(status.metrics.submissions, total as u64);
    assert_eq!(status.metrics.dedup_hits, (total - unique) as u64);
    assert_eq!(status.metrics.jobs_ok, unique as u64, "all jobs healthy");
    assert_eq!(status.metrics.jobs_diverged, 0, "zero unexpected divergences");
    assert_eq!(status.metrics.jobs_failed, 0);
    assert!(status.metrics.queue_peak > 0);
    assert_eq!(status.queue_depth, 0);
    assert_eq!(status.in_flight, 0);

    // -- Live metrics snapshot: stage histograms populated daemon-wide,
    // and the counters it carries agree exactly with the status op.
    let live = client.metrics().unwrap();
    assert_eq!(live.jobs_done, unique as u64);
    let serve_live = live.snapshot.serve.expect("live snapshot carries serve counters");
    assert_eq!(serve_live.submissions, status.metrics.submissions);
    assert_eq!(serve_live.dedup_hits, status.metrics.dedup_hits);
    assert_eq!(serve_live.jobs_ok, status.metrics.jobs_ok);
    assert_eq!(serve_live.jobs_failed, status.metrics.jobs_failed);
    assert_eq!(serve_live.queue_peak, status.metrics.queue_peak);
    for stage in STAGES {
        let h = live
            .snapshot
            .latencies
            .get(stage)
            .unwrap_or_else(|| panic!("live snapshot missing stage {stage}"));
        // Ingest is timed per submission (dedup hits still hash the
        // blob); the five job stages run once per unique recording.
        let expect = if stage == "ingest" { total } else { unique };
        assert_eq!(h.count(), expect as u64, "stage {stage} sample count");
    }
    let depth_hist = &live.snapshot.latencies["queue-depth"];
    assert_eq!(depth_hist.count(), unique as u64, "one depth sample per enqueue");

    // -- Query by program: exactly the 12 race jobs, all ok.
    let reply = client
        .query(&Query {
            program: Some("race".into()),
            kind: Some(RunKind::Serve),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(reply.skipped, 0);
    assert!(!reply.truncated);
    assert_eq!(reply.matched, 12);
    let by_program = reply.records;
    assert_eq!(by_program.len(), 12);
    assert!(by_program.iter().all(|r| r.status == RunStatus::Ok));
    assert!(by_program.iter().all(|r| r.run_id.is_some()));

    // -- Query by bug signature: exactly the one faulting recording's
    // job, carrying the signature computed locally before submission.
    let by_bug = client
        .query(&Query {
            bug_signature: Some(bug_signature.clone()),
            ..Default::default()
        })
        .unwrap()
        .records;
    assert_eq!(by_bug.len(), 1, "signature {bug_signature} should match once");
    assert_eq!(by_bug[0].program, "divzero");
    assert_eq!(by_bug[0].status, RunStatus::Ok, "healthy replay of a buggy run");

    // -- Exact-once storage on disk: one blob file per unique recording,
    // in the sharded fan-out, every one readable.
    let registry = Registry::open(&dir).unwrap();
    assert!(registry.is_sharded());
    for hash in &hashes {
        assert!(!registry.read_blob(hash).unwrap().is_empty(), "blob {hash} lost");
    }
    let mut on_disk = 0;
    for entry in std::fs::read_dir(dir.join("blobs")).unwrap() {
        let entry = entry.unwrap();
        assert!(entry.file_type().unwrap().is_dir(), "sharded layout only");
        on_disk += std::fs::read_dir(entry.path()).unwrap().count();
    }
    assert_eq!(on_disk, unique, "every unique recording stored exactly once");

    // -- Clean shutdown drains and leaves a summary record with the
    // server-side metrics section.
    let jobs_done = client.shutdown().unwrap();
    assert_eq!(jobs_done, unique as u64);
    handle.join();
    let summary: Vec<_> = registry
        .load()
        .unwrap()
        .into_iter()
        .filter(|r| r.program == "light-serve")
        .collect();
    assert_eq!(summary.len(), 1);
    let serve = summary[0]
        .metrics
        .as_ref()
        .and_then(|m| m.serve)
        .expect("summary carries the serve metrics section");
    assert_eq!(serve.submissions, total as u64);
    assert_eq!(serve.dedup_hits, (total - unique) as u64);
    let summary_latencies = &summary[0].metrics.as_ref().unwrap().latencies;
    assert_eq!(
        summary_latencies["queue-wait"].count(),
        unique as u64,
        "stage histograms outlive the daemon via the summary record"
    );
    assert!(summary_latencies["queue-depth"].count() > 0);

    // -- Event log: every job fully journaled, per-job timestamps
    // monotonic, and every RunId joinable with the registry records and
    // the Chrome-trace export.
    let (events, skipped) = read_events(&dir).unwrap();
    assert_eq!(skipped, 0, "no torn or foreign lines in events.jsonl");
    let mut by_job: HashMap<u64, Vec<&JobEvent>> = HashMap::new();
    for ev in &events {
        by_job.entry(ev.job_id).or_default().push(ev);
    }
    assert_eq!(by_job.len(), unique, "exactly one event stream per fresh job");
    let job_run_ids: HashSet<String> = registry
        .load()
        .unwrap()
        .into_iter()
        .filter(|r| r.kind == RunKind::Serve && r.program != "light-serve")
        .filter_map(|r| r.run_id)
        .collect();
    assert_eq!(job_run_ids.len(), unique);
    for (job_id, evs) in &by_job {
        let kinds: Vec<&str> = evs.iter().map(|e| e.event.as_str()).collect();
        for needed in ["accepted", "queued", "started", "finished"] {
            assert!(kinds.contains(&needed), "job {job_id} missing {needed}: {kinds:?}");
        }
        let stages: HashSet<&str> = evs
            .iter()
            .filter(|e| e.event == "stage")
            .filter_map(|e| e.stage.as_deref())
            .collect();
        for stage in STAGES {
            assert!(stages.contains(stage), "job {job_id} missing stage {stage}");
        }
        for pair in evs.windows(2) {
            assert!(
                pair[0].ts_us <= pair[1].ts_us,
                "job {job_id}: {} at {}us after {} at {}us",
                pair[1].event,
                pair[1].ts_us,
                pair[0].event,
                pair[0].ts_us
            );
        }
        let queued = evs.iter().find(|e| e.event == "queued").unwrap();
        assert!(queued.queue_depth.is_some(), "queued event records depth at enqueue");
        let finished = evs.iter().find(|e| e.event == "finished").unwrap();
        assert_eq!(finished.status.as_deref(), Some("ok"));
        assert!(
            job_run_ids.contains(&finished.run_id),
            "job {job_id} run_id {} not in the registry",
            finished.run_id
        );
    }
    let trace = chrome_trace(&events);
    for run_id in &job_run_ids {
        assert!(trace.contains(run_id.as_str()), "trace export missing {run_id}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A job that outlives the stage deadline gets exactly one watchdog
/// event carrying the live flight-recorder tail — and still runs to
/// completion: the watchdog observes, it never kills.
#[test]
fn watchdog_dumps_flight_tail_of_slow_jobs() {
    let race = Light::new(Arc::new(lir::parse(RACE).unwrap()));
    let (recording, _) = race.record(&[2500], 9).unwrap();
    let bytes = write_recording(&recording).to_vec();

    let dir = tmpdir("watchdog");
    let handle = start(ServerOptions {
        registry: dir.clone(),
        workers: 1,
        stage_deadline_ms: 1, // far below a 2500-iteration solve+replay
        ..ServerOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let reply = client.submit("race", RACE, &bytes).unwrap();
    assert!(!reply.dedup);
    client.wait_idle().unwrap();
    client.shutdown().unwrap();
    handle.join();

    let (events, skipped) = read_events(&dir).unwrap();
    assert_eq!(skipped, 0);
    let dogs: Vec<&JobEvent> = events.iter().filter(|e| e.event == "watchdog").collect();
    assert_eq!(dogs.len(), 1, "the deadline fires once per job, not per poll");
    let dog = dogs[0];
    assert!(
        dog.detail.as_deref().unwrap_or("").starts_with("flight tail"),
        "watchdog detail should carry the flight tail, got {:?}",
        dog.detail
    );
    assert!(dog.dur_us.unwrap_or(0) >= 1_000, "fired only past the deadline");
    let finished = events.iter().find(|e| e.event == "finished").unwrap();
    assert_eq!(finished.status.as_deref(), Some("ok"));
    assert_eq!(finished.run_id, dog.run_id, "tail attributed to the right job");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The soft memory watchdog journals exactly one `budget-exceeded`
/// event (edge-triggered) with a per-subsystem breakdown while tracked
/// bytes sit above the budget — and, like the flight watchdog, only
/// observes: jobs still run to completion.
#[test]
fn memory_budget_breach_is_journaled_once_with_breakdown() {
    // Pin the process-wide tracked total above the 1 MiB budget for the
    // daemon's whole lifetime (gauges are global; start() runs in-process).
    let ballast = light_core::obs::mem::handle("test-serve-ballast");
    ballast.add(2 << 20);

    let race = Light::new(Arc::new(lir::parse(RACE).unwrap()));
    let (recording, _) = race.record(&[30], 11).unwrap();
    let bytes = write_recording(&recording).to_vec();

    let dir = tmpdir("mem-budget");
    let handle = start(ServerOptions {
        registry: dir.clone(),
        workers: 1,
        memory_budget_mib: 1,
        ..ServerOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let reply = client.submit("race", RACE, &bytes).unwrap();
    assert!(!reply.dedup);
    client.wait_idle().unwrap();
    // Outlast several 250 ms watchdog polls: enough to prove both that
    // it fires and that it does not re-fire while the breach holds.
    std::thread::sleep(std::time::Duration::from_millis(900));
    client.shutdown().unwrap();
    handle.join();
    ballast.sub(2 << 20);

    let (events, skipped) = read_events(&dir).unwrap();
    assert_eq!(skipped, 0);
    let breaches: Vec<&JobEvent> = events
        .iter()
        .filter(|e| e.event == "budget-exceeded")
        .collect();
    assert_eq!(breaches.len(), 1, "edge-triggered: one event per breach");
    let detail = breaches[0].detail.as_deref().unwrap_or("");
    assert!(detail.contains("budget=1048576"), "detail: {detail}");
    assert!(detail.contains("test-serve-ballast="), "detail: {detail}");
    let finished = events.iter().find(|e| e.event == "finished").unwrap();
    assert_eq!(finished.status.as_deref(), Some("ok"), "watchdog never kills");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Submissions racing a shutdown either run or get a clean "draining"
/// rejection — never a hang, never a half-stored job.
#[test]
fn shutdown_drains_and_rejects_late_submissions() {
    let race = Light::new(Arc::new(lir::parse(RACE).unwrap()));
    let (recording, _) = race.record(&[30], 3).unwrap();
    let bytes = write_recording(&recording).to_vec();

    let dir = tmpdir("drain");
    let handle = start(ServerOptions {
        registry: dir.clone(),
        workers: 1,
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let reply = client.submit("race", RACE, &bytes).unwrap();
    assert!(!reply.dedup);
    let done = Client::connect(&addr).unwrap().shutdown().unwrap();
    assert_eq!(done, 1, "the queued job ran before the daemon stopped");
    handle.join();

    let registry = Registry::open(&dir).unwrap();
    let records = registry.load().unwrap();
    let job = records
        .iter()
        .find(|r| r.program == "race")
        .expect("the drained job was ingested");
    assert_eq!(job.status, RunStatus::Ok);
    assert_eq!(job.blob_hash.as_deref(), Some(reply.blob_hash.as_str()));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Job-level dedup keys on "a job ran" (a Serve record referencing the
/// blob), not on blob presence: a blob stored by another tool — or
/// stored by a submission that never got a job — is processed on its
/// next submission, while a blob a previous server lifetime already
/// jobbed stays a dedup hit after restart.
#[test]
fn restart_dedups_jobbed_blobs_but_processes_unjobbed_ones() {
    let race = Light::new(Arc::new(lir::parse(RACE).unwrap()));
    let (recording, _) = race.record(&[25], 5).unwrap();
    let bytes = write_recording(&recording).to_vec();

    // A blob on disk with no Serve record: what a drain rejection, a
    // crash with queued jobs, or a foreign writer leaves behind.
    let dir = tmpdir("restart");
    let registry = Registry::open_sharded(&dir).unwrap();
    let (pre_hash, on_disk) = registry.store_blob(&bytes).unwrap();
    assert!(!on_disk);

    let handle = start(ServerOptions {
        registry: dir.clone(),
        workers: 1,
        ..ServerOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let reply = client.submit("race", RACE, &bytes).unwrap();
    assert_eq!(reply.blob_hash, pre_hash);
    assert!(!reply.dedup, "a stored-but-never-jobbed blob must get a job");
    client.wait_idle().unwrap();
    client.shutdown().unwrap();
    handle.join();

    // Second lifetime on the same registry: the job's record is the
    // cross-restart dedup key, so resubmission runs nothing.
    let handle = start(ServerOptions {
        registry: dir.clone(),
        workers: 1,
        ..ServerOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let reply = client.submit("race", RACE, &bytes).unwrap();
    assert_eq!(reply.blob_hash, pre_hash);
    assert!(reply.dedup, "a jobbed blob stays deduplicated across restarts");
    let jobs_done = client.shutdown().unwrap();
    assert_eq!(jobs_done, 0, "the second lifetime ran no job");
    handle.join();

    let records = Registry::open(&dir).unwrap().load().unwrap();
    let jobs: Vec<_> = records.iter().filter(|r| r.program == "race").collect();
    assert_eq!(jobs.len(), 1, "exactly one job record across both lifetimes");
    std::fs::remove_dir_all(&dir).unwrap();
}
