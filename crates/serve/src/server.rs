//! The `light-serve` daemon: a thread-pool TCP server feeding a bounded
//! job queue.
//!
//! Three thread groups share one [`Shared`] state:
//!
//! - the **acceptor** owns the listener and hands sockets to
//! - **connection handlers**, a fixed pool that speaks the framed
//!   protocol (one request/reply exchange at a time per connection,
//!   connections held open across requests), and
//! - **job workers**, which drain the bounded queue running
//!   solve → replay → doctor per accepted recording.
//!
//! Submissions are stored content-addressed *before* queueing, so a
//! duplicate is detected by hash and answered immediately without a
//! second job — the dedup counters the status endpoint reports. The
//! job-level dedup decision is a single atomic insert into the `seen`
//! hash set, primed at startup from the registry's existing `Serve`
//! records: exactly one of any number of concurrent first submissions
//! wins the insert and enqueues the job, and a blob that was stored but
//! never jobbed (a drain rejection, a crash, a blob written by another
//! tool) is *not* a duplicate — its next submission runs. The queue is
//! bounded: when `queue_capacity` jobs are waiting, submitters block
//! inside their connection until a worker frees a slot (backpressure by
//! not replying, no new protocol state needed).
//!
//! Shutdown is drain-then-stop: the queue closes (new submissions get
//! an error reply), workers finish what is queued, a summary record
//! with the server's [`ServeMetrics`] is ingested, and only then do the
//! acceptor and handlers wind down.

use crate::job::{run_job, Job};
use crate::proto::{read_frame, write_error, write_frame, Request};
use light_core::ComponentCache;
use light_obs::json::Value;
use light_obs::{mem, now_us, MetricsRegistry, MetricsSnapshot, RunId, ServeMetrics};
use light_profile::FlightRecorder;
use light_telemetry::{events_path, JobEvent, Registry, RunKind, RunRecord, RunStatus};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port `0` picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Registry root. Opened (or converted on creation) with the
    /// sharded blob layout.
    pub registry: PathBuf,
    /// Job worker threads. `0` means one per available core.
    pub workers: usize,
    /// Connection handler threads.
    pub conn_threads: usize,
    /// Bounded job queue capacity; submitters block when it is full.
    pub queue_capacity: usize,
    /// Turbo solver workers *per job* (`0` = one per core). Kept at 1
    /// by default: parallelism comes from running many jobs, not from
    /// sharding one job's solve across the pool's cores.
    pub solver_workers: usize,
    /// Slow-job watchdog deadline in milliseconds: a job still running
    /// this long past its start gets the tail of its flight recording
    /// dumped into the event log as a `watchdog` event (once per job).
    /// `0` disables the watchdog — jobs then run without a per-job
    /// flight recorder at all.
    pub stage_deadline_ms: u64,
    /// Soft memory budget in MiB. When the process-wide memory plane
    /// ([`light_obs::mem::global`]) reports more resident bytes than
    /// this, the daemon emits one `budget-exceeded` event (with a
    /// per-subsystem breakdown in `detail`) into the event log and
    /// re-arms once usage falls below 90% of the budget. Soft: nothing
    /// is aborted or shed — the event is the signal. `0` disables it.
    pub memory_budget_mib: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            registry: PathBuf::from("light-registry"),
            workers: 0,
            conn_threads: 8,
            queue_capacity: 64,
            solver_workers: 1,
            stage_deadline_ms: 0,
            memory_budget_mib: 0,
        }
    }
}

/// Monotonic counters behind the status endpoint; snapshotted into
/// [`ServeMetrics`] for the shutdown summary record.
#[derive(Default)]
struct Stats {
    submissions: AtomicU64,
    dedup_hits: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_diverged: AtomicU64,
    jobs_failed: AtomicU64,
    ingest_failed: AtomicU64,
    queue_peak: AtomicU64,
    busy_workers: AtomicU64,
}

impl Stats {
    fn snapshot(&self, workers: u64) -> ServeMetrics {
        ServeMetrics {
            submissions: self.submissions.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            jobs_diverged: self.jobs_diverged.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            ingest_failed: self.ingest_failed.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            workers,
        }
    }

    fn raise_peak(&self, depth: u64) {
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Best-effort appender of the `light-serve/events/v1` job event log
/// (`events.jsonl` next to the registry index). Observability must not
/// fail jobs: an unopenable file or a failed write drops the line, the
/// job proceeds. Lines are written whole under one lock so concurrent
/// workers never interleave bytes.
struct EventLog {
    file: Mutex<Option<File>>,
}

impl EventLog {
    fn open(root: &Path) -> Self {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(events_path(root))
            .ok();
        EventLog {
            file: Mutex::new(file),
        }
    }

    fn log(&self, ev: &JobEvent) {
        let line = ev.to_json().to_json();
        if let Some(f) = self.file.lock().unwrap().as_mut() {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// One in-flight job under watchdog observation.
struct WatchEntry {
    started_us: u64,
    recorder: Arc<FlightRecorder>,
    run_id: String,
    blob_hash: String,
    program: String,
    /// The deadline fires once per job, not once per poll tick.
    fired: bool,
}

/// The slow-job watchdog: workers register each job with its per-job
/// flight recorder; a monitor thread scans the in-flight map and, past
/// the stage deadline, dumps the recorder's live tail into the event
/// log — the "what is that job doing right now" answer without
/// stopping the daemon or the job.
struct Watchdog {
    state: Mutex<(HashMap<u64, WatchEntry>, bool)>,
    tick: Condvar,
    deadline_us: u64,
}

impl Watchdog {
    fn new(deadline_ms: u64) -> Self {
        Watchdog {
            state: Mutex::new((HashMap::new(), false)),
            tick: Condvar::new(),
            deadline_us: deadline_ms.saturating_mul(1_000),
        }
    }

    fn enabled(&self) -> bool {
        self.deadline_us > 0
    }

    fn register(&self, job_id: u64, entry: WatchEntry) {
        self.state.lock().unwrap().0.insert(job_id, entry);
    }

    fn deregister(&self, job_id: u64) {
        self.state.lock().unwrap().0.remove(&job_id);
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.tick.notify_all();
    }
}

/// Renders a bounded, human-scannable flight tail for a watchdog event.
fn render_flight_tail(recorder: &FlightRecorder) -> String {
    let tail = recorder.dump_tail(32);
    if tail.is_empty() {
        return "flight tail: no events yet".into();
    }
    let mut out = format!(
        "flight tail ({} of {} events):",
        tail.len(),
        recorder.events_seen()
    );
    for ev in &tail {
        out.push_str(&format!(" {}@{}us/t{}", ev.kind.name(), ev.ts_us, ev.tid));
    }
    out
}

fn watchdog_loop(shared: &Shared) {
    let wd = &shared.watchdog;
    // Poll at a quarter of the deadline, clamped to [1ms, 250ms]: fine
    // enough to fire near the deadline, coarse enough to stay invisible
    // in the profile.
    let poll = Duration::from_micros((wd.deadline_us / 4).clamp(1_000, 250_000));
    let mut state = wd.state.lock().unwrap();
    loop {
        if state.1 {
            return;
        }
        let now = now_us();
        for (job_id, entry) in state.0.iter_mut() {
            if entry.fired || now.saturating_sub(entry.started_us) < wd.deadline_us {
                continue;
            }
            entry.fired = true;
            let mut ev = JobEvent::new(
                "watchdog",
                *job_id,
                &entry.run_id,
                &entry.blob_hash,
                &entry.program,
            );
            ev.dur_us = Some(now.saturating_sub(entry.started_us));
            ev.detail = Some(render_flight_tail(&entry.recorder));
            shared.events.log(&ev);
        }
        state = wd.tick.wait_timeout(state, poll).unwrap().0;
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
    closed: bool,
    jobs_done: u64,
}

/// A bounded MPMC job queue on `Mutex` + `Condvar` — the workspace has
/// no channel crate and needs none: three wait conditions (space,
/// work, idle) map to three condvars.
struct JobQueue {
    state: Mutex<QueueState>,
    space: Condvar,
    work: Condvar,
    idle: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
                closed: false,
                jobs_done: 0,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            idle: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while full; returns `(depth after pushing, enqueue
    /// timestamp)`, or `Err` once the queue is draining. The timestamp
    /// is stamped into the job *after* the backpressure wait, so a
    /// worker's post-pop clock reading minus it is the pure queue-wait
    /// and the `queued` event it keys precedes `started` on every job's
    /// timeline.
    fn push(&self, mut job: Job) -> Result<(u64, u64), ()> {
        let mut state = self.state.lock().unwrap();
        while state.jobs.len() >= self.capacity && !state.closed {
            state = self.space.wait(state).unwrap();
        }
        if state.closed {
            return Err(());
        }
        let enqueued_us = now_us();
        job.enqueued_us = enqueued_us;
        state.jobs.push_back(job);
        let depth = state.jobs.len() as u64;
        self.work.notify_one();
        Ok((depth, enqueued_us))
    }

    /// Blocks until a job is available; `None` once draining completes.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.in_flight += 1;
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.work.wait(state).unwrap();
        }
    }

    /// Marks one popped job finished.
    fn done(&self) {
        let mut state = self.state.lock().unwrap();
        state.in_flight -= 1;
        state.jobs_done += 1;
        if state.jobs.is_empty() && state.in_flight == 0 {
            self.idle.notify_all();
        }
    }

    /// Blocks until the queue is empty and no job is mid-run; returns
    /// the total completed so far.
    fn wait_idle(&self) -> u64 {
        let mut state = self.state.lock().unwrap();
        while !state.jobs.is_empty() || state.in_flight > 0 {
            state = self.idle.wait(state).unwrap();
        }
        state.jobs_done
    }

    /// Rejects future pushes and wakes every waiter. Queued jobs still
    /// run to completion.
    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.space.notify_all();
        self.work.notify_all();
        // Already idle: wake drain waiters that would otherwise sleep
        // until a job that will never come finishes.
        if state.jobs.is_empty() && state.in_flight == 0 {
            self.idle.notify_all();
        }
    }

    fn depth(&self) -> (u64, u64, bool) {
        let state = self.state.lock().unwrap();
        (
            state.jobs.len() as u64,
            state.in_flight as u64,
            state.closed,
        )
    }

    fn jobs_done(&self) -> u64 {
        self.state.lock().unwrap().jobs_done
    }
}

/// An unbounded hand-off queue from the acceptor to the handler pool.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut state = self.state.lock().unwrap();
        if state.1 {
            return; // stopping: drop the socket, the peer sees EOF
        }
        state.0.push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 = true;
        state.0.clear();
        self.ready.notify_all();
    }
}

/// Duplicated handles of every connection a handler is serving, so a
/// drain can unblock handlers parked in `read_frame` on an idle
/// connection: `TcpStream::shutdown` on the duplicate tears down the
/// shared socket and the blocked read returns EOF.
struct ActiveConns {
    state: Mutex<(HashMap<u64, TcpStream>, bool)>,
    next: AtomicU64,
}

impl ActiveConns {
    fn new() -> Self {
        Self {
            state: Mutex::new((HashMap::new(), false)),
            next: AtomicU64::new(0),
        }
    }

    /// `None` — the server is draining or the socket cannot be
    /// duplicated — means the connection is untrackable: the caller
    /// must drop it unserved, never serve it outside the map.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let mut state = self.state.lock().unwrap();
        if state.1 {
            return None;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        state.0.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.state.lock().unwrap().0.remove(&id);
    }

    fn close_all(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 = true;
        for (_, stream) in state.0.drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

struct Shared {
    registry: Registry,
    cache: ComponentCache,
    queue: JobQueue,
    conns: ConnQueue,
    active: ActiveConns,
    stats: Stats,
    /// Blob hashes that already have a job (queued, running, or done) —
    /// the job-level dedup filter on top of the registry's
    /// storage-level dedup. Primed at startup with the blob hashes of
    /// the registry's existing `Serve` records, so dedup across
    /// restarts is keyed on "a job ran", not on blob presence: a blob
    /// that was stored but never jobbed is submittable again. The
    /// freshness decision is the `insert` alone, so concurrent first
    /// submissions of one blob elect exactly one job.
    seen: Mutex<HashSet<String>>,
    next_job: AtomicU64,
    stopping: AtomicBool,
    addr: SocketAddr,
    workers: u64,
    solver_workers: usize,
    started: Instant,
    /// Daemon-wide per-stage latency histograms (ingest, queue-wait,
    /// solve, replay, doctor, registry-write) plus the queue-depth
    /// distribution — the live snapshot behind the `Metrics` op.
    metrics: MetricsRegistry,
    /// The per-job event log appender.
    events: EventLog,
    /// The slow-job watchdog (inert when no deadline is configured).
    watchdog: Watchdog,
    /// Byte gauges for recording blobs queued ([`mem::subsystem::SERVE_QUEUE`])
    /// and popped-but-unfinished ([`mem::subsystem::SERVE_INFLIGHT`]).
    /// Moved at the queue's ownership boundaries only: push, pop, done.
    mem_queue: mem::MemGauge,
    mem_inflight: mem::MemGauge,
    /// Soft memory budget in bytes (`0` = no watchdog thread).
    memory_budget: u64,
}

/// The soft memory-budget watchdog: polls the process-wide memory plane
/// and emits one `budget-exceeded` event per excursion above the budget
/// (re-arming below 90%), with the per-subsystem breakdown in `detail`.
/// Purely observational — no job is aborted, shed, or delayed.
fn budget_loop(shared: &Shared) {
    let budget = shared.memory_budget;
    let rearm = budget - budget / 10;
    let mut armed = true;
    while !shared.stopping.load(Ordering::SeqCst) {
        let total = mem::global().total_bytes();
        if armed && total > budget {
            armed = false;
            let snap = mem::global().snapshot();
            let mut breakdown: Vec<String> = snap
                .subsystems
                .iter()
                .filter(|(_, s)| s.bytes > 0)
                .map(|(name, s)| format!("{name}={}", s.bytes))
                .collect();
            breakdown.sort();
            let mut ev = JobEvent::new("budget-exceeded", 0, "", "", "light-serve");
            ev.detail = Some(format!(
                "total={} budget={} breakdown: {}",
                total,
                budget,
                breakdown.join(" ")
            ));
            shared.events.log(&ev);
        } else if !armed && total < rearm {
            armed = true;
        }
        thread::sleep(Duration::from_millis(250));
    }
}

/// A running server. Dropping the handle does not stop the daemon; send
/// a `Shutdown` request (e.g. [`crate::Client::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Waits for the daemon to finish (i.e. for a `Shutdown` request to
    /// drain the queue and stop the thread groups).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds, spawns the thread groups, and returns immediately.
///
/// # Errors
///
/// Propagates bind failures and registry-open failures as `io::Error`.
pub fn start(options: ServerOptions) -> io::Result<ServerHandle> {
    let registry = Registry::open_sharded(&options.registry)
        .map_err(|e| io::Error::other(format!("registry: {e}")))?;
    // Prime job-level dedup with every blob a previous lifetime already
    // ran a job for. Keying on Serve *records* (not blob presence)
    // keeps blobs that were stored but never jobbed — drain rejections,
    // crashes with queued jobs, blobs written by other tools —
    // submittable after a restart.
    let seen: HashSet<String> = registry
        .load()
        .map_err(|e| io::Error::other(format!("registry index: {e}")))?
        .into_iter()
        .filter(|r| r.kind == RunKind::Serve)
        .filter_map(|r| r.blob_hash)
        .collect();
    let listener = TcpListener::bind(&options.addr)?;
    let addr = listener.local_addr()?;
    let workers = if options.workers == 0 {
        thread::available_parallelism().map_or(4, usize::from)
    } else {
        options.workers
    };
    let events = EventLog::open(&options.registry);
    let shared = Arc::new(Shared {
        registry,
        cache: ComponentCache::new(),
        queue: JobQueue::new(options.queue_capacity),
        conns: ConnQueue::new(),
        active: ActiveConns::new(),
        stats: Stats::default(),
        seen: Mutex::new(seen),
        next_job: AtomicU64::new(1),
        stopping: AtomicBool::new(false),
        addr,
        workers: workers as u64,
        solver_workers: options.solver_workers,
        started: Instant::now(),
        metrics: MetricsRegistry::new(),
        events,
        watchdog: Watchdog::new(options.stage_deadline_ms),
        mem_queue: mem::handle(mem::subsystem::SERVE_QUEUE),
        mem_inflight: mem::handle(mem::subsystem::SERVE_INFLIGHT),
        memory_budget: options.memory_budget_mib.saturating_mul(1 << 20),
    });

    let mut threads = Vec::new();
    if shared.memory_budget > 0 {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("serve-mem-budget".into())
                .spawn(move || budget_loop(&shared))?,
        );
    }
    if shared.watchdog.enabled() {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared))?,
        );
    }
    for i in 0..workers {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    for i in 0..options.conn_threads.max(1) {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("serve-conn-{i}"))
                .spawn(move || handler_loop(&shared))?,
        );
    }
    {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    Ok(ServerHandle { shared, threads })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // Request/reply round trips on small frames: Nagle
                // would serialize them against delayed ACKs.
                let _ = stream.set_nodelay(true);
                shared.conns.push(stream);
            }
            Err(_) if shared.stopping.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // The blob's ownership moves queue -> worker here, and out of
        // the daemon entirely when the job finishes below.
        let blob_len = job.recording.len() as u64;
        shared.mem_queue.sub(blob_len);
        shared.mem_inflight.add(blob_len);
        shared.stats.busy_workers.fetch_add(1, Ordering::Relaxed);
        let run_id = job.run_id.to_string();
        let event = |name: &str| JobEvent::new(name, job.id, &run_id, &job.blob_hash, &job.program);
        let stage = |name: &str, dur_us: u64| {
            shared.metrics.latency(name, dur_us);
            let mut ev = event("stage");
            ev.stage = Some(name.into());
            ev.dur_us = Some(dur_us);
            shared.events.log(&ev);
        };
        let popped_us = now_us();
        shared.events.log(&event("started"));
        stage("queue-wait", popped_us.saturating_sub(job.enqueued_us));

        // A per-job flight recorder exists only for the watchdog: with
        // no deadline configured jobs run flight-disabled, exactly as
        // before the watchdog existed.
        let recorder = shared.watchdog.enabled().then(|| FlightRecorder::new(4096));
        if let Some(rec) = &recorder {
            shared.watchdog.register(
                job.id,
                WatchEntry {
                    started_us: popped_us,
                    recorder: rec.clone(),
                    run_id: run_id.clone(),
                    blob_hash: job.blob_hash.clone(),
                    program: job.program.clone(),
                    fired: false,
                },
            );
        }
        let flight = recorder
            .as_ref()
            .map_or_else(light_obs::Flight::disabled, |r| r.flight());
        let job_started = Instant::now();
        let record = run_job(&job, &shared.cache, shared.solver_workers, flight);
        let job_wall_us = job_started.elapsed().as_micros() as u64;
        if recorder.is_some() {
            shared.watchdog.deregister(job.id);
        }
        // Stage attribution from the job's own snapshot: the solver and
        // the enforced replay run report their wall time; the remainder
        // of the job (parse, recording decode, constraint build, doctor
        // checks) is booked as "doctor". Failed jobs without a snapshot
        // book their whole wall under doctor.
        let solve_us = record
            .metrics
            .as_ref()
            .and_then(|m| m.solver)
            .map_or(0, |s| s.solve_ns / 1_000);
        let replay_us = record
            .metrics
            .as_ref()
            .and_then(|m| m.replay_run)
            .map_or(0, |r| r.duration_ns / 1_000);
        stage("solve", solve_us);
        stage("replay", replay_us);
        stage("doctor", job_wall_us.saturating_sub(solve_us + replay_us));
        let status = record.status;
        match status {
            RunStatus::Ok => shared.stats.jobs_ok.fetch_add(1, Ordering::Relaxed),
            RunStatus::Diverged => shared.stats.jobs_diverged.fetch_add(1, Ordering::Relaxed),
            _ => shared.stats.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        // The blob was stored at submit time; the record references it
        // by hash, so no bytes are re-written here. An ingest failure
        // loses the outcome record while jobs_ok/jobs_done still count
        // the job — surface it instead of letting queries silently
        // under-report completed work.
        let write_started = Instant::now();
        let ingest = shared.registry.ingest(record, None);
        stage("registry-write", write_started.elapsed().as_micros() as u64);
        if let Err(e) = ingest {
            shared.stats.ingest_failed.fetch_add(1, Ordering::Relaxed);
            eprintln!("light-serve: job {}: ingest failed: {e}", job.id);
        }
        let mut fin = event("finished");
        fin.status = Some(status.as_str().into());
        fin.dur_us = Some(job_wall_us);
        shared.events.log(&fin);
        shared.stats.busy_workers.fetch_sub(1, Ordering::Relaxed);
        shared.mem_inflight.sub(blob_len);
        shared.queue.done();
    }
}

fn handler_loop(shared: &Shared) {
    while let Some(stream) = shared.conns.pop() {
        // An untracked connection is unreachable by close_all: a
        // handler parked reading it would block shutdown forever. If it
        // cannot be registered (draining, or try_clone failed), drop
        // the socket — the peer sees EOF — rather than serve it.
        let Some(id) = shared.active.register(&stream) else {
            continue;
        };
        let _ = handle_connection(stream, shared);
        shared.active.deregister(id);
    }
}

/// Serves one connection until EOF, a frame error, or server stop.
fn handle_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    loop {
        let Some(frame) = read_frame(&mut stream)? else {
            return Ok(());
        };
        let request = match Request::parse(frame) {
            Ok(r) => r,
            Err(e) => {
                write_error(&mut stream, &e.to_string())?;
                continue;
            }
        };
        match request {
            Request::Submit {
                program,
                source,
                recording,
            } => handle_submit(&mut stream, shared, program, source, recording)?,
            Request::Query(query) => handle_query(&mut stream, shared, &query)?,
            Request::Status => handle_status(&mut stream, shared)?,
            Request::Metrics => handle_metrics(&mut stream, shared)?,
            Request::Wait => {
                let jobs_done = shared.queue.wait_idle();
                let header = Value::obj([
                    ("ok", Value::Bool(true)),
                    ("jobs_done", Value::from(jobs_done)),
                ]);
                write_frame(&mut stream, &header, &[])?;
            }
            Request::Shutdown => {
                handle_shutdown(&mut stream, shared)?;
                return Ok(());
            }
        }
    }
}

fn handle_submit(
    stream: &mut TcpStream,
    shared: &Shared,
    program: String,
    source: String,
    recording: Vec<u8>,
) -> io::Result<()> {
    shared.stats.submissions.fetch_add(1, Ordering::Relaxed);
    if recording.is_empty() {
        return write_error(stream, "empty recording");
    }
    let ingest_started = Instant::now();
    let (hash, _on_disk) = match shared.registry.store_blob(&recording) {
        Ok(stored) => stored,
        Err(e) => return write_error(stream, &format!("store: {e}")),
    };
    let ingest_us = ingest_started.elapsed().as_micros() as u64;
    shared.metrics.latency("ingest", ingest_us);
    // The freshness decision is this insert and nothing else: among
    // concurrent first submissions of the same blob exactly one thread
    // wins and enqueues the job. The on-disk check cannot participate —
    // a racing submitter may observe the winner's freshly renamed blob
    // and both would then decline (storing the blob but jobbing it
    // never). Cross-lifetime dedup is covered by priming `seen` from
    // the registry's Serve records at startup.
    let fresh = shared.seen.lock().unwrap().insert(hash.clone());
    if !fresh {
        shared.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
        let header = Value::obj([
            ("ok", Value::Bool(true)),
            ("blob_hash", Value::from(hash.as_str())),
            ("dedup", Value::Bool(true)),
        ]);
        return write_frame(stream, &header, &[]);
    }
    let job = Job {
        id: shared.next_job.fetch_add(1, Ordering::Relaxed),
        program: program.clone(),
        source,
        blob_hash: hash.clone(),
        recording,
        run_id: RunId::fresh(),
        enqueued_us: 0,
    };
    let job_id = job.id;
    let blob_len = job.recording.len() as u64;
    let run_id = job.run_id.to_string();
    let event = |name: &str| JobEvent::new(name, job_id, &run_id, &hash, &program);
    shared.events.log(&event("accepted"));
    let mut ing = event("stage");
    ing.stage = Some("ingest".into());
    ing.dur_us = Some(ingest_us);
    shared.events.log(&ing);
    // Account before the push: the moment `push` succeeds the worker may
    // already have popped the job and subtracted its bytes — adding after
    // the fact would race that sub (saturating it at zero) and strand a
    // phantom residual on the gauge.
    shared.mem_queue.add(blob_len);
    match shared.queue.push(job) {
        Ok((depth, enqueued_us)) => {
            shared.stats.raise_peak(depth);
            // Depth is a gauge sampled at enqueue, kept as a histogram
            // so the snapshot carries its distribution (the light-watch
            // backpressure table reads its percentiles).
            shared.metrics.latency("queue-depth", depth);
            let mut queued = event("queued");
            queued.ts_us = enqueued_us;
            queued.queue_depth = Some(depth);
            shared.events.log(&queued);
            let header = Value::obj([
                ("ok", Value::Bool(true)),
                ("blob_hash", Value::from(hash.as_str())),
                ("dedup", Value::Bool(false)),
                ("job_id", Value::from(job_id)),
            ]);
            write_frame(stream, &header, &[])
        }
        Err(()) => {
            // Draining: the blob is stored but no job will run it this
            // lifetime. Forget the hash so the seen-set stays "has a
            // job"; no Serve record will reference this blob, so a
            // restarted server (which primes dedup from Serve records,
            // not blob presence) accepts the resubmission and jobs it.
            shared.seen.lock().unwrap().remove(&hash);
            shared.events.log(&event("rejected"));
            write_error(stream, "server is draining, submission rejected")
        }
    }
}

/// Cap on one query reply's JSONL blob (32 MiB). Well under the frame
/// layer's `MAX_BLOB`, so a query over an arbitrarily large registry
/// answers with a bounded, truncation-flagged reply instead of a
/// `write_frame` error that tears down the connection mid-session.
const MAX_QUERY_BLOB: usize = 32 << 20;

/// Renders records as JSONL, stopping before a line would push the blob
/// past `cap`. Returns the blob and how many records it holds.
fn render_jsonl(records: &[RunRecord], cap: usize) -> (String, usize) {
    let mut blob = String::new();
    for (i, rec) in records.iter().enumerate() {
        let line = rec.to_json().to_json();
        if blob.len() + line.len() + 1 > cap {
            return (blob, i);
        }
        blob.push_str(&line);
        blob.push('\n');
    }
    (blob, records.len())
}

fn handle_query(
    stream: &mut TcpStream,
    shared: &Shared,
    query: &light_telemetry::Query,
) -> io::Result<()> {
    let (mut records, stats) = match shared.registry.load_with_stats() {
        Ok(loaded) => loaded,
        Err(e) => return write_error(stream, &format!("load: {e}")),
    };
    records.retain(|r| query.matches(r));
    let (blob, returned) = render_jsonl(&records, MAX_QUERY_BLOB);
    let header = Value::obj([
        ("ok", Value::Bool(true)),
        ("count", Value::from(returned)),
        ("matched", Value::from(records.len())),
        ("truncated", Value::Bool(returned < records.len())),
        ("skipped", Value::from(stats.skipped)),
    ]);
    write_frame(stream, &header, blob.as_bytes())
}

fn handle_status(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    let (queue_depth, in_flight, draining) = shared.queue.depth();
    let metrics = shared.stats.snapshot(shared.workers);
    let header = Value::obj([
        ("ok", Value::Bool(true)),
        ("queue_depth", Value::from(queue_depth)),
        ("in_flight", Value::from(in_flight)),
        (
            "busy_workers",
            Value::from(shared.stats.busy_workers.load(Ordering::Relaxed)),
        ),
        ("draining", Value::Bool(draining)),
        ("jobs_done", Value::from(shared.queue.jobs_done())),
        (
            "uptime_ms",
            Value::from(shared.started.elapsed().as_millis() as u64),
        ),
        ("metrics", metrics.to_json()),
    ]);
    write_frame(stream, &header, &[])
}

/// The daemon's live unified snapshot: the stage-latency histograms
/// accumulated so far plus the serve counters, composable with every
/// consumer of [`MetricsSnapshot`] (Prometheus exposition, the
/// registry's trend/backpressure tables, `light-serve top`).
fn live_snapshot(shared: &Shared) -> MetricsSnapshot {
    let mut snap = shared.metrics.snapshot();
    snap.serve = Some(shared.stats.snapshot(shared.workers));
    // The memory plane rides along: every consumer of the live snapshot
    // (metrics op, prom exposition, top, the shutdown summary record)
    // sees the same per-subsystem byte gauges.
    snap.mem = Some(mem::global().snapshot());
    snap
}

/// Answers the `Metrics` op: the status gauges plus the full live
/// snapshot, readable mid-run — this is the Prometheus scrape path, so
/// it must not block on the job queue or stop any worker (it takes the
/// metrics mutex only long enough to clone the snapshot).
fn handle_metrics(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    let (queue_depth, in_flight, draining) = shared.queue.depth();
    let header = Value::obj([
        ("ok", Value::Bool(true)),
        ("queue_depth", Value::from(queue_depth)),
        ("in_flight", Value::from(in_flight)),
        (
            "busy_workers",
            Value::from(shared.stats.busy_workers.load(Ordering::Relaxed)),
        ),
        ("draining", Value::Bool(draining)),
        ("jobs_done", Value::from(shared.queue.jobs_done())),
        (
            "uptime_ms",
            Value::from(shared.started.elapsed().as_millis() as u64),
        ),
        ("metrics", live_snapshot(shared).to_json()),
    ]);
    write_frame(stream, &header, &[])
}

fn handle_shutdown(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    shared.queue.close();
    let jobs_done = shared.queue.wait_idle();
    shared.watchdog.close();
    ingest_summary(shared);
    let header = Value::obj([
        ("ok", Value::Bool(true)),
        ("jobs_done", Value::from(jobs_done)),
    ]);
    write_frame(stream, &header, &[])?;
    // Stop order matters: mark stopping before poking the acceptor so
    // its next accept() observes the flag, close the hand-off queue so
    // idle handlers exit, then tear down every open connection (ours
    // included — the reply above is already flushed) so handlers parked
    // in a read on an idle connection see EOF and exit too.
    shared.stopping.store(true, Ordering::SeqCst);
    shared.conns.close();
    shared.active.close_all();
    let _ = TcpStream::connect(shared.addr);
    Ok(())
}

/// One `RunRecord` for the server lifetime itself, carrying the
/// [`ServeMetrics`] section — the registry's record that this service
/// ran, processed N submissions, and deduplicated M of them.
fn ingest_summary(shared: &Shared) {
    let mut rec = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);
    rec.provenance = Some(format!("light-serve daemon on {}", shared.addr));
    rec.wall_ms = Some(shared.started.elapsed().as_millis() as u64);
    let snap = live_snapshot(shared);
    let serve = snap.serve.unwrap_or_default();
    rec.headline
        .insert("submissions".into(), serve.submissions as f64);
    rec.headline
        .insert("dedup_hits".into(), serve.dedup_hits as f64);
    // The whole live snapshot rides along, so the stage-latency
    // histograms outlive the daemon: `light-watch trend --backpressure`
    // reads the queue-depth and queue-wait distributions off this
    // record after the daemon is gone.
    rec.metrics = Some(snap);
    let _ = shared.registry.ingest(rec, None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_jsonl_caps_at_line_boundaries() {
        let records: Vec<RunRecord> = (0..50)
            .map(|i| RunRecord::new(format!("p{i}"), RunKind::Serve, RunStatus::Ok))
            .collect();
        let (full, n) = render_jsonl(&records, usize::MAX);
        assert_eq!(n, 50);
        assert_eq!(full.lines().count(), 50);
        let cap = full.len() / 2;
        let (half, n) = render_jsonl(&records, cap);
        assert!(0 < n && n < 50);
        assert!(half.len() <= cap);
        assert_eq!(half.lines().count(), n);
        // Truncation never splits a line: every rendered line parses.
        for line in half.lines() {
            assert!(Value::parse(line).is_ok());
        }
        let (empty, n) = render_jsonl(&records, 0);
        assert_eq!((empty.as_str(), n), ("", 0));
    }
}
