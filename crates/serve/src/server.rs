//! The `light-serve` daemon: a thread-pool TCP server feeding a bounded
//! job queue.
//!
//! Three thread groups share one [`Shared`] state:
//!
//! - the **acceptor** owns the listener and hands sockets to
//! - **connection handlers**, a fixed pool that speaks the framed
//!   protocol (one request/reply exchange at a time per connection,
//!   connections held open across requests), and
//! - **job workers**, which drain the bounded queue running
//!   solve → replay → doctor per accepted recording.
//!
//! Submissions are stored content-addressed *before* queueing, so a
//! duplicate is detected by hash and answered immediately without a
//! second job — the dedup counters the status endpoint reports. The
//! job-level dedup decision is a single atomic insert into the `seen`
//! hash set, primed at startup from the registry's existing `Serve`
//! records: exactly one of any number of concurrent first submissions
//! wins the insert and enqueues the job, and a blob that was stored but
//! never jobbed (a drain rejection, a crash, a blob written by another
//! tool) is *not* a duplicate — its next submission runs. The queue is
//! bounded: when `queue_capacity` jobs are waiting, submitters block
//! inside their connection until a worker frees a slot (backpressure by
//! not replying, no new protocol state needed).
//!
//! Shutdown is drain-then-stop: the queue closes (new submissions get
//! an error reply), workers finish what is queued, a summary record
//! with the server's [`ServeMetrics`] is ingested, and only then do the
//! acceptor and handlers wind down.

use crate::job::{run_job, Job};
use crate::proto::{read_frame, write_error, write_frame, Request};
use light_core::ComponentCache;
use light_obs::json::Value;
use light_obs::{MetricsSnapshot, RunId, ServeMetrics};
use light_telemetry::{Registry, RunKind, RunRecord, RunStatus};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; port `0` picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Registry root. Opened (or converted on creation) with the
    /// sharded blob layout.
    pub registry: PathBuf,
    /// Job worker threads. `0` means one per available core.
    pub workers: usize,
    /// Connection handler threads.
    pub conn_threads: usize,
    /// Bounded job queue capacity; submitters block when it is full.
    pub queue_capacity: usize,
    /// Turbo solver workers *per job* (`0` = one per core). Kept at 1
    /// by default: parallelism comes from running many jobs, not from
    /// sharding one job's solve across the pool's cores.
    pub solver_workers: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            registry: PathBuf::from("light-registry"),
            workers: 0,
            conn_threads: 8,
            queue_capacity: 64,
            solver_workers: 1,
        }
    }
}

/// Monotonic counters behind the status endpoint; snapshotted into
/// [`ServeMetrics`] for the shutdown summary record.
#[derive(Default)]
struct Stats {
    submissions: AtomicU64,
    dedup_hits: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_diverged: AtomicU64,
    jobs_failed: AtomicU64,
    ingest_failed: AtomicU64,
    queue_peak: AtomicU64,
    busy_workers: AtomicU64,
}

impl Stats {
    fn snapshot(&self, workers: u64) -> ServeMetrics {
        ServeMetrics {
            submissions: self.submissions.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            jobs_diverged: self.jobs_diverged.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            ingest_failed: self.ingest_failed.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            workers,
        }
    }

    fn raise_peak(&self, depth: u64) {
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
    closed: bool,
    jobs_done: u64,
}

/// A bounded MPMC job queue on `Mutex` + `Condvar` — the workspace has
/// no channel crate and needs none: three wait conditions (space,
/// work, idle) map to three condvars.
struct JobQueue {
    state: Mutex<QueueState>,
    space: Condvar,
    work: Condvar,
    idle: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
                closed: false,
                jobs_done: 0,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            idle: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while full; returns the depth after pushing, or `Err` once
    /// the queue is draining.
    fn push(&self, job: Job) -> Result<u64, ()> {
        let mut state = self.state.lock().unwrap();
        while state.jobs.len() >= self.capacity && !state.closed {
            state = self.space.wait(state).unwrap();
        }
        if state.closed {
            return Err(());
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len() as u64;
        self.work.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available; `None` once draining completes.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.in_flight += 1;
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.work.wait(state).unwrap();
        }
    }

    /// Marks one popped job finished.
    fn done(&self) {
        let mut state = self.state.lock().unwrap();
        state.in_flight -= 1;
        state.jobs_done += 1;
        if state.jobs.is_empty() && state.in_flight == 0 {
            self.idle.notify_all();
        }
    }

    /// Blocks until the queue is empty and no job is mid-run; returns
    /// the total completed so far.
    fn wait_idle(&self) -> u64 {
        let mut state = self.state.lock().unwrap();
        while !state.jobs.is_empty() || state.in_flight > 0 {
            state = self.idle.wait(state).unwrap();
        }
        state.jobs_done
    }

    /// Rejects future pushes and wakes every waiter. Queued jobs still
    /// run to completion.
    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        self.space.notify_all();
        self.work.notify_all();
        // Already idle: wake drain waiters that would otherwise sleep
        // until a job that will never come finishes.
        if state.jobs.is_empty() && state.in_flight == 0 {
            self.idle.notify_all();
        }
    }

    fn depth(&self) -> (u64, u64, bool) {
        let state = self.state.lock().unwrap();
        (
            state.jobs.len() as u64,
            state.in_flight as u64,
            state.closed,
        )
    }

    fn jobs_done(&self) -> u64 {
        self.state.lock().unwrap().jobs_done
    }
}

/// An unbounded hand-off queue from the acceptor to the handler pool.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut state = self.state.lock().unwrap();
        if state.1 {
            return; // stopping: drop the socket, the peer sees EOF
        }
        state.0.push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 = true;
        state.0.clear();
        self.ready.notify_all();
    }
}

/// Duplicated handles of every connection a handler is serving, so a
/// drain can unblock handlers parked in `read_frame` on an idle
/// connection: `TcpStream::shutdown` on the duplicate tears down the
/// shared socket and the blocked read returns EOF.
struct ActiveConns {
    state: Mutex<(HashMap<u64, TcpStream>, bool)>,
    next: AtomicU64,
}

impl ActiveConns {
    fn new() -> Self {
        Self {
            state: Mutex::new((HashMap::new(), false)),
            next: AtomicU64::new(0),
        }
    }

    /// `None` — the server is draining or the socket cannot be
    /// duplicated — means the connection is untrackable: the caller
    /// must drop it unserved, never serve it outside the map.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let mut state = self.state.lock().unwrap();
        if state.1 {
            return None;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        state.0.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.state.lock().unwrap().0.remove(&id);
    }

    fn close_all(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 = true;
        for (_, stream) in state.0.drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

struct Shared {
    registry: Registry,
    cache: ComponentCache,
    queue: JobQueue,
    conns: ConnQueue,
    active: ActiveConns,
    stats: Stats,
    /// Blob hashes that already have a job (queued, running, or done) —
    /// the job-level dedup filter on top of the registry's
    /// storage-level dedup. Primed at startup with the blob hashes of
    /// the registry's existing `Serve` records, so dedup across
    /// restarts is keyed on "a job ran", not on blob presence: a blob
    /// that was stored but never jobbed is submittable again. The
    /// freshness decision is the `insert` alone, so concurrent first
    /// submissions of one blob elect exactly one job.
    seen: Mutex<HashSet<String>>,
    next_job: AtomicU64,
    stopping: AtomicBool,
    addr: SocketAddr,
    workers: u64,
    solver_workers: usize,
    started: Instant,
}

/// A running server. Dropping the handle does not stop the daemon; send
/// a `Shutdown` request (e.g. [`crate::Client::shutdown`]) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Waits for the daemon to finish (i.e. for a `Shutdown` request to
    /// drain the queue and stop the thread groups).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds, spawns the thread groups, and returns immediately.
///
/// # Errors
///
/// Propagates bind failures and registry-open failures as `io::Error`.
pub fn start(options: ServerOptions) -> io::Result<ServerHandle> {
    let registry = Registry::open_sharded(&options.registry)
        .map_err(|e| io::Error::other(format!("registry: {e}")))?;
    // Prime job-level dedup with every blob a previous lifetime already
    // ran a job for. Keying on Serve *records* (not blob presence)
    // keeps blobs that were stored but never jobbed — drain rejections,
    // crashes with queued jobs, blobs written by other tools —
    // submittable after a restart.
    let seen: HashSet<String> = registry
        .load()
        .map_err(|e| io::Error::other(format!("registry index: {e}")))?
        .into_iter()
        .filter(|r| r.kind == RunKind::Serve)
        .filter_map(|r| r.blob_hash)
        .collect();
    let listener = TcpListener::bind(&options.addr)?;
    let addr = listener.local_addr()?;
    let workers = if options.workers == 0 {
        thread::available_parallelism().map_or(4, usize::from)
    } else {
        options.workers
    };
    let shared = Arc::new(Shared {
        registry,
        cache: ComponentCache::new(),
        queue: JobQueue::new(options.queue_capacity),
        conns: ConnQueue::new(),
        active: ActiveConns::new(),
        stats: Stats::default(),
        seen: Mutex::new(seen),
        next_job: AtomicU64::new(1),
        stopping: AtomicBool::new(false),
        addr,
        workers: workers as u64,
        solver_workers: options.solver_workers,
        started: Instant::now(),
    });

    let mut threads = Vec::new();
    for i in 0..workers {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    for i in 0..options.conn_threads.max(1) {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("serve-conn-{i}"))
                .spawn(move || handler_loop(&shared))?,
        );
    }
    {
        let shared = shared.clone();
        threads.push(
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    Ok(ServerHandle { shared, threads })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // Request/reply round trips on small frames: Nagle
                // would serialize them against delayed ACKs.
                let _ = stream.set_nodelay(true);
                shared.conns.push(stream);
            }
            Err(_) if shared.stopping.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.stats.busy_workers.fetch_add(1, Ordering::Relaxed);
        let record = run_job(&job, &shared.cache, shared.solver_workers);
        match record.status {
            RunStatus::Ok => shared.stats.jobs_ok.fetch_add(1, Ordering::Relaxed),
            RunStatus::Diverged => shared.stats.jobs_diverged.fetch_add(1, Ordering::Relaxed),
            _ => shared.stats.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        // The blob was stored at submit time; the record references it
        // by hash, so no bytes are re-written here. An ingest failure
        // loses the outcome record while jobs_ok/jobs_done still count
        // the job — surface it instead of letting queries silently
        // under-report completed work.
        if let Err(e) = shared.registry.ingest(record, None) {
            shared.stats.ingest_failed.fetch_add(1, Ordering::Relaxed);
            eprintln!("light-serve: job {}: ingest failed: {e}", job.id);
        }
        shared.stats.busy_workers.fetch_sub(1, Ordering::Relaxed);
        shared.queue.done();
    }
}

fn handler_loop(shared: &Shared) {
    while let Some(stream) = shared.conns.pop() {
        // An untracked connection is unreachable by close_all: a
        // handler parked reading it would block shutdown forever. If it
        // cannot be registered (draining, or try_clone failed), drop
        // the socket — the peer sees EOF — rather than serve it.
        let Some(id) = shared.active.register(&stream) else {
            continue;
        };
        let _ = handle_connection(stream, shared);
        shared.active.deregister(id);
    }
}

/// Serves one connection until EOF, a frame error, or server stop.
fn handle_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    loop {
        let Some(frame) = read_frame(&mut stream)? else {
            return Ok(());
        };
        let request = match Request::parse(frame) {
            Ok(r) => r,
            Err(e) => {
                write_error(&mut stream, &e.to_string())?;
                continue;
            }
        };
        match request {
            Request::Submit {
                program,
                source,
                recording,
            } => handle_submit(&mut stream, shared, program, source, recording)?,
            Request::Query(query) => handle_query(&mut stream, shared, &query)?,
            Request::Status => handle_status(&mut stream, shared)?,
            Request::Wait => {
                let jobs_done = shared.queue.wait_idle();
                let header = Value::obj([
                    ("ok", Value::Bool(true)),
                    ("jobs_done", Value::from(jobs_done)),
                ]);
                write_frame(&mut stream, &header, &[])?;
            }
            Request::Shutdown => {
                handle_shutdown(&mut stream, shared)?;
                return Ok(());
            }
        }
    }
}

fn handle_submit(
    stream: &mut TcpStream,
    shared: &Shared,
    program: String,
    source: String,
    recording: Vec<u8>,
) -> io::Result<()> {
    shared.stats.submissions.fetch_add(1, Ordering::Relaxed);
    if recording.is_empty() {
        return write_error(stream, "empty recording");
    }
    let (hash, _on_disk) = match shared.registry.store_blob(&recording) {
        Ok(stored) => stored,
        Err(e) => return write_error(stream, &format!("store: {e}")),
    };
    // The freshness decision is this insert and nothing else: among
    // concurrent first submissions of the same blob exactly one thread
    // wins and enqueues the job. The on-disk check cannot participate —
    // a racing submitter may observe the winner's freshly renamed blob
    // and both would then decline (storing the blob but jobbing it
    // never). Cross-lifetime dedup is covered by priming `seen` from
    // the registry's Serve records at startup.
    let fresh = shared.seen.lock().unwrap().insert(hash.clone());
    if !fresh {
        shared.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
        let header = Value::obj([
            ("ok", Value::Bool(true)),
            ("blob_hash", Value::from(hash.as_str())),
            ("dedup", Value::Bool(true)),
        ]);
        return write_frame(stream, &header, &[]);
    }
    let job = Job {
        id: shared.next_job.fetch_add(1, Ordering::Relaxed),
        program,
        source,
        blob_hash: hash.clone(),
        recording,
        run_id: RunId::fresh(),
    };
    let job_id = job.id;
    match shared.queue.push(job) {
        Ok(depth) => {
            shared.stats.raise_peak(depth);
            let header = Value::obj([
                ("ok", Value::Bool(true)),
                ("blob_hash", Value::from(hash.as_str())),
                ("dedup", Value::Bool(false)),
                ("job_id", Value::from(job_id)),
            ]);
            write_frame(stream, &header, &[])
        }
        Err(()) => {
            // Draining: the blob is stored but no job will run it this
            // lifetime. Forget the hash so the seen-set stays "has a
            // job"; no Serve record will reference this blob, so a
            // restarted server (which primes dedup from Serve records,
            // not blob presence) accepts the resubmission and jobs it.
            shared.seen.lock().unwrap().remove(&hash);
            write_error(stream, "server is draining, submission rejected")
        }
    }
}

/// Cap on one query reply's JSONL blob (32 MiB). Well under the frame
/// layer's `MAX_BLOB`, so a query over an arbitrarily large registry
/// answers with a bounded, truncation-flagged reply instead of a
/// `write_frame` error that tears down the connection mid-session.
const MAX_QUERY_BLOB: usize = 32 << 20;

/// Renders records as JSONL, stopping before a line would push the blob
/// past `cap`. Returns the blob and how many records it holds.
fn render_jsonl(records: &[RunRecord], cap: usize) -> (String, usize) {
    let mut blob = String::new();
    for (i, rec) in records.iter().enumerate() {
        let line = rec.to_json().to_json();
        if blob.len() + line.len() + 1 > cap {
            return (blob, i);
        }
        blob.push_str(&line);
        blob.push('\n');
    }
    (blob, records.len())
}

fn handle_query(
    stream: &mut TcpStream,
    shared: &Shared,
    query: &light_telemetry::Query,
) -> io::Result<()> {
    let (mut records, stats) = match shared.registry.load_with_stats() {
        Ok(loaded) => loaded,
        Err(e) => return write_error(stream, &format!("load: {e}")),
    };
    records.retain(|r| query.matches(r));
    let (blob, returned) = render_jsonl(&records, MAX_QUERY_BLOB);
    let header = Value::obj([
        ("ok", Value::Bool(true)),
        ("count", Value::from(returned)),
        ("matched", Value::from(records.len())),
        ("truncated", Value::Bool(returned < records.len())),
        ("skipped", Value::from(stats.skipped)),
    ]);
    write_frame(stream, &header, blob.as_bytes())
}

fn handle_status(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    let (queue_depth, in_flight, draining) = shared.queue.depth();
    let metrics = shared.stats.snapshot(shared.workers);
    let header = Value::obj([
        ("ok", Value::Bool(true)),
        ("queue_depth", Value::from(queue_depth)),
        ("in_flight", Value::from(in_flight)),
        (
            "busy_workers",
            Value::from(shared.stats.busy_workers.load(Ordering::Relaxed)),
        ),
        ("draining", Value::Bool(draining)),
        ("jobs_done", Value::from(shared.queue.jobs_done())),
        (
            "uptime_ms",
            Value::from(shared.started.elapsed().as_millis() as u64),
        ),
        ("metrics", metrics.to_json()),
    ]);
    write_frame(stream, &header, &[])
}

fn handle_shutdown(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    shared.queue.close();
    let jobs_done = shared.queue.wait_idle();
    ingest_summary(shared);
    let header = Value::obj([
        ("ok", Value::Bool(true)),
        ("jobs_done", Value::from(jobs_done)),
    ]);
    write_frame(stream, &header, &[])?;
    // Stop order matters: mark stopping before poking the acceptor so
    // its next accept() observes the flag, close the hand-off queue so
    // idle handlers exit, then tear down every open connection (ours
    // included — the reply above is already flushed) so handlers parked
    // in a read on an idle connection see EOF and exit too.
    shared.stopping.store(true, Ordering::SeqCst);
    shared.conns.close();
    shared.active.close_all();
    let _ = TcpStream::connect(shared.addr);
    Ok(())
}

/// One `RunRecord` for the server lifetime itself, carrying the
/// [`ServeMetrics`] section — the registry's record that this service
/// ran, processed N submissions, and deduplicated M of them.
fn ingest_summary(shared: &Shared) {
    let mut rec = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);
    rec.provenance = Some(format!("light-serve daemon on {}", shared.addr));
    rec.wall_ms = Some(shared.started.elapsed().as_millis() as u64);
    let serve = shared.stats.snapshot(shared.workers);
    rec.headline
        .insert("submissions".into(), serve.submissions as f64);
    rec.headline
        .insert("dedup_hits".into(), serve.dedup_hits as f64);
    rec.metrics = Some(MetricsSnapshot {
        serve: Some(serve),
        ..MetricsSnapshot::default()
    });
    let _ = shared.registry.ingest(rec, None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_jsonl_caps_at_line_boundaries() {
        let records: Vec<RunRecord> = (0..50)
            .map(|i| RunRecord::new(format!("p{i}"), RunKind::Serve, RunStatus::Ok))
            .collect();
        let (full, n) = render_jsonl(&records, usize::MAX);
        assert_eq!(n, 50);
        assert_eq!(full.lines().count(), 50);
        let cap = full.len() / 2;
        let (half, n) = render_jsonl(&records, cap);
        assert!(0 < n && n < 50);
        assert!(half.len() <= cap);
        assert_eq!(half.lines().count(), n);
        // Truncation never splits a line: every rendered line parses.
        for line in half.lines() {
            assert!(Value::parse(line).is_ok());
        }
        let (empty, n) = render_jsonl(&records, 0);
        assert_eq!((empty.as_str(), n), ("", 0));
    }
}
