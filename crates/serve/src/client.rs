//! Blocking client for the `light-serve` protocol: one TCP connection,
//! reused across requests (the server holds connections open).

use crate::proto::{read_reply, Request};
use light_obs::json::Value;
use light_obs::{MetricsSnapshot, ServeMetrics};
use light_telemetry::{Query, RunRecord};
use std::io;
use std::net::TcpStream;

/// The server's answer to one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReply {
    /// Content hash of the stored recording.
    pub blob_hash: String,
    /// Whether this exact recording was already known (stored and
    /// jobbed); a duplicate costs storage of nothing and runs no job.
    pub dedup: bool,
    /// Job id for fresh submissions, `None` on dedup.
    pub job_id: Option<u64>,
}

/// The server's answer to one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The matching records the reply carried (ingest order).
    pub records: Vec<RunRecord>,
    /// Records matching the filter server-side. Greater than
    /// `records.len()` when the reply was truncated.
    pub matched: u64,
    /// True when the server capped the result set at its reply-size
    /// bound; `records` is then a prefix of the match set.
    pub truncated: bool,
    /// Torn or foreign index lines the server skipped while loading —
    /// non-zero means even `matched` under-reports the registry.
    pub skipped: u64,
}

/// The server's status snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusReply {
    pub queue_depth: u64,
    pub in_flight: u64,
    pub busy_workers: u64,
    pub draining: bool,
    pub jobs_done: u64,
    pub uptime_ms: u64,
    pub metrics: ServeMetrics,
}

/// The server's live metrics snapshot: the status gauges plus the
/// daemon-wide unified snapshot carrying per-stage latency histograms
/// and serve counters — the scrape path for Prometheus and
/// `light-serve top`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReply {
    pub queue_depth: u64,
    pub in_flight: u64,
    pub busy_workers: u64,
    pub draining: bool,
    pub jobs_done: u64,
    pub uptime_ms: u64,
    /// The live snapshot; `snapshot.serve` carries the counters,
    /// `snapshot.latencies` the stage histograms.
    pub snapshot: MetricsSnapshot,
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Small request/reply frames; Nagle + delayed ACK would add a
        // ~40ms floor to every round trip.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Submits one recording for storage and a pipeline job. Blocks
    /// while the server's job queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// I/O failures, or the server's error reply (e.g. draining).
    pub fn submit(&mut self, program: &str, source: &str, recording: &[u8]) -> io::Result<SubmitReply> {
        Request::Submit {
            program: program.into(),
            source: source.into(),
            recording: recording.to_vec(),
        }
        .write(&mut self.stream)?;
        let reply = read_reply(&mut self.stream)?;
        let h = &reply.header;
        Ok(SubmitReply {
            blob_hash: h
                .get("blob_hash")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("submit reply without blob_hash"))?
                .to_string(),
            dedup: h
                .get("dedup")
                .and_then(Value::as_bool)
                .ok_or_else(|| bad("submit reply without dedup"))?,
            job_id: h.get("job_id").and_then(Value::as_u64),
        })
    }

    /// Runs a registry query server-side; returns the matching records
    /// plus the server's truncation and skipped-line accounting.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed reply.
    pub fn query(&mut self, query: &Query) -> io::Result<QueryReply> {
        Request::Query(query.clone()).write(&mut self.stream)?;
        let reply = read_reply(&mut self.stream)?;
        let h = &reply.header;
        let num = |key: &str| h.get(key).and_then(Value::as_u64).unwrap_or(0);
        let text = std::str::from_utf8(&reply.blob)
            .map_err(|_| bad("query reply blob is not UTF-8"))?;
        let mut records = Vec::new();
        for line in text.lines() {
            let v = Value::parse(line).map_err(|_| bad("query reply line is not JSON"))?;
            records.push(RunRecord::from_json(&v).ok_or_else(|| bad("query reply line is not a run record"))?);
        }
        let matched = num("matched").max(records.len() as u64);
        Ok(QueryReply {
            matched,
            truncated: h
                .get("truncated")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            skipped: num("skipped"),
            records,
        })
    }

    /// Fetches queue/worker/dedup counters.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed reply.
    pub fn status(&mut self) -> io::Result<StatusReply> {
        Request::Status.write(&mut self.stream)?;
        let reply = read_reply(&mut self.stream)?;
        let h = &reply.header;
        let num = |key: &str| h.get(key).and_then(Value::as_u64).unwrap_or(0);
        Ok(StatusReply {
            queue_depth: num("queue_depth"),
            in_flight: num("in_flight"),
            busy_workers: num("busy_workers"),
            draining: h.get("draining").and_then(Value::as_bool).unwrap_or(false),
            jobs_done: num("jobs_done"),
            uptime_ms: num("uptime_ms"),
            metrics: h
                .get("metrics")
                .map(ServeMetrics::from_json)
                .ok_or_else(|| bad("status reply without metrics"))?,
        })
    }

    /// Fetches the live metrics snapshot (stage-latency histograms plus
    /// serve counters) without perturbing the daemon — the scrape path.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed reply.
    pub fn metrics(&mut self) -> io::Result<MetricsReply> {
        Request::Metrics.write(&mut self.stream)?;
        let reply = read_reply(&mut self.stream)?;
        let h = &reply.header;
        let num = |key: &str| h.get(key).and_then(Value::as_u64).unwrap_or(0);
        Ok(MetricsReply {
            queue_depth: num("queue_depth"),
            in_flight: num("in_flight"),
            busy_workers: num("busy_workers"),
            draining: h.get("draining").and_then(Value::as_bool).unwrap_or(false),
            jobs_done: num("jobs_done"),
            uptime_ms: num("uptime_ms"),
            snapshot: h
                .get("metrics")
                .map(MetricsSnapshot::from_json)
                .ok_or_else(|| bad("metrics reply without snapshot"))?,
        })
    }

    /// Blocks until the server's queue is empty and all workers are
    /// idle; returns the jobs completed so far.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn wait_idle(&mut self) -> io::Result<u64> {
        Request::Wait.write(&mut self.stream)?;
        let reply = read_reply(&mut self.stream)?;
        Ok(reply
            .header
            .get("jobs_done")
            .and_then(Value::as_u64)
            .unwrap_or(0))
    }

    /// Asks the daemon to drain and exit; returns total jobs completed.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn shutdown(&mut self) -> io::Result<u64> {
        Request::Shutdown.write(&mut self.stream)?;
        let reply = read_reply(&mut self.stream)?;
        Ok(reply
            .header
            .get("jobs_done")
            .and_then(Value::as_u64)
            .unwrap_or(0))
    }
}
