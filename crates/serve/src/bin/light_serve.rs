//! `light-serve` — the replay-as-a-service daemon and its client.
//!
//! ```text
//! light-serve serve --addr 127.0.0.1:0 --registry runs/
//! light-serve submit --addr 127.0.0.1:7979 --corpus
//! light-serve submit --addr ... --program p --source p.lir --rec run.lrec
//! light-serve query --addr ... --bug NullDeref@12
//! light-serve status --addr ... [--json]
//! light-serve metrics --addr ... [--prom | --json]
//! light-serve top --addr ... [--interval 1000] [--ticks 0]
//! light-serve wait --addr ...
//! light-serve shutdown --addr ...
//! ```
//!
//! `serve` prints `light-serve listening on <addr>` once bound (port
//! `0` resolves to the picked port — scripts parse this line), then
//! runs until a `shutdown` request drains the queue.

use light_core::{write_recording, Light};
use light_obs::json::Value;
use light_obs::Histogram;
use light_serve::{start, Client, MetricsReply, ServerOptions};
use light_telemetry::events::STAGES;
use light_telemetry::{prom, Query, RunKind, RunStatus, REGISTRY_ENV};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: light-serve <command> [options]

commands:
  serve      run the daemon (until a shutdown request)
  submit     record and/or send recordings to a daemon
  query      list matching registry records via the daemon
  status     print queue/worker/dedup counters
  metrics    fetch the live metric snapshot (stage latency histograms)
  top        poll metrics and render a refreshing dashboard
  wait       block until the daemon's queue is idle
  shutdown   drain the queue and stop the daemon

serve options:
  --addr <host:port>   bind address (default 127.0.0.1:0; port 0 picks)
  --registry <dir>     registry root (default: $LIGHT_REGISTRY)
  --workers <n>        job workers (default: one per core)
  --conn-threads <n>   connection handler threads (default 8)
  --queue <n>          bounded job queue capacity (default 64)
  --solver-workers <n> turbo solver threads per job (default 1)
  --stage-deadline <ms> slow-job watchdog deadline (default 0 = off)
  --memory-budget <MiB> soft memory budget: log a budget-exceeded event
                       with a per-subsystem breakdown when the memory
                       plane exceeds it (default 0 = off)

submit options:
  --addr <host:port>   daemon address (required)
  --corpus             record the bug-suite workloads and submit each
  --chaos              with --corpus: hunt each bug's faulting recording
  --repeat <n>         submit the corpus n times (dedup exercise, default 1)
  --program <name>     with --source/--rec: label for the submission
  --source <path>      LIR source file of the recording's program
  --rec <path>         recording file (.lrec) to submit

query options:
  --addr <host:port>   daemon address (required)
  --program <name>, --kind <k>, --status <s>, --bug <sig>, --run-id <hex>
  --json               one JSON object per line instead of a table

metrics options:
  --addr <host:port>   daemon address (required)
  --prom               Prometheus text exposition (the scrape format)
  --json               the raw snapshot as one JSON object

top options:
  --addr <host:port>   daemon address (required)
  --interval <ms>      refresh interval (default 1000)
  --ticks <n>          stop after n refreshes (default 0 = forever)

status options:
  --addr <host:port>   daemon address (required)
  --json               counters as one JSON object (script-friendly)";

struct Cli {
    command: String,
    addr: Option<String>,
    registry: Option<String>,
    workers: usize,
    conn_threads: usize,
    queue: usize,
    solver_workers: usize,
    corpus: bool,
    chaos: bool,
    repeat: usize,
    program: Option<String>,
    source: Option<String>,
    rec: Option<String>,
    kind: Option<RunKind>,
    status: Option<RunStatus>,
    bug: Option<String>,
    run_id: Option<String>,
    json: bool,
    stage_deadline: u64,
    memory_budget: u64,
    prom: bool,
    interval: u64,
    ticks: usize,
}

fn parse_cli() -> Result<Cli, String> {
    let mut it = std::env::args().skip(1);
    let command = match it.next() {
        Some(c) if c == "--help" || c == "-h" => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        Some(c) if !c.starts_with('-') => c,
        _ => return Err("missing command".into()),
    };
    let mut cli = Cli {
        command,
        addr: None,
        registry: None,
        workers: 0,
        conn_threads: 8,
        queue: 64,
        solver_workers: 1,
        corpus: false,
        chaos: false,
        repeat: 1,
        program: None,
        source: None,
        rec: None,
        kind: None,
        status: None,
        bug: None,
        run_id: None,
        json: false,
        stage_deadline: 0,
        memory_budget: 0,
        prom: false,
        interval: 1000,
        ticks: 0,
    };
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_num = |raw: String, flag: &str| -> Result<usize, String> {
        raw.parse().map_err(|e| format!("{flag}: {e}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cli.addr = Some(next_val(&mut it, "--addr")?),
            "--registry" => cli.registry = Some(next_val(&mut it, "--registry")?),
            "--workers" => cli.workers = parse_num(next_val(&mut it, "--workers")?, "--workers")?,
            "--conn-threads" => {
                cli.conn_threads = parse_num(next_val(&mut it, "--conn-threads")?, "--conn-threads")?
            }
            "--queue" => cli.queue = parse_num(next_val(&mut it, "--queue")?, "--queue")?,
            "--solver-workers" => {
                cli.solver_workers =
                    parse_num(next_val(&mut it, "--solver-workers")?, "--solver-workers")?
            }
            "--corpus" => cli.corpus = true,
            "--chaos" => cli.chaos = true,
            "--repeat" => cli.repeat = parse_num(next_val(&mut it, "--repeat")?, "--repeat")?.max(1),
            "--program" => cli.program = Some(next_val(&mut it, "--program")?),
            "--source" => cli.source = Some(next_val(&mut it, "--source")?),
            "--rec" => cli.rec = Some(next_val(&mut it, "--rec")?),
            "--kind" => {
                let raw = next_val(&mut it, "--kind")?;
                cli.kind = Some(RunKind::parse(&raw).ok_or(format!("unknown kind {raw:?}"))?);
            }
            "--status" => {
                let raw = next_val(&mut it, "--status")?;
                cli.status = Some(RunStatus::parse(&raw).ok_or(format!("unknown status {raw:?}"))?);
            }
            "--bug" => cli.bug = Some(next_val(&mut it, "--bug")?),
            "--run-id" => cli.run_id = Some(next_val(&mut it, "--run-id")?),
            "--json" => cli.json = true,
            "--stage-deadline" => {
                cli.stage_deadline =
                    parse_num(next_val(&mut it, "--stage-deadline")?, "--stage-deadline")? as u64
            }
            "--memory-budget" => {
                cli.memory_budget =
                    parse_num(next_val(&mut it, "--memory-budget")?, "--memory-budget")? as u64
            }
            "--prom" => cli.prom = true,
            "--interval" => {
                cli.interval =
                    parse_num(next_val(&mut it, "--interval")?, "--interval")?.max(10) as u64
            }
            "--ticks" => cli.ticks = parse_num(next_val(&mut it, "--ticks")?, "--ticks")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(cli)
}

fn connect(cli: &Cli) -> Result<Client, String> {
    let addr = cli.addr.as_deref().ok_or("this command needs --addr")?;
    Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn cmd_serve(cli: &Cli) -> Result<(), String> {
    let registry = match &cli.registry {
        Some(r) => r.clone(),
        None => match std::env::var(REGISTRY_ENV) {
            Ok(r) if !r.is_empty() => r,
            _ => return Err(format!("no registry: pass --registry or set {REGISTRY_ENV}")),
        },
    };
    let handle = start(ServerOptions {
        addr: cli.addr.clone().unwrap_or_else(|| "127.0.0.1:0".into()),
        registry: registry.into(),
        workers: cli.workers,
        conn_threads: cli.conn_threads,
        queue_capacity: cli.queue,
        solver_workers: cli.solver_workers,
        stage_deadline_ms: cli.stage_deadline,
        memory_budget_mib: cli.memory_budget,
    })
    .map_err(|e| format!("start: {e}"))?;
    println!("light-serve listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    handle.join();
    eprintln!("light-serve: drained and stopped");
    Ok(())
}

/// Records each bug-suite workload locally (chaos-hunting the fault
/// when `--chaos`, otherwise one seeded chaos run) and submits the
/// recordings. Chaos scheduling is schedule-deterministic per seed, so
/// concurrent `submit --corpus` processes mostly dedup against each
/// other (the log's timing-dependent contention counters can make a
/// few recordings differ by a word). With `--repeat n` the same corpus
/// is submitted n times in-process — pure dedup after the first pass.
fn cmd_submit_corpus(cli: &Cli, client: &mut Client) -> Result<(), String> {
    let mut recorded = Vec::new();
    for case in light_workloads::bugs() {
        let program = Arc::new(lir::parse(case.source).map_err(|e| format!("{}: {e}", case.name))?);
        let light = Light::new(program);
        let recording = if cli.chaos {
            match light.find_bug(&case.args, case.search_seeds.clone()) {
                Some((recording, _)) => recording,
                None => {
                    eprintln!(
                        "light-serve: {}: bug not found in seed range, submitting a clean run",
                        case.name
                    );
                    let (recording, _) = light
                        .record_chaos(&case.args, 7)
                        .map_err(|e| format!("{}: {e:?}", case.name))?;
                    recording
                }
            }
        } else {
            let (recording, _) = light
                .record_chaos(&case.args, 7)
                .map_err(|e| format!("{}: {e:?}", case.name))?;
            recording
        };
        recorded.push((case.name, case.source, write_recording(&recording).to_vec()));
    }
    for pass in 0..cli.repeat {
        for (name, source, bytes) in &recorded {
            let reply = client
                .submit(name, source, bytes)
                .map_err(|e| format!("submit {name}: {e}"))?;
            println!(
                "light-serve: pass {} {} -> {} {}",
                pass + 1,
                name,
                &reply.blob_hash[..12],
                if reply.dedup {
                    "dedup".to_string()
                } else {
                    format!("job {}", reply.job_id.unwrap_or(0))
                },
            );
        }
    }
    Ok(())
}

fn cmd_submit(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    if cli.corpus {
        return cmd_submit_corpus(cli, &mut client);
    }
    let program = cli.program.clone().ok_or("submit needs --corpus or --program")?;
    let source_path = cli.source.as_deref().ok_or("submit needs --source")?;
    let rec_path = cli.rec.as_deref().ok_or("submit needs --rec")?;
    let source = std::fs::read_to_string(source_path)
        .map_err(|e| format!("cannot read {source_path}: {e}"))?;
    let recording =
        std::fs::read(rec_path).map_err(|e| format!("cannot read {rec_path}: {e}"))?;
    let reply = client
        .submit(&program, &source, &recording)
        .map_err(|e| format!("submit: {e}"))?;
    println!(
        "light-serve: {} -> {} {}",
        program,
        reply.blob_hash,
        if reply.dedup {
            "dedup".to_string()
        } else {
            format!("job {}", reply.job_id.unwrap_or(0))
        },
    );
    Ok(())
}

fn cmd_query(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    let query = Query {
        program: cli.program.clone(),
        kind: cli.kind,
        status: cli.status,
        bug_signature: cli.bug.clone(),
        run_id: cli.run_id.clone(),
        since_ms: None,
        until_ms: None,
    };
    let reply = client.query(&query).map_err(|e| format!("query: {e}"))?;
    if reply.skipped > 0 {
        eprintln!(
            "light-serve: warning: server skipped {} torn or foreign index lines",
            reply.skipped
        );
    }
    if reply.truncated {
        eprintln!(
            "light-serve: warning: reply truncated to {} of {} matching runs",
            reply.records.len(),
            reply.matched
        );
    }
    let records = reply.records;
    if cli.json {
        for r in &records {
            println!("{}", r.to_json().to_json());
        }
        return Ok(());
    }
    for r in &records {
        println!(
            "{:<8}  {:<8}  {:<20}  {:<24}  {}",
            r.kind.as_str(),
            r.status.as_str(),
            r.program,
            r.bug_signature.as_deref().unwrap_or("-"),
            r.blob_hash.as_deref().map(|h| &h[..12]).unwrap_or("-"),
        );
    }
    println!("{} runs", records.len());
    Ok(())
}

/// The flat counter object `status --json` and `metrics --json` share,
/// so scripts can diff the two surfaces key-by-key.
fn counters_json(
    queue_depth: u64,
    in_flight: u64,
    busy_workers: u64,
    draining: bool,
    jobs_done: u64,
    uptime_ms: u64,
    m: &light_obs::ServeMetrics,
) -> Vec<(&'static str, Value)> {
    vec![
        ("queue_depth", Value::from(queue_depth)),
        ("in_flight", Value::from(in_flight)),
        ("busy_workers", Value::from(busy_workers)),
        ("draining", Value::Bool(draining)),
        ("jobs_done", Value::from(jobs_done)),
        ("uptime_ms", Value::from(uptime_ms)),
        ("submissions", Value::from(m.submissions)),
        ("dedup_hits", Value::from(m.dedup_hits)),
        ("jobs_ok", Value::from(m.jobs_ok)),
        ("jobs_diverged", Value::from(m.jobs_diverged)),
        ("jobs_failed", Value::from(m.jobs_failed)),
        ("ingest_failed", Value::from(m.ingest_failed)),
        ("queue_peak", Value::from(m.queue_peak)),
        ("workers", Value::from(m.workers)),
    ]
}

/// Renders the shared metrics dashboard: gauges, counters, dedup ratio,
/// and the per-stage latency table (`light-serve metrics` prints it
/// once; `top` reprints it every tick).
fn render_dashboard(m: &MetricsReply, tick: Option<usize>) -> String {
    use std::fmt::Write as _;
    let serve = m.snapshot.serve.unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "light-serve{}  uptime {}ms{}",
        tick.map_or(String::new(), |t| format!(" top (tick {t})")),
        m.uptime_ms,
        if m.draining { "  [draining]" } else { "" },
    );
    let _ = writeln!(
        out,
        "queue {} (+{} in flight, peak {}), {}/{} workers busy, {} jobs done",
        m.queue_depth, m.in_flight, serve.queue_peak, m.busy_workers, serve.workers, m.jobs_done,
    );
    let dedup_ratio = if serve.submissions > 0 {
        100.0 * serve.dedup_hits as f64 / serve.submissions as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "submissions {} (dedup {} = {dedup_ratio:.1}%), jobs ok {} / diverged {} / failed {}, ingest failures {}",
        serve.submissions,
        serve.dedup_hits,
        serve.jobs_ok,
        serve.jobs_diverged,
        serve.jobs_failed,
        serve.ingest_failed,
    );
    let _ = writeln!(
        out,
        "\n{:>16}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
        "stage", "count", "p50 us", "p95 us", "p99 us", "max us"
    );
    let empty = Histogram::new();
    for stage in STAGES {
        let h = m.snapshot.latencies.get(stage).unwrap_or(&empty);
        let _ = writeln!(out, "{}", prom::stage_row(stage, h));
    }
    if let Some(depth) = m.snapshot.latencies.get("queue-depth") {
        let _ = writeln!(out, "{}", prom::stage_row("queue-depth*", depth));
        out.push_str("  (* queue-depth columns are jobs at enqueue, not µs)\n");
    }
    match &m.snapshot.mem {
        Some(mem) if !mem.subsystems.is_empty() => {
            let _ = writeln!(
                out,
                "\n{:>16}  {:>14}  {:>14}",
                "subsystem", "MEM bytes", "peak bytes"
            );
            for (name, stat) in &mem.subsystems {
                let _ = writeln!(out, "{:>16}  {:>14}  {:>14}", name, stat.bytes, stat.peak_bytes);
            }
        }
        // Daemons predating the memory plane answer without a mem
        // section: render the gap, not an error.
        _ => out.push_str("\nmemory: n/a (daemon predates the memory plane)\n"),
    }
    out
}

fn cmd_metrics(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    let m = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    if cli.prom {
        print!("{}", prom::render_live(&m.snapshot));
    } else if cli.json {
        let mut pairs = counters_json(
            m.queue_depth,
            m.in_flight,
            m.busy_workers,
            m.draining,
            m.jobs_done,
            m.uptime_ms,
            &m.snapshot.serve.unwrap_or_default(),
        );
        pairs.push(("metrics", m.snapshot.to_json()));
        println!("{}", Value::obj(pairs).to_json());
    } else {
        print!("{}", render_dashboard(&m, None));
    }
    Ok(())
}

fn cmd_top(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    let mut tick = 0usize;
    loop {
        let m = client.metrics().map_err(|e| format!("metrics: {e}"))?;
        tick += 1;
        // Clear + home; on a pipe the codes are harmless prefix bytes.
        print!("\x1b[2J\x1b[H{}", render_dashboard(&m, Some(tick)));
        std::io::stdout().flush().ok();
        if cli.ticks > 0 && tick >= cli.ticks {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(cli.interval));
    }
}

fn cmd_status(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    let s = client.status().map_err(|e| format!("status: {e}"))?;
    if cli.json {
        let pairs = counters_json(
            s.queue_depth,
            s.in_flight,
            s.busy_workers,
            s.draining,
            s.jobs_done,
            s.uptime_ms,
            &s.metrics,
        );
        println!("{}", Value::obj(pairs).to_json());
        return Ok(());
    }
    println!(
        "queue {} (+{} in flight), {}/{} workers busy{}, uptime {}ms",
        s.queue_depth,
        s.in_flight,
        s.busy_workers,
        s.metrics.workers,
        if s.draining { ", draining" } else { "" },
        s.uptime_ms,
    );
    println!(
        "submissions {} (dedup {}), jobs ok {} / diverged {} / failed {}, queue peak {}",
        s.metrics.submissions,
        s.metrics.dedup_hits,
        s.metrics.jobs_ok,
        s.metrics.jobs_diverged,
        s.metrics.jobs_failed,
        s.metrics.queue_peak,
    );
    if s.metrics.ingest_failed > 0 {
        eprintln!(
            "light-serve: warning: {} job records failed to ingest (queries under-report)",
            s.metrics.ingest_failed
        );
    }
    Ok(())
}

fn cmd_wait(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    let done = client.wait_idle().map_err(|e| format!("wait: {e}"))?;
    println!("light-serve: idle, {done} jobs completed");
    Ok(())
}

fn cmd_shutdown(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli)?;
    let done = client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    println!("light-serve: drained, {done} jobs completed");
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("light-serve: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cli.command.as_str() {
        "serve" => cmd_serve(&cli),
        "submit" => cmd_submit(&cli),
        "query" => cmd_query(&cli),
        "status" => cmd_status(&cli),
        "metrics" => cmd_metrics(&cli),
        "top" => cmd_top(&cli),
        "wait" => cmd_wait(&cli),
        "shutdown" => cmd_shutdown(&cli),
        other => {
            eprintln!("light-serve: unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("light-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
