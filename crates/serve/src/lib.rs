//! # light-serve — replay-as-a-service for the Light pipeline
//!
//! A long-running daemon that turns the one-shot
//! record → solve → replay → doctor pipeline into a service: many
//! clients submit recordings concurrently over a small framed TCP
//! protocol ([`proto`]); the server stores each recording
//! content-addressed in a sharded `light-watch` registry (deduplicating
//! identical submissions by hash), runs a bounded-queue worker pool
//! that solves, replays, and doctor-checks every accepted recording,
//! and answers queries over the accumulated registry — by program, by
//! divergence status, by bug signature — plus a status endpoint with
//! queue depth, worker utilization, and dedup-hit counters.
//!
//! Design constraints inherited from the workspace: no async runtime
//! (std `TcpListener` + thread pools + `Mutex`/`Condvar`), no wire
//! dependency (hand-rolled length-prefixed frames with JSON headers),
//! and storage layered on the existing [`light_telemetry::Registry`]
//! so `light-watch` tooling reads what the server writes.
//!
//! ```no_run
//! use light_serve::{start, Client, ServerOptions};
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = start(ServerOptions {
//!     registry: "runs".into(),
//!     ..ServerOptions::default()
//! })?;
//! let mut client = Client::connect(&handle.addr().to_string())?;
//! let reply = client.submit("demo", "fn main() { print(1); }", b"...recording bytes...")?;
//! assert!(!reply.blob_hash.is_empty());
//! client.wait_idle()?;
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

mod client;
pub mod job;
pub mod proto;
mod server;

pub use client::{Client, MetricsReply, QueryReply, StatusReply, SubmitReply};
pub use job::{run_job, Job};
pub use server::{start, ServerHandle, ServerOptions};
