//! One server-side job: solve → replay → doctor for a submitted
//! recording, producing the registry record the server ingests.

use light_core::{read_recording, ComponentCache, Light};
use light_doctor::{doctor_replay, DoctorOptions};
use light_obs::RunId;
use light_telemetry::{RunKind, RunRecord, RunStatus};
use std::sync::Arc;
use std::time::Instant;

/// A unit of work on the server's job queue: one accepted submission,
/// already stored content-addressed, waiting for its pipeline pass.
#[derive(Debug)]
pub struct Job {
    /// Monotonic id assigned at acceptance, returned to the submitter.
    pub id: u64,
    /// Program name the submitter labelled the recording with.
    pub program: String,
    /// LIR source text the recording was captured from.
    pub source: String,
    /// Content hash of the stored recording blob.
    pub blob_hash: String,
    /// The recording bytes (same content the blob stores).
    pub recording: Vec<u8>,
    /// Causal trace id minted at acceptance; threads through the replay
    /// pipeline and into the registry record.
    pub run_id: RunId,
    /// [`light_obs::now_us`] at enqueue, stamped by the queue *after*
    /// any backpressure wait: a worker's post-pop clock reading minus
    /// this is the pure queue-wait, and event-log timestamps stay
    /// monotonic per job (`queued` at this instant precedes `started`).
    pub enqueued_us: u64,
}

/// Runs the full pipeline for one job and renders the outcome as a
/// registry record. Never panics outward: parse failures, corrupt
/// recordings, and replay errors all become `RunStatus::Failed`
/// records with the error in `provenance`.
///
/// The shared [`ComponentCache`] is the cross-job solver state: two
/// recordings with identical location groups (dedup near-misses, the
/// same workload at different seeds) solve their common components
/// once.
pub fn run_job(
    job: &Job,
    cache: &ComponentCache,
    solver_workers: usize,
    flight: light_obs::Flight,
) -> RunRecord {
    let started = Instant::now();
    let mut rec = RunRecord::new(job.program.clone(), RunKind::Serve, RunStatus::Failed);
    rec.run_id = Some(job.run_id.to_string());
    rec.blob_hash = Some(job.blob_hash.clone());
    rec.blob_bytes = Some(job.recording.len() as u64);
    rec.provenance = Some(format!("light-serve job {}", job.id));

    let fail = |mut rec: RunRecord, started: Instant, why: String| {
        rec.provenance = Some(format!("light-serve job {}: {why}", job.id));
        rec.wall_ms = Some(started.elapsed().as_millis() as u64);
        rec
    };

    let program = match lir::parse(&job.source) {
        Ok(p) => Arc::new(p),
        Err(e) => return fail(rec, started, format!("parse error: {e}")),
    };
    let recording = match read_recording(&job.recording) {
        Ok(r) => r,
        Err(e) => return fail(rec, started, format!("corrupt recording: {e}")),
    };

    let mut light = Light::new(program);
    light.set_run_id(job.run_id);
    let mut options = DoctorOptions::default()
        .with_solver_cache(cache.clone())
        .with_solver_workers(solver_workers);
    // The caller owns the flight recorder (the worker pool's slow-job
    // watchdog reads its tail *while the job runs*). `flight_ring: 0`
    // keeps `doctor_replay` from minting an internal recorder and
    // overwriting the handle.
    options.flight_ring = 0;
    options.replay.flight = flight;
    let report = match doctor_replay(&light, &recording, &recording, &options) {
        Ok(report) => report,
        Err(e) => return fail(rec, started, format!("replay error: {e}")),
    };

    rec.status = if report.divergence.is_some() {
        RunStatus::Diverged
    } else if report.replay.is_some() {
        RunStatus::Ok
    } else {
        RunStatus::Failed
    };
    // Signature priority: a divergence is the news (doctor convention
    // `variable@loc`); otherwise the recorded program bug keys the entry
    // (explore convention `Kind@line`), so "which runs hit this bug"
    // queries span record-time and serve-time entries.
    rec.bug_signature = report
        .divergence
        .as_ref()
        .map(|d| format!("{}@{}", d.variable, d.loc))
        .or_else(|| {
            recording
                .fault
                .as_ref()
                .filter(|f| f.kind.is_program_bug())
                .map(|f| format!("{:?}@{}", f.kind, f.line))
        });
    rec.metrics = report.replay.as_ref().map(|r| r.metrics.clone());
    rec.headline
        .insert("checked_reads".into(), report.stats.checked_reads as f64);
    rec.headline
        .insert("uncovered_reads".into(), report.stats.uncovered_reads as f64);
    rec.headline
        .insert("mismatches".into(), report.stats.mismatches as f64);
    rec.wall_ms = Some(started.elapsed().as_millis() as u64);
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_core::write_recording;

    const RACE: &str = "global total;
         fn worker(n) {
             let i = 0;
             while (i < n) { total = total + 1; i = i + 1; }
         }
         fn main(n) {
             let t1 = spawn worker(n);
             let t2 = spawn worker(n);
             join t1; join t2;
             print(total);
         }";

    fn job_for(source: &str, bytes: Vec<u8>) -> Job {
        Job {
            id: 1,
            program: "race".into(),
            source: source.into(),
            blob_hash: "deadbeef".into(),
            recording: bytes,
            run_id: RunId::fresh(),
            enqueued_us: 0,
        }
    }

    fn run(job: &Job) -> RunRecord {
        run_job(job, &ComponentCache::new(), 1, light_obs::Flight::disabled())
    }

    #[test]
    fn healthy_recording_yields_ok_record_with_metrics() {
        let program = Arc::new(lir::parse(RACE).unwrap());
        let light = Light::new(program);
        let (recording, _) = light.record(&[20], 7).unwrap();
        let job = job_for(RACE, write_recording(&recording).to_vec());
        let rec = run(&job);
        assert_eq!(rec.status, RunStatus::Ok);
        assert_eq!(rec.kind, RunKind::Serve);
        assert_eq!(rec.run_id, Some(job.run_id.to_string()));
        assert!(rec.metrics.is_some());
        assert!(rec.headline["checked_reads"] >= 0.0);
        assert!(rec.wall_ms.is_some());
    }

    #[test]
    fn garbage_inputs_yield_failed_records_not_panics() {
        let bad_source = run(&job_for("fn main( {", vec![1, 2, 3]));
        assert_eq!(bad_source.status, RunStatus::Failed);
        assert!(bad_source.provenance.unwrap().contains("parse error"));
        let bad_recording = job_for(RACE, vec![0xde, 0xad, 0xbe, 0xef]);
        let rec = run(&bad_recording);
        assert_eq!(rec.status, RunStatus::Failed);
        assert!(rec.provenance.unwrap().contains("corrupt recording"));
    }

    #[test]
    fn faulting_recording_carries_the_bug_signature() {
        let source = "global x;
             fn t() { x = 0; }
             fn main() {
                 x = 1;
                 let h = spawn t();
                 let v = 10 / x;
                 join h;
                 print(v);
             }";
        let program = Arc::new(lir::parse(source).unwrap());
        let light = Light::new(program);
        let Some((recording, _)) = light.find_bug(&[], 0..400) else {
            // The schedule search is seed-dependent; absence of the bug
            // here is a workload property, not a serve defect.
            return;
        };
        let job = job_for(source, write_recording(&recording).to_vec());
        let rec = run(&job);
        let sig = rec.bug_signature.expect("fault should carry a signature");
        assert!(sig.starts_with("DivByZero@"), "got {sig}");
    }
}
