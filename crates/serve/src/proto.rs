//! The `light-serve` wire protocol: length-prefixed frames over TCP.
//!
//! The workspace deliberately has no async runtime, so the protocol is
//! built for blocking sockets and a thread pool: every message is one
//! self-delimiting *frame* that can be read with two fixed-size length
//! prefixes and two exact reads.
//!
//! ```text
//! +----------------+-------------------+----------------+-----------+
//! | header_len u32 | header JSON bytes | blob_len u32   | blob ...  |
//! |  little-endian |  (UTF-8 object)   |  little-endian | (opaque)  |
//! +----------------+-------------------+----------------+-----------+
//! ```
//!
//! The JSON header carries the operation and its small fields; the blob
//! carries bulk payloads (recording bytes on submit, JSONL result sets
//! on query) without base64 inflation. Both directions use the same
//! frame shape. A peer that closes the connection between frames ends
//! the session cleanly ([`read_frame`] returns `None`).
//!
//! Requests carry `{"v": 1, "op": "..."}`; replies carry `{"ok": true,
//! ...}` or `{"ok": false, "error": "..."}`. Unknown versions and
//! oversized frames are rejected before any allocation of the stated
//! size.

use light_obs::json::Value;
use light_telemetry::{Query, RunKind, RunStatus};
use std::io::{self, Read, Write};

/// Protocol version spoken by this build. Bump only for breaking frame
/// or header layout changes; additive header keys ride along.
pub const PROTO_VERSION: u64 = 1;

/// Cap on the JSON header of one frame (1 MiB).
pub const MAX_HEADER: u32 = 1 << 20;
/// Cap on the binary blob of one frame (256 MiB).
pub const MAX_BLOB: u32 = 256 << 20;

/// One decoded frame: the parsed JSON header plus the opaque blob
/// (empty when the message carries none).
#[derive(Debug, Clone)]
pub struct Frame {
    pub header: Value,
    pub blob: Vec<u8>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one frame. The header is rendered compactly; the blob rides
/// verbatim.
pub fn write_frame(w: &mut impl Write, header: &Value, blob: &[u8]) -> io::Result<()> {
    let header = header.to_json();
    let header = header.as_bytes();
    if header.len() as u64 > u64::from(MAX_HEADER) {
        return Err(bad("header exceeds MAX_HEADER"));
    }
    if blob.len() as u64 > u64::from(MAX_BLOB) {
        return Err(bad("blob exceeds MAX_BLOB"));
    }
    // Coalesce the two length prefixes and the header into one write:
    // frames are usually written straight to a TCP socket, and three
    // tiny writes before the blob would interact badly with Nagle +
    // delayed ACK (40ms stalls per round trip).
    let mut prefix = Vec::with_capacity(8 + header.len());
    prefix.extend_from_slice(&(header.len() as u32).to_le_bytes());
    prefix.extend_from_slice(header);
    prefix.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    w.write_all(&prefix)?;
    w.write_all(blob)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream at a
/// frame boundary (the peer hung up between messages); propagates an
/// error for a stream torn mid-frame or a malformed/oversized frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let header_len = u32::from_le_bytes(len);
    if header_len > MAX_HEADER {
        return Err(bad(format!("header length {header_len} exceeds cap")));
    }
    let mut header = vec![0u8; header_len as usize];
    r.read_exact(&mut header)?;
    let header = std::str::from_utf8(&header).map_err(|e| bad(format!("header utf-8: {e}")))?;
    let header = Value::parse(header).map_err(|e| bad(format!("header json: {e}")))?;
    r.read_exact(&mut len)?;
    let blob_len = u32::from_le_bytes(len);
    if blob_len > MAX_BLOB {
        return Err(bad(format!("blob length {blob_len} exceeds cap")));
    }
    let mut blob = vec![0u8; blob_len as usize];
    r.read_exact(&mut blob)?;
    Ok(Some(Frame { header, blob }))
}

/// A client request, decoded from one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one recording for storage + a solve → replay → doctor job.
    /// `source` is the LIR program text the recording was captured from.
    Submit {
        program: String,
        source: String,
        recording: Vec<u8>,
    },
    /// List registry records matching the filter.
    Query(Query),
    /// Queue/worker/dedup counters.
    Status,
    /// Live unified metric snapshot: serve counters plus the daemon's
    /// per-stage latency histograms, without stopping the daemon (the
    /// Prometheus scrape path).
    Metrics,
    /// Block until the job queue is empty and every worker is idle.
    Wait,
    /// Stop accepting work, drain the queue, then exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as a frame onto `w`.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        let mut pairs: Vec<(String, Value)> = vec![("v".into(), Value::from(PROTO_VERSION))];
        let blob: &[u8] = match self {
            Request::Submit {
                program,
                source,
                recording,
            } => {
                pairs.push(("op".into(), Value::from("submit")));
                pairs.push(("program".into(), Value::from(program.as_str())));
                pairs.push(("source".into(), Value::from(source.as_str())));
                recording
            }
            Request::Query(q) => {
                pairs.push(("op".into(), Value::from("query")));
                let mut opt = |key: &str, v: Option<Value>| {
                    if let Some(v) = v {
                        pairs.push((key.into(), v));
                    }
                };
                opt("program", q.program.as_deref().map(Value::from));
                opt("kind", q.kind.map(|k| Value::from(k.as_str())));
                opt("status", q.status.map(|s| Value::from(s.as_str())));
                opt("bug", q.bug_signature.as_deref().map(Value::from));
                opt("run_id", q.run_id.as_deref().map(Value::from));
                opt("since_ms", q.since_ms.map(Value::from));
                opt("until_ms", q.until_ms.map(Value::from));
                &[]
            }
            Request::Status => {
                pairs.push(("op".into(), Value::from("status")));
                &[]
            }
            Request::Metrics => {
                pairs.push(("op".into(), Value::from("metrics")));
                &[]
            }
            Request::Wait => {
                pairs.push(("op".into(), Value::from("wait")));
                &[]
            }
            Request::Shutdown => {
                pairs.push(("op".into(), Value::from("shutdown")));
                &[]
            }
        };
        write_frame(w, &Value::Obj(pairs), blob)
    }

    /// Decodes a request frame.
    pub fn parse(frame: Frame) -> io::Result<Request> {
        let h = &frame.header;
        match h.get("v").and_then(Value::as_u64) {
            Some(PROTO_VERSION) => {}
            v => return Err(bad(format!("unsupported protocol version {v:?}"))),
        }
        let op = h.get("op").and_then(Value::as_str).unwrap_or("");
        let str_field = |key: &str| h.get(key).and_then(Value::as_str).map(String::from);
        Ok(match op {
            "submit" => Request::Submit {
                program: str_field("program").ok_or_else(|| bad("submit without program"))?,
                source: str_field("source").ok_or_else(|| bad("submit without source"))?,
                recording: frame.blob,
            },
            "query" => Request::Query(Query {
                program: str_field("program"),
                kind: match str_field("kind") {
                    Some(raw) => {
                        Some(RunKind::parse(&raw).ok_or_else(|| bad("unknown kind filter"))?)
                    }
                    None => None,
                },
                status: match str_field("status") {
                    Some(raw) => {
                        Some(RunStatus::parse(&raw).ok_or_else(|| bad("unknown status filter"))?)
                    }
                    None => None,
                },
                bug_signature: str_field("bug"),
                run_id: str_field("run_id"),
                since_ms: h.get("since_ms").and_then(Value::as_u64),
                until_ms: h.get("until_ms").and_then(Value::as_u64),
            }),
            "status" => Request::Status,
            "metrics" => Request::Metrics,
            "wait" => Request::Wait,
            "shutdown" => Request::Shutdown,
            other => return Err(bad(format!("unknown op {other:?}"))),
        })
    }
}

/// Writes an `{"ok": false}` error reply.
pub fn write_error(w: &mut impl Write, error: &str) -> io::Result<()> {
    let header = Value::obj([("ok", Value::Bool(false)), ("error", Value::from(error))]);
    write_frame(w, &header, &[])
}

/// Reads a reply frame, mapping `{"ok": false}` to an error carrying
/// the server's message.
pub fn read_reply(r: &mut impl Read) -> io::Result<Frame> {
    let frame = read_frame(r)?.ok_or_else(|| bad("connection closed before reply"))?;
    match frame.header.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(frame),
        Some(false) => Err(io::Error::other(format!(
            "server error: {}",
            frame
                .header
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown"),
        ))),
        None => Err(bad("reply without ok field")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) -> Request {
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        Request::parse(frame).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let submit = Request::Submit {
            program: "cache4j".into(),
            source: "fn main() {}".into(),
            recording: vec![1, 2, 3, 255],
        };
        assert_eq!(round_trip(submit.clone()), submit);
        let query = Request::Query(Query {
            program: Some("p".into()),
            kind: Some(RunKind::Serve),
            status: Some(RunStatus::Diverged),
            bug_signature: Some("assert@12".into()),
            run_id: None,
            since_ms: Some(5),
            until_ms: None,
        });
        assert_eq!(round_trip(query.clone()), query);
        assert_eq!(round_trip(Request::Status), Request::Status);
        assert_eq!(round_trip(Request::Metrics), Request::Metrics);
        assert_eq!(round_trip(Request::Wait), Request::Wait);
        assert_eq!(round_trip(Request::Shutdown), Request::Shutdown);
    }

    #[test]
    fn clean_eof_is_none_and_torn_frame_is_an_error() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        let mut wire = Vec::new();
        Request::Status.write(&mut wire).unwrap();
        let torn = &wire[..wire.len() - 2];
        assert!(read_frame(&mut &torn[..]).is_err());
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let header = Value::obj([("v", Value::from(99u64)), ("op", Value::from("status"))]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &header, &[]).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert!(Request::parse(frame).is_err());
    }

    #[test]
    fn error_replies_surface_the_server_message() {
        let mut wire = Vec::new();
        write_error(&mut wire, "queue is draining").unwrap();
        let err = read_reply(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("queue is draining"));
    }
}
