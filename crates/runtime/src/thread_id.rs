//! Logical thread identities stable across record and replay runs.
//!
//! Light correlates transitions across runs by `(thread, thread-local
//! counter)` (Definition 3.3). OS thread ids differ between runs, so each
//! LIR thread gets a *logical* id derived from its position in the spawn
//! tree: the root is 0, and the `k`-th thread spawned by a parent gets the
//! parent's id extended by the digit `k + 1` in base 256. Because spawn
//! order within one thread is program-ordered, these ids are identical in
//! every run of the same program.
//!
//! The encoding supports spawn trees up to depth 8 with up to 255 spawns
//! per thread, far beyond any workload in this repository.

use std::fmt;

/// A logical thread id (spawn-tree path packed into a `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tid(u64);

impl Tid {
    /// The root (main) thread.
    pub const ROOT: Tid = Tid(0);

    /// The id of this thread's `k`-th spawned child (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 255` or the spawn tree exceeds depth 8.
    pub fn child(self, k: u32) -> Tid {
        assert!(k < 255, "more than 255 spawns from one thread");
        let shifted = self
            .0
            .checked_mul(256)
            .expect("spawn tree deeper than 8 levels");
        Tid(shifted + u64::from(k) + 1)
    }

    /// The raw packed representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a tid from [`Tid::raw`].
    pub fn from_raw(raw: u64) -> Tid {
        Tid(raw)
    }

    /// Whether this is the root thread.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, "t0");
        }
        // Render the spawn path, e.g. t0.1.3
        let mut digits = Vec::new();
        let mut v = self.0;
        while v != 0 {
            digits.push((v % 256) as u8);
            v /= 256;
        }
        write!(f, "t0")?;
        for d in digits.iter().rev() {
            write!(f, ".{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_are_unique() {
        let a = Tid::ROOT.child(0);
        let b = Tid::ROOT.child(1);
        let aa = a.child(0);
        let ab = a.child(1);
        let ba = b.child(0);
        let all = [Tid::ROOT, a, b, aa, ab, ba];
        for (i, x) in all.iter().enumerate() {
            for (j, y) in all.iter().enumerate() {
                assert_eq!(i == j, x == y, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn raw_round_trip() {
        let t = Tid::ROOT.child(5).child(2);
        assert_eq!(Tid::from_raw(t.raw()), t);
    }

    #[test]
    fn display_shows_path() {
        assert_eq!(Tid::ROOT.to_string(), "t0");
        assert_eq!(Tid::ROOT.child(0).to_string(), "t0.1");
        assert_eq!(Tid::ROOT.child(2).child(0).to_string(), "t0.3.1");
    }

    #[test]
    #[should_panic(expected = "255")]
    fn too_many_children_panics() {
        Tid::ROOT.child(255);
    }
}
