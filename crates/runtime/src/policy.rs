//! Shared-location policy: which static locations get instrumented.
//!
//! The paper restricts recording to *shared* locations, detected with
//! conservative static analysis (Soot/Chord). The `light-analysis` crate
//! computes an [`SharedPolicy::Analyzed`] policy; [`SharedPolicy::All`]
//! instruments everything (always sound, used as the conservative
//! fallback and in tests).

use lir::{FieldId, GlobalId, InstrId};
use std::collections::HashSet;

/// Decides which accesses are instrumented.
#[derive(Debug, Clone)]
#[derive(Default)]
pub enum SharedPolicy {
    /// Instrument every global, field, array and map access.
    #[default]
    All,
    /// Instrument only locations the static analysis reports as shared.
    Analyzed {
        /// `FieldId` → shared? (indexed table).
        shared_fields: Vec<bool>,
        /// `GlobalId` → shared?
        shared_globals: Vec<bool>,
        /// Allocation sites (`New`/`NewArray`/`map_new` instructions) whose
        /// objects escape to multiple threads.
        shared_allocs: HashSet<InstrId>,
        /// Allocation sites whose containers are consistently
        /// lock-guarded: element/map accesses carry an O2 hint so Light's
        /// recorder can skip them (Lemma 4.2).
        guarded_allocs: HashSet<InstrId>,
    },
}

impl SharedPolicy {
    /// Whether accesses to `field` are instrumented.
    pub fn field_shared(&self, field: FieldId) -> bool {
        match self {
            SharedPolicy::All => true,
            SharedPolicy::Analyzed { shared_fields, .. } => {
                shared_fields.get(field.index()).copied().unwrap_or(true)
            }
        }
    }

    /// Whether accesses to `global` are instrumented.
    pub fn global_shared(&self, global: GlobalId) -> bool {
        match self {
            SharedPolicy::All => true,
            SharedPolicy::Analyzed { shared_globals, .. } => {
                shared_globals.get(global.index()).copied().unwrap_or(true)
            }
        }
    }

    /// Whether objects allocated at `site` have instrumented element/map
    /// accesses.
    pub fn alloc_shared(&self, site: InstrId) -> bool {
        match self {
            SharedPolicy::All => true,
            SharedPolicy::Analyzed { shared_allocs, .. } => shared_allocs.contains(&site),
        }
    }

    /// Whether containers allocated at `site` are consistently
    /// lock-guarded (O2 hint for element/map accesses).
    pub fn alloc_guarded(&self, site: InstrId) -> bool {
        match self {
            SharedPolicy::All => false,
            SharedPolicy::Analyzed { guarded_allocs, .. } => guarded_allocs.contains(&site),
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use lir::{BlockId, FuncId};

    #[test]
    fn all_policy_instruments_everything() {
        let p = SharedPolicy::All;
        assert!(p.field_shared(FieldId(7)));
        assert!(p.global_shared(GlobalId(7)));
        assert!(p.alloc_shared(InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0
        }));
    }

    #[test]
    fn analyzed_policy_filters() {
        let site = InstrId {
            func: FuncId(1),
            block: BlockId(0),
            idx: 2,
        };
        let p = SharedPolicy::Analyzed {
            shared_fields: vec![true, false],
            shared_globals: vec![false],
            shared_allocs: [site].into_iter().collect(),
            guarded_allocs: Default::default(),
        };
        assert!(p.field_shared(FieldId(0)));
        assert!(!p.field_shared(FieldId(1)));
        // Out-of-table ids are conservatively shared.
        assert!(p.field_shared(FieldId(9)));
        assert!(!p.global_shared(GlobalId(0)));
        assert!(p.alloc_shared(site));
        assert!(!p.alloc_shared(InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0
        }));
    }
}
