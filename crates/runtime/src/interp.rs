//! The LIR interpreter: one OS thread per LIR thread, instrumented events
//! gated through the scheduler and routed to the recorder.

use crate::fault::{FaultKind, FaultReport};
use crate::halt::{HaltFlag, Halted};
use crate::heap::{Heap, Loc, Obj, ObjBody};
use crate::hooks::{AccessKind, Recorder, SyncEvent};
use crate::monitor::MonitorTable;
use crate::nondet::{opaque_hash, NondetSource, ThreadRng};
use crate::policy::SharedPolicy;
use crate::registry::ThreadRegistry;
use crate::sched::{Directive, EventClass, SchedStop, Scheduler};
use crate::thread_id::Tid;
use crate::value::{ObjId, Value};
use lir::ast::{BinOp, UnOp};
use lir::{BlockId, FuncId, Instr, InstrId, Intrinsic, Operand, Program, Reg, Terminator};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shared state of one execution. One instance per [`crate::exec::run`].
pub(crate) struct RunCtx {
    pub program: Arc<Program>,
    pub heap: Heap,
    pub monitors: MonitorTable,
    pub policy: SharedPolicy,
    pub recorder: Arc<dyn Recorder>,
    pub scheduler: Arc<dyn Scheduler>,
    pub halt: HaltFlag,
    pub fault: Mutex<Option<FaultReport>>,
    pub prints: Mutex<Vec<String>>,
    pub nondet: NondetSource,
    pub nondet_seed: u64,
    pub step_budget: AtomicI64,
    pub events: AtomicU64,
    pub threads: ThreadRegistry,
    pub handles: Mutex<Vec<JoinHandle<()>>>,
    pub wake_all_on_notify: bool,
    pub max_call_depth: usize,
    pub capture_prints: bool,
    pub obs: light_obs::Obs,
}

impl RunCtx {
    /// Records the first fault and halts the run.
    pub(crate) fn report_fault(&self, report: FaultReport) {
        let mut slot = self.fault.lock();
        if slot.is_none() {
            *slot = Some(report);
        }
        drop(slot);
        self.halt.set();
    }
}

/// Why a thread's interpretation stopped early.
enum ThreadStop {
    /// A fault was raised (already reported to the [`RunCtx`]).
    Fault,
    /// The run is halting due to activity elsewhere.
    Halted,
}

impl From<Halted> for ThreadStop {
    fn from(_: Halted) -> Self {
        ThreadStop::Halted
    }
}

struct Frame {
    func: FuncId,
    block: usize,
    ip: usize,
    regs: Vec<Value>,
    /// Where the caller wants this frame's return value.
    ret_dst: Option<Reg>,
}

struct ThreadCtx {
    rt: Arc<RunCtx>,
    tid: Tid,
    /// Thread-local instrumentation counter (`D(t)` of Algorithm 1).
    ctr: u64,
    spawn_count: u32,
    rng: ThreadRng,
    steps: u64,
    stack: Vec<Frame>,
}

const STEP_CHECK_INTERVAL: u64 = 1024;
const MAX_ARRAY_LEN: i64 = 1 << 24;

/// Runs function `func` as LIR thread `tid`, to completion or fault.
/// `parent` is `(tid, counter)` of the parent's `Spawn` event.
pub(crate) fn interp_thread(
    rt: Arc<RunCtx>,
    tid: Tid,
    func: FuncId,
    args: Vec<Value>,
    parent: Option<(Tid, u64)>,
) {
    let mut ctx = ThreadCtx {
        rt: rt.clone(),
        tid,
        ctr: 0,
        spawn_count: 0,
        rng: ThreadRng::new(rt.nondet_seed, tid),
        steps: 0,
        stack: Vec::new(),
    };
    let entry_iid = InstrId {
        func,
        block: BlockId(0),
        idx: 0,
    };
    // Attribute this thread's allocations to the executor subsystem for
    // `track-alloc` builds; without that feature the scope is two TLS
    // writes that nothing observes.
    let _mem_scope = light_obs::mem::MemScope::enter(light_obs::mem::subsystem::RUNTIME_EXEC);
    // Trace lane `tid.raw() + 1`: lane 0 is reserved for pipeline phases.
    let lane = tid.raw() + 1;
    if rt.obs.enabled() {
        rt.obs.thread_name(lane, &tid.to_string());
        rt.obs.begin("thread", lane);
    }
    let _ = ctx.run_to_completion(func, args, parent, entry_iid);
    rt.recorder.on_thread_exit(tid);
    let joiners = rt.threads.mark_finished(tid, ctx.ctr);
    if !joiners.is_empty() {
        rt.scheduler.note_wake(&joiners);
    }
    rt.scheduler.thread_exited(tid);
    if rt.obs.enabled() {
        rt.obs.end(lane);
    }
}

impl ThreadCtx {
    fn run_to_completion(
        &mut self,
        func: FuncId,
        args: Vec<Value>,
        parent: Option<(Tid, u64)>,
        entry_iid: InstrId,
    ) -> Result<(), ThreadStop> {
        let ctr = self.event(EventClass::ThreadStart, entry_iid, 0)?.0;
        self.rt
            .recorder
            .on_sync(self.tid, ctr, SyncEvent::ThreadStart { parent }, entry_iid);
        self.rt.scheduler.after_event(self.tid, ctr);

        self.push_frame(func, args, None, entry_iid, 0)?;
        self.run_frames()?;

        let ctr = self.event(EventClass::ThreadEnd, entry_iid, 0)?.0;
        self.rt
            .recorder
            .on_sync(self.tid, ctr, SyncEvent::ThreadEnd, entry_iid);
        self.rt.scheduler.after_event(self.tid, ctr);
        Ok(())
    }

    // -- plumbing ----------------------------------------------------------

    fn fault(
        &self,
        iid: InstrId,
        kind: FaultKind,
        value: Value,
        detail: impl Into<String>,
    ) -> ThreadStop {
        self.rt.report_fault(FaultReport {
            tid: self.tid,
            ctr: self.ctr,
            instr: iid,
            line: self.rt.program.line_of(iid),
            kind,
            value,
            detail: detail.into(),
        });
        ThreadStop::Fault
    }

    /// Advances the event counter and passes the scheduler gate.
    fn event(
        &mut self,
        class: EventClass,
        iid: InstrId,
        _line: u32,
    ) -> Result<(u64, Directive), ThreadStop> {
        self.ctr += 1;
        if self.rt.halt.is_set() {
            return Err(ThreadStop::Halted);
        }
        let directive = match self.rt.scheduler.before_event(self.tid, self.ctr, &class) {
            Ok(d) => d,
            Err(SchedStop::Halted) => return Err(ThreadStop::Halted),
            Err(SchedStop::Deadlock) => {
                return Err(self.fault(
                    iid,
                    FaultKind::Deadlock,
                    Value::NULL,
                    "all live threads are blocked",
                ))
            }
            Err(SchedStop::Diverged(msg)) => {
                return Err(self.fault(iid, FaultKind::ReplayDiverged, Value::NULL, msg))
            }
        };
        self.rt.events.fetch_add(1, Ordering::Relaxed);
        Ok((self.ctr, directive))
    }

    fn unblock(&self, iid: InstrId) -> Result<(), ThreadStop> {
        match self.rt.scheduler.note_unblocked(self.tid) {
            Ok(()) => Ok(()),
            Err(SchedStop::Halted) => Err(ThreadStop::Halted),
            Err(SchedStop::Deadlock) => Err(self.fault(
                iid,
                FaultKind::Deadlock,
                Value::NULL,
                "all live threads are blocked",
            )),
            Err(SchedStop::Diverged(msg)) => {
                Err(self.fault(iid, FaultKind::ReplayDiverged, Value::NULL, msg))
            }
        }
    }

    /// Performs an instrumented data access. Returns `None` only for
    /// suppressed blind writes.
    fn shared_access(
        &mut self,
        loc: Loc,
        kind: AccessKind,
        guarded: bool,
        iid: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> Result<Option<u64>, ThreadStop> {
        let (ctr, directive) =
            self.event(EventClass::Access { loc, kind, guarded }, iid, 0)?;
        let out = match directive {
            Directive::SuppressWrite => None,
            Directive::Proceed => Some(
                self.rt
                    .recorder
                    .on_access(self.tid, ctr, loc, kind, guarded, iid, op),
            ),
        };
        self.rt.scheduler.after_event(self.tid, ctr);
        Ok(out)
    }

    fn push_frame(
        &mut self,
        func: FuncId,
        args: Vec<Value>,
        ret_dst: Option<Reg>,
        iid: InstrId,
        _line: u32,
    ) -> Result<(), ThreadStop> {
        if self.stack.len() >= self.rt.max_call_depth {
            return Err(self.fault(
                iid,
                FaultKind::StackOverflow,
                Value::NULL,
                format!("call depth exceeds {}", self.rt.max_call_depth),
            ));
        }
        let f = self.rt.program.func(func);
        let mut regs = vec![Value::ZERO; f.nregs as usize];
        for (i, a) in args.into_iter().enumerate() {
            regs[i] = a;
        }
        self.stack.push(Frame {
            func,
            block: 0,
            ip: 0,
            regs,
            ret_dst,
        });
        Ok(())
    }

    fn val(&self, op: Operand) -> Value {
        match op {
            Operand::Reg(r) => self.stack.last().expect("active frame").regs[r.index()],
            Operand::Const(v) => Value::int(v),
            Operand::Null => Value::NULL,
        }
    }

    fn set_reg(&mut self, r: Reg, v: Value) {
        self.stack.last_mut().expect("active frame").regs[r.index()] = v;
    }

    fn consume_step(&mut self, iid: InstrId) -> Result<(), ThreadStop> {
        self.steps += 1;
        if self.steps.is_multiple_of(STEP_CHECK_INTERVAL) {
            if self.rt.halt.is_set() {
                return Err(ThreadStop::Halted);
            }
            let left = self
                .rt
                .step_budget
                .fetch_sub(STEP_CHECK_INTERVAL as i64, Ordering::Relaxed);
            if left <= 0 {
                return Err(self.fault(
                    iid,
                    FaultKind::StepLimit,
                    Value::NULL,
                    "execution step budget exhausted",
                ));
            }
        }
        Ok(())
    }

    /// Resolves an operand expected to hold an object reference.
    fn as_object(&self, v: Value, iid: InstrId, what: &str) -> Result<ObjId, ThreadStop> {
        match v.as_obj() {
            Some(o) => Ok(o),
            None if v.is_null() => Err(self.fault(
                iid,
                FaultKind::NullDeref,
                v,
                format!("{what} on null"),
            )),
            None => Err(self.fault(
                iid,
                FaultKind::TypeError,
                v,
                format!("{what} on {}", v.type_name()),
            )),
        }
    }

    fn as_int(&self, v: Value, iid: InstrId, what: &str) -> Result<i64, ThreadStop> {
        v.as_int().ok_or_else(|| {
            self.fault(
                iid,
                FaultKind::TypeError,
                v,
                format!("{what} requires an integer, got {}", v.type_name()),
            )
        })
    }

    fn obj(&self, id: ObjId) -> Arc<Obj> {
        self.rt.heap.get(id).expect("object ids are never forged")
    }

    // -- main loop ---------------------------------------------------------

    fn run_frames(&mut self) -> Result<(), ThreadStop> {
        let program = self.rt.program.clone();
        loop {
            let (func_id, block_idx, ip) = {
                let frame = self.stack.last().expect("active frame");
                (frame.func, frame.block, frame.ip)
            };
            let func = program.func(func_id);
            let block = &func.blocks[block_idx];
            let iid = InstrId {
                func: func_id,
                block: BlockId(block_idx as u32),
                idx: if ip < block.instrs.len() {
                    ip as u32
                } else {
                    InstrId::TERM_IDX
                },
            };
            self.consume_step(iid)?;

            if ip < block.instrs.len() {
                let instr = &block.instrs[ip];
                self.stack.last_mut().expect("active frame").ip += 1;
                self.step(instr, iid)?;
            } else {
                match block.term {
                    Terminator::Jump(bb) => {
                        let frame = self.stack.last_mut().expect("active frame");
                        frame.block = bb.index();
                        frame.ip = 0;
                    }
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let taken = if self.val(cond).is_truthy() {
                            then_bb
                        } else {
                            else_bb
                        };
                        let frame = self.stack.last_mut().expect("active frame");
                        frame.block = taken.index();
                        frame.ip = 0;
                    }
                    Terminator::Ret(v) => {
                        let value = v.map(|op| self.val(op)).unwrap_or(Value::NULL);
                        let frame = self.stack.pop().expect("active frame");
                        if self.stack.is_empty() {
                            return Ok(());
                        }
                        if let Some(dst) = frame.ret_dst {
                            self.set_reg(dst, value);
                        }
                    }
                }
            }
        }
    }

    fn step(&mut self, instr: &Instr, iid: InstrId) -> Result<(), ThreadStop> {
        match instr {
            Instr::Move { dst, src } => {
                let v = self.val(*src);
                self.set_reg(*dst, v);
            }
            Instr::Un { dst, op, src } => {
                let v = self.val(*src);
                let out = match op {
                    UnOp::Neg => Value::int(self.as_int(v, iid, "negation")?.wrapping_neg()),
                    UnOp::Not => Value::int(i64::from(!v.is_truthy())),
                };
                self.set_reg(*dst, out);
            }
            Instr::Bin { dst, op, lhs, rhs } => {
                let out = self.eval_bin(*op, self.val(*lhs), self.val(*rhs), iid)?;
                self.set_reg(*dst, out);
            }
            Instr::New { dst, class } => {
                let nfields = self.rt.program.class(*class).fields.len();
                let shared = self.rt.policy.alloc_shared(iid);
                let id = self.rt.heap.alloc_object(*class, nfields, shared);
                self.set_reg(*dst, Value::obj(id));
            }
            Instr::NewArray { dst, len } => {
                let n = self.as_int(self.val(*len), iid, "array length")?;
                if !(0..=MAX_ARRAY_LEN).contains(&n) {
                    return Err(self.fault(
                        iid,
                        FaultKind::TypeError,
                        Value::int(n),
                        format!("invalid array length {n}"),
                    ));
                }
                let shared = self.rt.policy.alloc_shared(iid);
                let guarded = self.rt.policy.alloc_guarded(iid);
                let id = self.rt.heap.alloc_array_with(n as usize, shared, guarded);
                self.set_reg(*dst, Value::obj(id));
            }
            Instr::GetField { dst, obj, field } => {
                let oid = self.as_object(self.val(*obj), iid, "field read")?;
                let o = self.obj(oid);
                let slot = self.field_slot(&o, *field, iid)?;
                let out = if self.rt.policy.field_shared(*field) {
                    let mut op = || o.load_cell(slot).expect("slot validated").bits();
                    self.shared_access(
                        Loc::Field(oid, *field),
                        AccessKind::Read,
                        false,
                        iid,
                        &mut op,
                    )?
                    .expect("reads are never suppressed")
                } else {
                    o.load_cell(slot).expect("slot validated").bits()
                };
                self.set_reg(*dst, Value::from_bits(out));
            }
            Instr::SetField { obj, field, value } => {
                let oid = self.as_object(self.val(*obj), iid, "field write")?;
                let v = self.val(*value);
                let o = self.obj(oid);
                let slot = self.field_slot(&o, *field, iid)?;
                if self.rt.policy.field_shared(*field) {
                    let mut op = || {
                        o.store_cell(slot, v);
                        v.bits()
                    };
                    self.shared_access(
                        Loc::Field(oid, *field),
                        AccessKind::Write,
                        false,
                        iid,
                        &mut op,
                    )?;
                } else {
                    o.store_cell(slot, v);
                }
            }
            Instr::GetElem { dst, arr, idx } => {
                let (oid, o, slot) = self.elem_slot(*arr, *idx, iid)?;
                let out = if o.shared {
                    let mut op = || o.load_cell(slot).expect("slot validated").bits();
                    self.shared_access(
                        Loc::Elem(oid, slot as u32),
                        AccessKind::Read,
                        o.o2_guarded,
                        iid,
                        &mut op,
                    )?
                    .expect("reads are never suppressed")
                } else {
                    o.load_cell(slot).expect("slot validated").bits()
                };
                self.set_reg(*dst, Value::from_bits(out));
            }
            Instr::SetElem { arr, idx, value } => {
                let (oid, o, slot) = self.elem_slot(*arr, *idx, iid)?;
                let v = self.val(*value);
                if o.shared {
                    let mut op = || {
                        o.store_cell(slot, v);
                        v.bits()
                    };
                    self.shared_access(
                        Loc::Elem(oid, slot as u32),
                        AccessKind::Write,
                        o.o2_guarded,
                        iid,
                        &mut op,
                    )?;
                } else {
                    o.store_cell(slot, v);
                }
            }
            Instr::GetGlobal { dst, global } => {
                let out = if self.rt.policy.global_shared(*global) {
                    let g = *global;
                    let rt = self.rt.clone();
                    let mut op = move || rt.heap.load_global(g).bits();
                    self.shared_access(Loc::Global(g), AccessKind::Read, false, iid, &mut op)?
                        .expect("reads are never suppressed")
                } else {
                    self.rt.heap.load_global(*global).bits()
                };
                self.set_reg(*dst, Value::from_bits(out));
            }
            Instr::SetGlobal { global, value } => {
                let v = self.val(*value);
                if self.rt.policy.global_shared(*global) {
                    let g = *global;
                    let rt = self.rt.clone();
                    let mut op = move || {
                        rt.heap.store_global(g, v);
                        v.bits()
                    };
                    self.shared_access(Loc::Global(g), AccessKind::Write, false, iid, &mut op)?;
                } else {
                    self.rt.heap.store_global(*global, v);
                }
            }
            Instr::Call { dst, func, args } => {
                let argv: Vec<Value> = args.iter().map(|a| self.val(*a)).collect();
                self.push_frame(*func, argv, *dst, iid, 0)?;
            }
            Instr::Intrinsic { dst, intr, args } => {
                self.intrinsic(*dst, *intr, args, iid)?;
            }
            Instr::Spawn { dst, func, args } => {
                self.spawn(*dst, *func, args, iid)?;
            }
            Instr::Join { handle } => {
                self.join(*handle, iid)?;
            }
            Instr::MonitorEnter { obj } => {
                self.monitor_enter(*obj, iid)?;
            }
            Instr::MonitorExit { obj } => {
                self.monitor_exit(*obj, iid)?;
            }
            Instr::Wait { obj } => {
                self.do_wait(*obj, iid)?;
            }
            Instr::Notify { obj, all } => {
                self.do_notify(*obj, *all, iid)?;
            }
            Instr::Assert { cond } => {
                let v = self.val(*cond);
                if !v.is_truthy() {
                    return Err(self.fault(iid, FaultKind::AssertFailed, v, "assertion failed"));
                }
            }
        }
        Ok(())
    }

    fn eval_bin(&self, op: BinOp, a: Value, b: Value, iid: InstrId) -> Result<Value, ThreadStop> {
        // Equality compares raw values of any type.
        match op {
            BinOp::Eq => return Ok(Value::int(i64::from(a == b))),
            BinOp::Ne => return Ok(Value::int(i64::from(a != b))),
            _ => {}
        }
        let x = self.as_int(a, iid, "arithmetic")?;
        let y = self.as_int(b, iid, "arithmetic")?;
        let out = match op {
            BinOp::Add => Value::int(x.wrapping_add(y)),
            BinOp::Sub => Value::int(x.wrapping_sub(y)),
            BinOp::Mul => Value::int(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    return Err(self.fault(iid, FaultKind::DivByZero, b, "division by zero"));
                }
                Value::int(x.wrapping_div(y))
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(self.fault(iid, FaultKind::DivByZero, b, "remainder by zero"));
                }
                Value::int(x.wrapping_rem(y))
            }
            BinOp::BitAnd => Value::int(x & y),
            BinOp::BitOr => Value::int(x | y),
            BinOp::BitXor => Value::int(x ^ y),
            BinOp::Shl => Value::int(x.wrapping_shl(y as u32 & 63)),
            BinOp::Shr => Value::int(x.wrapping_shr(y as u32 & 63)),
            BinOp::Lt => Value::int(i64::from(x < y)),
            BinOp::Le => Value::int(i64::from(x <= y)),
            BinOp::Gt => Value::int(i64::from(x > y)),
            BinOp::Ge => Value::int(i64::from(x >= y)),
            BinOp::Eq | BinOp::Ne => unreachable!("handled above"),
        };
        Ok(out)
    }

    fn field_slot(&self, o: &Obj, field: lir::FieldId, iid: InstrId) -> Result<usize, ThreadStop> {
        match &o.body {
            ObjBody::Fields { class, .. } => {
                self.rt.program.class(*class).slot_of(field).ok_or_else(|| {
                    self.fault(
                        iid,
                        FaultKind::TypeError,
                        Value::NULL,
                        format!(
                            "class `{}` has no field `{}`",
                            self.rt.program.class(*class).name,
                            self.rt.program.field_names[field.index()]
                        ),
                    )
                })
            }
            _ => Err(self.fault(
                iid,
                FaultKind::TypeError,
                Value::NULL,
                "field access on non-class object",
            )),
        }
    }

    fn elem_slot(
        &self,
        arr: Operand,
        idx: Operand,
        iid: InstrId,
    ) -> Result<(ObjId, Arc<Obj>, usize), ThreadStop> {
        let oid = self.as_object(self.val(arr), iid, "array access")?;
        let o = self.obj(oid);
        let n = match &o.body {
            ObjBody::Array { cells } => cells.len(),
            _ => {
                return Err(self.fault(
                    iid,
                    FaultKind::TypeError,
                    Value::NULL,
                    "indexing a non-array object",
                ))
            }
        };
        let i = self.as_int(self.val(idx), iid, "array index")?;
        if i < 0 || i as usize >= n {
            return Err(self.fault(
                iid,
                FaultKind::IndexOutOfBounds,
                Value::int(i),
                format!("index {i} out of bounds for length {n}"),
            ));
        }
        Ok((oid, o, i as usize))
    }

    // -- intrinsics --------------------------------------------------------

    fn intrinsic(
        &mut self,
        dst: Option<Reg>,
        intr: Intrinsic,
        args: &[Operand],
        iid: InstrId,
    ) -> Result<(), ThreadStop> {
        let out: Value = match intr {
            Intrinsic::Time => {
                let v = self.nondet_value(iid, |ctx| ctx.rt.nondet.tick_clock())?;
                Value::int(v)
            }
            Intrinsic::Rand => {
                let bound = self.as_int(self.val(args[0]), iid, "rand bound")?;
                if bound <= 0 {
                    return Err(self.fault(
                        iid,
                        FaultKind::TypeError,
                        Value::int(bound),
                        "rand bound must be positive",
                    ));
                }
                let v = self.nondet_value(iid, |ctx| ctx.rng.below(bound))?;
                Value::int(v)
            }
            Intrinsic::Hash => Value::int(opaque_hash(self.val(args[0]).bits())),
            Intrinsic::Print => {
                let text = format!("{}", self.val(args[0]));
                if self.rt.capture_prints {
                    self.rt.prints.lock().push(text);
                }
                return Ok(());
            }
            Intrinsic::ArrayLen => {
                let oid = self.as_object(self.val(args[0]), iid, "len")?;
                let o = self.obj(oid);
                match &o.body {
                    ObjBody::Array { cells } => Value::int(cells.len() as i64),
                    _ => {
                        return Err(self.fault(
                            iid,
                            FaultKind::TypeError,
                            Value::NULL,
                            "len of a non-array object",
                        ))
                    }
                }
            }
            Intrinsic::MapNew => {
                let shared = self.rt.policy.alloc_shared(iid);
                let guarded = self.rt.policy.alloc_guarded(iid);
                Value::obj(self.rt.heap.alloc_map_with(shared, guarded))
            }
            Intrinsic::MapGet
            | Intrinsic::MapPut
            | Intrinsic::MapRemove
            | Intrinsic::MapContains
            | Intrinsic::MapSize => self.map_op(intr, args, iid)?,
        };
        if let Some(dst) = dst {
            self.set_reg(dst, out);
        }
        Ok(())
    }

    fn nondet_value(
        &mut self,
        iid: InstrId,
        compute: impl FnOnce(&mut Self) -> i64,
    ) -> Result<i64, ThreadStop> {
        let v = match &self.rt.nondet {
            NondetSource::Real { .. } => compute(self),
            NondetSource::Scripted { .. } => {
                let rt = self.rt.clone();
                match rt.nondet.next(self.tid, |_| unreachable!("scripted")) {
                    Some(v) => v,
                    None => {
                        return Err(self.fault(
                            iid,
                            FaultKind::ReplayDiverged,
                            Value::NULL,
                            "scripted nondeterministic values exhausted",
                        ))
                    }
                }
            }
        };
        self.rt.recorder.on_nondet(self.tid, v);
        Ok(v)
    }

    fn map_op(
        &mut self,
        intr: Intrinsic,
        args: &[Operand],
        iid: InstrId,
    ) -> Result<Value, ThreadStop> {
        let oid = self.as_object(self.val(args[0]), iid, "map operation")?;
        let o = self.obj(oid);
        if !matches!(o.body, ObjBody::Map { .. }) {
            return Err(self.fault(
                iid,
                FaultKind::TypeError,
                Value::obj(oid),
                "map operation on a non-map object",
            ));
        }
        let key = args.get(1).map(|a| self.val(*a));
        let put_val = args.get(2).map(|a| self.val(*a));
        let kind = match intr {
            Intrinsic::MapGet | Intrinsic::MapContains | Intrinsic::MapSize => AccessKind::Read,
            _ => AccessKind::ReadWrite,
        };
        let o2 = o.clone();
        let mut op = move || {
            let result = match intr {
                Intrinsic::MapGet => o2.map_get(key.expect("arity")),
                Intrinsic::MapPut => o2.map_put(key.expect("arity"), put_val.expect("arity")),
                Intrinsic::MapRemove => o2.map_remove(key.expect("arity")),
                Intrinsic::MapContains => o2.map_contains(key.expect("arity")),
                Intrinsic::MapSize => o2.map_size(),
                _ => unreachable!("map_op called with non-map intrinsic"),
            };
            result.expect("map body checked").bits()
        };
        let bits = if o.shared {
            self.shared_access(Loc::MapState(oid), kind, o.o2_guarded, iid, &mut op)?
                .expect("map accesses are never suppressed")
        } else {
            op()
        };
        Ok(Value::from_bits(bits))
    }

    // -- concurrency instructions -------------------------------------------

    fn spawn(
        &mut self,
        dst: Reg,
        func: FuncId,
        args: &[Operand],
        iid: InstrId,
    ) -> Result<(), ThreadStop> {
        if self.spawn_count >= 254 {
            return Err(self.fault(
                iid,
                FaultKind::TypeError,
                Value::NULL,
                "more than 254 spawns from one thread",
            ));
        }
        if self.tid.raw() >= (1 << 48) {
            return Err(self.fault(
                iid,
                FaultKind::TypeError,
                Value::NULL,
                "spawn tree too deep",
            ));
        }
        let child = self.tid.child(self.spawn_count);
        self.spawn_count += 1;

        let (ctr, _) = self.event(EventClass::Spawn(child), iid, 0)?;
        // Register only after passing the gate: a serializing scheduler
        // must not wait for a thread whose OS counterpart does not exist
        // yet. Registration still precedes the OS spawn, so the child is
        // known before it can run.
        self.rt.scheduler.thread_created(child);
        self.rt.threads.register(child);
        self.rt
            .recorder
            .on_sync(self.tid, ctr, SyncEvent::Spawn { child }, iid);
        self.rt.scheduler.after_event(self.tid, ctr);

        let argv: Vec<Value> = args.iter().map(|a| self.val(*a)).collect();
        let rt = self.rt.clone();
        let parent = Some((self.tid, ctr));
        let handle = std::thread::Builder::new()
            .name(format!("lir-{child}"))
            .spawn(move || interp_thread(rt, child, func, argv, parent))
            .expect("OS thread spawn");
        self.rt.handles.lock().push(handle);
        self.set_reg(dst, Value::thread(child));
        Ok(())
    }

    fn join(&mut self, handle: Operand, iid: InstrId) -> Result<(), ThreadStop> {
        let hv = self.val(handle);
        let Some(child) = hv.as_thread() else {
            return Err(self.fault(
                iid,
                FaultKind::TypeError,
                hv,
                "join requires a thread handle",
            ));
        };
        let (ctr, _) = self.event(EventClass::Join(child), iid, 0)?;
        // Register as a joiner while still runnable (holding the turn
        // under serialized schedulers), so the child's end wakes us
        // through the scheduler deterministically.
        let end_ctr = match self.rt.threads.register_waiter(child, self.tid) {
            Some(e) => e,
            None => {
                self.rt.scheduler.note_blocked(self.tid);
                let res = self.rt.threads.wait_finished(child, self.tid, &self.rt.halt);
                self.unblock(iid)?;
                res?
            }
        };
        self.rt.recorder.on_sync(
            self.tid,
            ctr,
            SyncEvent::Join {
                child,
                child_end: end_ctr,
            },
            iid,
        );
        self.rt.scheduler.after_event(self.tid, ctr);
        Ok(())
    }

    fn monitor_enter(&mut self, obj: Operand, iid: InstrId) -> Result<(), ThreadStop> {
        let oid = self.as_object(self.val(obj), iid, "sync")?;
        let (ctr, _) = self.event(EventClass::MonitorEnter(oid), iid, 0)?;
        let m = self.rt.monitors.monitor(oid);
        if !m.try_enter(self.tid) {
            // Queue position is taken while still runnable (holding the
            // turn under serialized schedulers): the owner's release hands
            // the monitor over in deterministic FIFO order.
            m.register_pending(self.tid, 1);
            self.rt.scheduler.note_blocked(self.tid);
            m.park_pending(self.tid, &self.rt.halt)?;
            self.unblock(iid)?;
        }
        // Recorded while holding the monitor: acquisition order is exact.
        self.rt
            .recorder
            .on_sync(self.tid, ctr, SyncEvent::MonitorEnter { obj: oid }, iid);
        self.rt.scheduler.after_event(self.tid, ctr);
        Ok(())
    }

    fn monitor_exit(&mut self, obj: Operand, iid: InstrId) -> Result<(), ThreadStop> {
        let oid = self.as_object(self.val(obj), iid, "sync exit")?;
        let m = self.rt.monitors.monitor(oid);
        if !m.owned_by(self.tid) {
            return Err(self.fault(
                iid,
                FaultKind::MonitorMisuse,
                Value::obj(oid),
                "monitor exit without ownership",
            ));
        }
        let (ctr, _) = self.event(EventClass::MonitorExit(oid), iid, 0)?;
        // Recorded while still holding the monitor.
        self.rt
            .recorder
            .on_sync(self.tid, ctr, SyncEvent::MonitorExit { obj: oid }, iid);
        if let Some(woken) = m.exit(self.tid).expect("ownership checked above") {
            self.rt.scheduler.note_wake(&[woken]);
        }
        self.rt.scheduler.after_event(self.tid, ctr);
        Ok(())
    }

    fn do_wait(&mut self, obj: Operand, iid: InstrId) -> Result<(), ThreadStop> {
        let oid = self.as_object(self.val(obj), iid, "wait")?;
        let m = self.rt.monitors.monitor(oid);
        if !m.owned_by(self.tid) {
            return Err(self.fault(
                iid,
                FaultKind::MonitorMisuse,
                Value::obj(oid),
                "wait without owning the monitor",
            ));
        }
        // Phase 1: wait_before (releases the lock).
        let (c1, _) = self.event(EventClass::WaitBefore(oid), iid, 0)?;
        self.rt
            .recorder
            .on_sync(self.tid, c1, SyncEvent::WaitBefore { obj: oid }, iid);
        self.rt.scheduler.after_event(self.tid, c1);

        let (saved, woken) = m.wait_begin(self.tid).expect("ownership checked above");
        if let Some(woken) = woken {
            self.rt.scheduler.note_wake(&[woken]);
        }
        self.rt.scheduler.note_blocked(self.tid);
        let notifier = m.wait_block(self.tid, &self.rt.halt)?;
        self.unblock(iid)?;

        // Phase 2: wait_after (reacquires the lock).
        let (c2, _) = self.event(EventClass::WaitAfter(oid), iid, 0)?;
        m.register_pending(self.tid, saved);
        self.rt.scheduler.note_blocked(self.tid);
        m.park_pending(self.tid, &self.rt.halt)?;
        self.unblock(iid)?;
        self.rt.recorder.on_sync(
            self.tid,
            c2,
            SyncEvent::WaitAfter {
                obj: oid,
                notifier: Some(notifier),
            },
            iid,
        );
        self.rt.scheduler.after_event(self.tid, c2);
        Ok(())
    }

    fn do_notify(&mut self, obj: Operand, all: bool, iid: InstrId) -> Result<(), ThreadStop> {
        let oid = self.as_object(self.val(obj), iid, "notify")?;
        let m = self.rt.monitors.monitor(oid);
        if !m.owned_by(self.tid) {
            return Err(self.fault(
                iid,
                FaultKind::MonitorMisuse,
                Value::obj(oid),
                "notify without owning the monitor",
            ));
        }
        let (ctr, _) = self.event(EventClass::Notify(oid), iid, 0)?;
        self.rt
            .recorder
            .on_sync(self.tid, ctr, SyncEvent::Notify { obj: oid, all }, iid);
        let woken = m
            .notify(self.tid, (self.tid, ctr), all, self.rt.wake_all_on_notify)
            .expect("ownership checked above");
        if !woken.is_empty() {
            self.rt.scheduler.note_wake(&woken);
        }
        self.rt.scheduler.after_event(self.tid, ctr);
        Ok(())
    }
}
