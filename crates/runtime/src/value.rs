//! Tagged 64-bit runtime values.
//!
//! Heap cells must be readable and writable atomically under real
//! parallelism, so every LIR value is packed into a single `u64` with a
//! 3-bit tag in the low bits:
//!
//! | tag | meaning                       |
//! |-----|-------------------------------|
//! | 000 | 61-bit signed integer         |
//! | 001 | heap object reference         |
//! | 010 | `null`                        |
//! | 011 | thread handle                 |
//!
//! Integers therefore have 61 bits of range; arithmetic is performed on the
//! decoded `i64` and re-encoded by truncation to 61 bits (documented,
//! deterministic wrap-around).

use crate::thread_id::Tid;
use std::fmt;

/// Index of an object in the [`crate::heap::Heap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

const TAG_BITS: u32 = 3;
const TAG_MASK: u64 = 0b111;
const TAG_INT: u64 = 0b000;
const TAG_REF: u64 = 0b001;
const TAG_NULL: u64 = 0b010;
const TAG_THREAD: u64 = 0b011;

/// A dynamically typed LIR value packed into 64 bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(u64);

impl Value {
    /// The `null` value.
    pub const NULL: Value = Value(TAG_NULL);

    /// The integer zero.
    pub const ZERO: Value = Value(TAG_INT);

    /// Encodes an integer, truncating to 61 bits (two's complement wrap).
    pub fn int(v: i64) -> Value {
        Value(((v << TAG_BITS) as u64) | TAG_INT)
    }

    /// Encodes an object reference.
    pub fn obj(id: ObjId) -> Value {
        Value(((id.0 as u64) << TAG_BITS) | TAG_REF)
    }

    /// Encodes a thread handle.
    pub fn thread(tid: Tid) -> Value {
        Value((tid.raw() << TAG_BITS) | TAG_THREAD)
    }

    /// Reconstructs a value from its raw bit pattern (as stored in a heap
    /// cell). The inverse of [`Value::bits`].
    pub fn from_bits(bits: u64) -> Value {
        Value(bits)
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// The decoded integer, if this is an integer.
    pub fn as_int(self) -> Option<i64> {
        (self.0 & TAG_MASK == TAG_INT).then_some((self.0 as i64) >> TAG_BITS)
    }

    /// The object id, if this is a reference.
    pub fn as_obj(self) -> Option<ObjId> {
        (self.0 & TAG_MASK == TAG_REF).then_some(ObjId((self.0 >> TAG_BITS) as u32))
    }

    /// The thread id, if this is a thread handle.
    pub fn as_thread(self) -> Option<Tid> {
        (self.0 & TAG_MASK == TAG_THREAD).then(|| Tid::from_raw(self.0 >> TAG_BITS))
    }

    /// Whether this value is `null`.
    pub fn is_null(self) -> bool {
        self.0 & TAG_MASK == TAG_NULL
    }

    /// Truthiness: `null` and integer 0 are false; everything else is true.
    pub fn is_truthy(self) -> bool {
        match self.0 & TAG_MASK {
            TAG_INT => self.as_int() != Some(0),
            TAG_NULL => false,
            _ => true,
        }
    }

    /// A short type name for diagnostics.
    pub fn type_name(self) -> &'static str {
        match self.0 & TAG_MASK {
            TAG_INT => "int",
            TAG_REF => "ref",
            TAG_NULL => "null",
            TAG_THREAD => "thread",
            _ => "invalid",
        }
    }
}

impl Default for Value {
    /// Heap cells start as integer zero (like Java primitive defaults).
    fn default() -> Self {
        Value::ZERO
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::int(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 & TAG_MASK {
            TAG_INT => write!(f, "{}", (self.0 as i64) >> TAG_BITS),
            TAG_REF => write!(f, "#{}", self.0 >> TAG_BITS),
            TAG_NULL => write!(f, "null"),
            TAG_THREAD => write!(f, "<thread {}>", self.0 >> TAG_BITS),
            _ => write!(f, "<invalid {:x}>", self.0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        for v in [0i64, 1, -1, 42, -42, (1 << 60) - 1, -(1 << 60)] {
            assert_eq!(Value::int(v).as_int(), Some(v), "value {v}");
        }
    }

    #[test]
    fn int_wraps_at_61_bits() {
        let big = 1i64 << 62;
        // 2^62 truncated to 61 bits is 0.
        assert_eq!(Value::int(big).as_int(), Some(0));
    }

    #[test]
    fn obj_round_trip() {
        let v = Value::obj(ObjId(12345));
        assert_eq!(v.as_obj(), Some(ObjId(12345)));
        assert_eq!(v.as_int(), None);
        assert!(!v.is_null());
    }

    #[test]
    fn thread_round_trip() {
        let tid = Tid::ROOT.child(3).child(7);
        let v = Value::thread(tid);
        assert_eq!(v.as_thread(), Some(tid));
        assert_eq!(v.as_obj(), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::NULL.is_truthy());
        assert!(!Value::int(0).is_truthy());
        assert!(Value::int(1).is_truthy());
        assert!(Value::int(-7).is_truthy());
        assert!(Value::obj(ObjId(0)).is_truthy());
        assert!(Value::thread(Tid::ROOT).is_truthy());
    }

    #[test]
    fn bits_round_trip() {
        let v = Value::int(-99);
        assert_eq!(Value::from_bits(v.bits()), v);
    }

    #[test]
    fn null_distinct_from_zero_and_obj0() {
        assert_ne!(Value::NULL, Value::int(0));
        assert_ne!(Value::NULL, Value::obj(ObjId(0)));
        assert_ne!(Value::int(0), Value::obj(ObjId(0)));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Value::int(5)), "5");
        assert_eq!(format!("{:?}", Value::NULL), "null");
        assert_eq!(format!("{:?}", Value::obj(ObjId(2))), "#2");
    }
}
