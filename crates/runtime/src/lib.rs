//! Concurrent interpreter for LIR programs with instrumentation hooks.
//!
//! This crate is the execution substrate of the Light reproduction. It runs
//! LIR programs with one OS thread per LIR thread over a shared heap with
//! Java-style monitors, and exposes exactly the interface a record/replay
//! technique needs:
//!
//! - every shared access, monitor operation and thread operation is an
//!   *instrumented event* with a per-thread counter (the `D(t)` counters of
//!   the paper's Algorithm 1), routed through a pluggable [`Recorder`];
//! - execution is gated through a pluggable scheduler:
//!   [`SchedulerSpec::Free`] for native parallelism (overhead
//!   measurements), [`SchedulerSpec::Chaos`] for seed-reproducible
//!   interleaving exploration (finding buggy original runs), and
//!   [`SchedulerSpec::Controlled`] for enforcing a solver-computed replay
//!   schedule;
//! - nondeterministic intrinsics (`time`, `rand`) can be recorded and
//!   played back ([`NondetMode`]);
//! - faults carry the correlation data of the paper's Theorem 1
//!   ([`FaultReport::correlates_with`]).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use light_runtime::{run, ExecConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(lir::parse(
//!     "global total;
//!      fn add(n) { total = total + n; }
//!      fn main() {
//!          let t = spawn add(2);
//!          join t;
//!          add(1);
//!          assert(total == 3);
//!      }",
//! )?);
//! let outcome = run(&program, &[], ExecConfig::default())?;
//! assert!(outcome.completed());
//! # Ok(())
//! # }
//! ```

mod exec;
mod fault;
mod halt;
mod heap;
mod hooks;
mod interp;
mod monitor;
mod nondet;
mod policy;
mod registry;
mod sched;
mod thread_id;
mod value;

pub use exec::{run, ExecConfig, RunOutcome, RunStats, SchedulerSpec, SetupError};
pub use fault::{FaultKind, FaultReport};
pub use halt::{HaltFlag, Halted};
pub use heap::{Heap, Loc, Obj, ObjBody};
pub use hooks::{AccessKind, CountingRecorder, NullRecorder, Recorder, SyncEvent};
pub use monitor::{Monitor, MonitorTable, NotOwner, NotifierId};
pub use nondet::{opaque_hash, NondetMode, ThreadRng};
pub use policy::SharedPolicy;
pub use sched::{
    Candidate, ChaosScheduler, ControlledScheduler, DecisionTrace, Directive, EventClass,
    ExploreScheduler, FreeScheduler, RandomWalkStrategy, ReplaySchedule, SchedStop, Scheduler,
    ScriptedStrategy, Segment, SlotAction, Strategy,
};
pub use thread_id::Tid;
pub use value::{ObjId, Value};
