//! The shared heap: objects, arrays, maps and global cells.
//!
//! Cells are `AtomicU64`s holding packed [`Value`]s and are accessed with
//! sequentially consistent ordering, mirroring the paper's use of volatile
//! last-write variables under the JMM. The object table is append-only.

use crate::thread_id::Tid;
use crate::value::{ObjId, Value};
use lir::{ClassId, FieldId, GlobalId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A dynamic memory location, at the granularity Light records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    /// A named global cell.
    Global(GlobalId),
    /// `object.field`.
    Field(ObjId, FieldId),
    /// `array[index]`.
    Elem(ObjId, u32),
    /// The single abstract location of a map object (HashMap-style
    /// collections are opaque single locations, as in the paper's CLAP
    /// discussion).
    MapState(ObjId),
    /// A ghost location modeling a monitor's owner/count fields
    /// (Section 4.3: lock operations as shared accesses).
    Monitor(ObjId),
    /// A ghost location modeling a thread's lifecycle (spawn/start write,
    /// join reads the end write).
    ThreadLife(Tid),
}

impl Loc {
    /// A stable 64-bit key, usable for hashing and lock striping.
    pub fn key(self) -> u64 {
        match self {
            Loc::Global(g) => u64::from(g.0) << 3,
            Loc::Field(o, f) => ((u64::from(o.0) << 24 | u64::from(f.0)) << 3) | 1,
            Loc::Elem(o, i) => ((u64::from(o.0) << 24 | u64::from(i)) << 3) | 2,
            Loc::MapState(o) => (u64::from(o.0) << 3) | 3,
            Loc::Monitor(o) => (u64::from(o.0) << 3) | 4,
            Loc::ThreadLife(t) => (t.raw() << 3) | 5,
        }
    }

    /// Inverse of [`Loc::key`]: decodes a key back into a location, or
    /// `None` for an unused tag. Used by post-mortem tooling (the
    /// profiler's attribution engine, log inspectors) to name variables.
    pub fn from_key(key: u64) -> Option<Loc> {
        let payload = key >> 3;
        Some(match key & 7 {
            0 => Loc::Global(GlobalId(payload as u32)),
            1 => Loc::Field(ObjId((payload >> 24) as u32), FieldId((payload & 0xff_ffff) as u32)),
            2 => Loc::Elem(ObjId((payload >> 24) as u32), (payload & 0xff_ffff) as u32),
            3 => Loc::MapState(ObjId(payload as u32)),
            4 => Loc::Monitor(ObjId(payload as u32)),
            5 => Loc::ThreadLife(Tid::from_raw(payload)),
            _ => return None,
        })
    }

    /// Whether this is a synchronization ghost location (monitor or
    /// thread-lifecycle) rather than a data location.
    pub fn is_ghost(self) -> bool {
        matches!(self, Loc::Monitor(_) | Loc::ThreadLife(_))
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Global(g) => write!(f, "@{g}"),
            Loc::Field(o, fl) => write!(f, "{o}.{fl}"),
            Loc::Elem(o, i) => write!(f, "{o}[{i}]"),
            Loc::MapState(o) => write!(f, "map({o})"),
            Loc::Monitor(o) => write!(f, "monitor({o})"),
            Loc::ThreadLife(t) => write!(f, "life({t})"),
        }
    }
}

/// The body of a heap object.
pub enum ObjBody {
    /// A class instance with one cell per declared field.
    Fields {
        class: ClassId,
        cells: Box<[AtomicU64]>,
    },
    /// A fixed-length array.
    Array { cells: Box<[AtomicU64]> },
    /// A map collection, modeled as one opaque location.
    Map { inner: Mutex<HashMap<u64, u64>> },
}

/// A heap object: its body plus instrumentation metadata.
pub struct Obj {
    pub body: ObjBody,
    /// Whether accesses to this object are instrumented (escape/alloc-site
    /// analysis verdict; `true` under [`crate::policy::SharedPolicy::All`]).
    pub shared: bool,
    /// Whether the object's container accesses are consistently
    /// lock-guarded (the bulk O2 hint, from the lockset analysis).
    pub o2_guarded: bool,
}

impl Obj {
    /// The number of element cells (fields or array slots).
    pub fn cell_count(&self) -> usize {
        match &self.body {
            ObjBody::Fields { cells, .. } | ObjBody::Array { cells } => cells.len(),
            ObjBody::Map { .. } => 0,
        }
    }
}

fn zeroed_cells(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(Value::ZERO.bits())).collect()
}

/// The shared heap for one execution.
pub struct Heap {
    objects: RwLock<Vec<Arc<Obj>>>,
    globals: Box<[AtomicU64]>,
}

impl Heap {
    /// Creates a heap with `nglobals` global cells, all integer zero.
    pub fn new(nglobals: usize) -> Self {
        Self {
            objects: RwLock::new(Vec::new()),
            globals: zeroed_cells(nglobals),
        }
    }

    fn push(&self, obj: Obj) -> ObjId {
        let mut objects = self.objects.write();
        let id = ObjId(objects.len() as u32);
        objects.push(Arc::new(obj));
        id
    }

    /// Allocates a class instance with `nfields` zeroed field cells.
    pub fn alloc_object(&self, class: ClassId, nfields: usize, shared: bool) -> ObjId {
        self.push(Obj {
            body: ObjBody::Fields {
                class,
                cells: zeroed_cells(nfields),
            },
            shared,
            o2_guarded: false,
        })
    }

    /// Allocates a zeroed array of `len` cells.
    pub fn alloc_array(&self, len: usize, shared: bool) -> ObjId {
        self.alloc_array_with(len, shared, false)
    }

    /// Allocates a zeroed array with an explicit bulk-O2 hint.
    pub fn alloc_array_with(&self, len: usize, shared: bool, o2_guarded: bool) -> ObjId {
        self.push(Obj {
            body: ObjBody::Array {
                cells: zeroed_cells(len),
            },
            shared,
            o2_guarded,
        })
    }

    /// Allocates an empty map.
    pub fn alloc_map(&self, shared: bool) -> ObjId {
        self.alloc_map_with(shared, false)
    }

    /// Allocates an empty map with an explicit bulk-O2 hint.
    pub fn alloc_map_with(&self, shared: bool, o2_guarded: bool) -> ObjId {
        self.push(Obj {
            body: ObjBody::Map {
                inner: Mutex::new(HashMap::new()),
            },
            shared,
            o2_guarded,
        })
    }

    /// Fetches the object for `id`, if allocated.
    pub fn get(&self, id: ObjId) -> Option<Arc<Obj>> {
        self.objects.read().get(id.index()).cloned()
    }

    /// The number of allocated objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Loads a global cell.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range (validated IR cannot produce this).
    pub fn load_global(&self, g: GlobalId) -> Value {
        Value::from_bits(self.globals[g.index()].load(Ordering::SeqCst))
    }

    /// Stores a global cell.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn store_global(&self, g: GlobalId, v: Value) {
        self.globals[g.index()].store(v.bits(), Ordering::SeqCst);
    }
}

/// Typed accessors used by the interpreter once an object has been fetched.
impl Obj {
    /// Loads field/array cell `slot`.
    pub fn load_cell(&self, slot: usize) -> Option<Value> {
        match &self.body {
            ObjBody::Fields { cells, .. } | ObjBody::Array { cells } => cells
                .get(slot)
                .map(|c| Value::from_bits(c.load(Ordering::SeqCst))),
            ObjBody::Map { .. } => None,
        }
    }

    /// Stores field/array cell `slot`. Returns `false` when out of range.
    pub fn store_cell(&self, slot: usize, v: Value) -> bool {
        match &self.body {
            ObjBody::Fields { cells, .. } | ObjBody::Array { cells } => {
                if let Some(c) = cells.get(slot) {
                    c.store(v.bits(), Ordering::SeqCst);
                    true
                } else {
                    false
                }
            }
            ObjBody::Map { .. } => false,
        }
    }

    /// `map_get`; `None` if this is not a map.
    pub fn map_get(&self, key: Value) -> Option<Value> {
        match &self.body {
            ObjBody::Map { inner } => Some(
                inner
                    .lock()
                    .get(&key.bits())
                    .map(|&bits| Value::from_bits(bits))
                    .unwrap_or(Value::NULL),
            ),
            _ => None,
        }
    }

    /// `map_put`; returns the previous value (or `null`).
    pub fn map_put(&self, key: Value, value: Value) -> Option<Value> {
        match &self.body {
            ObjBody::Map { inner } => Some(
                inner
                    .lock()
                    .insert(key.bits(), value.bits())
                    .map(Value::from_bits)
                    .unwrap_or(Value::NULL),
            ),
            _ => None,
        }
    }

    /// `map_remove`; returns the removed value (or `null`).
    pub fn map_remove(&self, key: Value) -> Option<Value> {
        match &self.body {
            ObjBody::Map { inner } => Some(
                inner
                    .lock()
                    .remove(&key.bits())
                    .map(Value::from_bits)
                    .unwrap_or(Value::NULL),
            ),
            _ => None,
        }
    }

    /// `map_contains` as 0/1; `None` if not a map.
    pub fn map_contains(&self, key: Value) -> Option<Value> {
        match &self.body {
            ObjBody::Map { inner } => Some(Value::int(i64::from(
                inner.lock().contains_key(&key.bits()),
            ))),
            _ => None,
        }
    }

    /// `map_size`; `None` if not a map.
    pub fn map_size(&self) -> Option<Value> {
        match &self.body {
            ObjBody::Map { inner } => Some(Value::int(inner.lock().len() as i64)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_default_to_zero() {
        let heap = Heap::new(2);
        assert_eq!(heap.load_global(GlobalId(0)), Value::int(0));
        heap.store_global(GlobalId(1), Value::int(9));
        assert_eq!(heap.load_global(GlobalId(1)), Value::int(9));
    }

    #[test]
    fn object_cells_round_trip() {
        let heap = Heap::new(0);
        let id = heap.alloc_object(ClassId(0), 3, true);
        let obj = heap.get(id).unwrap();
        assert_eq!(obj.load_cell(2), Some(Value::int(0)));
        assert!(obj.store_cell(2, Value::int(77)));
        assert_eq!(obj.load_cell(2), Some(Value::int(77)));
        assert!(!obj.store_cell(3, Value::int(1)), "out of range");
    }

    #[test]
    fn array_allocation() {
        let heap = Heap::new(0);
        let id = heap.alloc_array(10, false);
        let obj = heap.get(id).unwrap();
        assert_eq!(obj.cell_count(), 10);
        assert!(!obj.shared);
    }

    #[test]
    fn map_operations() {
        let heap = Heap::new(0);
        let id = heap.alloc_map(true);
        let m = heap.get(id).unwrap();
        assert_eq!(m.map_get(Value::int(1)), Some(Value::NULL));
        assert_eq!(m.map_put(Value::int(1), Value::int(10)), Some(Value::NULL));
        assert_eq!(m.map_put(Value::int(1), Value::int(20)), Some(Value::int(10)));
        assert_eq!(m.map_get(Value::int(1)), Some(Value::int(20)));
        assert_eq!(m.map_contains(Value::int(1)), Some(Value::int(1)));
        assert_eq!(m.map_size(), Some(Value::int(1)));
        assert_eq!(m.map_remove(Value::int(1)), Some(Value::int(20)));
        assert_eq!(m.map_size(), Some(Value::int(0)));
    }

    #[test]
    fn map_accessors_fail_on_non_map() {
        let heap = Heap::new(0);
        let id = heap.alloc_array(1, false);
        let obj = heap.get(id).unwrap();
        assert!(obj.map_get(Value::int(0)).is_none());
        assert!(obj.map_size().is_none());
    }

    #[test]
    fn missing_object_is_none() {
        let heap = Heap::new(0);
        assert!(heap.get(ObjId(5)).is_none());
    }

    #[test]
    fn loc_keys_are_distinct() {
        let locs = [
            Loc::Global(GlobalId(1)),
            Loc::Field(ObjId(1), FieldId(0)),
            Loc::Elem(ObjId(1), 0),
            Loc::MapState(ObjId(1)),
            Loc::Monitor(ObjId(1)),
            Loc::ThreadLife(Tid::ROOT.child(0)),
        ];
        for (i, a) in locs.iter().enumerate() {
            for (j, b) in locs.iter().enumerate() {
                assert_eq!(i == j, a.key() == b.key(), "{a} vs {b}");
            }
        }
    }
}
