//! Bookkeeping of LIR thread lifecycles (for `join`).

use crate::halt::{HaltFlag, Halted, HALT_TICK};
use crate::thread_id::Tid;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct ThreadState {
    finished: bool,
    /// Counter value of the thread's `ThreadEnd` event.
    end_ctr: u64,
    /// Threads blocked in `join` on this one, in registration order.
    waiters: Vec<Tid>,
}

/// Tracks which LIR threads have finished, and at what counter.
#[derive(Default)]
pub struct ThreadRegistry {
    inner: Mutex<HashMap<Tid, ThreadState>>,
    cv: Condvar,
}

impl ThreadRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a thread before it starts.
    pub fn register(&self, tid: Tid) {
        self.inner.lock().insert(tid, ThreadState::default());
    }

    /// Registers `waiter` as blocked joining `target`, unless `target`
    /// already finished — then its end counter is returned and nothing is
    /// registered. Call while the waiter is still runnable (under a
    /// serialized scheduler: while it still holds the turn), so the wake
    /// set reported by [`ThreadRegistry::mark_finished`] is deterministic.
    pub fn register_waiter(&self, target: Tid, waiter: Tid) -> Option<u64> {
        let mut inner = self.inner.lock();
        let st = inner.entry(target).or_default();
        if st.finished {
            return Some(st.end_ctr);
        }
        st.waiters.push(waiter);
        None
    }

    /// Marks a thread finished at counter `end_ctr` and wakes joiners,
    /// returning the registered ones so the caller can report the
    /// wake-ups to its scheduler.
    pub fn mark_finished(&self, tid: Tid, end_ctr: u64) -> Vec<Tid> {
        let mut inner = self.inner.lock();
        let st = inner.entry(tid).or_default();
        st.finished = true;
        st.end_ctr = end_ctr;
        let waiters = std::mem::take(&mut st.waiters);
        self.cv.notify_all();
        waiters
    }

    /// Blocks until `tid` finishes, returning its end counter. `waiter`
    /// is deregistered from the wake set if the wait is abandoned.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the halt flag is raised first.
    pub fn wait_finished(&self, tid: Tid, waiter: Tid, halt: &HaltFlag) -> Result<u64, Halted> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(st) = inner.get(&tid) {
                if st.finished {
                    return Ok(st.end_ctr);
                }
            }
            if halt.is_set() {
                if let Some(st) = inner.get_mut(&tid) {
                    st.waiters.retain(|w| *w != waiter);
                }
                return Err(Halted);
            }
            self.cv.wait_for(&mut inner, HALT_TICK);
        }
    }

    /// Total threads ever registered.
    pub fn count(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn join_after_finish_is_immediate() {
        let reg = ThreadRegistry::new();
        let t = Tid::ROOT.child(0);
        reg.register(t);
        assert_eq!(reg.register_waiter(t, Tid::ROOT), None);
        reg.mark_finished(t, 17);
        assert_eq!(reg.register_waiter(t, Tid::ROOT), Some(17));
    }

    #[test]
    fn wait_finished_blocks_until_marked() {
        let reg = Arc::new(ThreadRegistry::new());
        let halt = HaltFlag::new();
        let t = Tid::ROOT.child(0);
        reg.register(t);
        let reg2 = reg.clone();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            reg2.mark_finished(t, 5);
        });
        assert_eq!(reg.wait_finished(t, Tid::ROOT, &halt), Ok(5));
        h.join().unwrap();
    }

    #[test]
    fn wait_finished_honors_halt() {
        let reg = ThreadRegistry::new();
        let halt = HaltFlag::new();
        halt.set();
        assert_eq!(
            reg.wait_finished(Tid::ROOT.child(0), Tid::ROOT, &halt),
            Err(Halted)
        );
    }

    #[test]
    fn finish_reports_registered_waiters_in_order() {
        let reg = ThreadRegistry::new();
        let t = Tid::ROOT.child(0);
        let j1 = Tid::ROOT;
        let j2 = Tid::ROOT.child(1);
        reg.register(t);
        assert_eq!(reg.register_waiter(t, j1), None);
        assert_eq!(reg.register_waiter(t, j2), None);
        assert_eq!(reg.mark_finished(t, 9), vec![j1, j2]);
        // Late joiners see the end counter instead of registering.
        assert_eq!(reg.register_waiter(t, j2), Some(9));
        assert_eq!(reg.mark_finished(t, 9), Vec::<Tid>::new());
    }
}
