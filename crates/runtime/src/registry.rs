//! Bookkeeping of LIR thread lifecycles (for `join`).

use crate::halt::{HaltFlag, Halted, HALT_TICK};
use crate::thread_id::Tid;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct ThreadState {
    finished: bool,
    /// Counter value of the thread's `ThreadEnd` event.
    end_ctr: u64,
}

/// Tracks which LIR threads have finished, and at what counter.
#[derive(Default)]
pub struct ThreadRegistry {
    inner: Mutex<HashMap<Tid, ThreadState>>,
    cv: Condvar,
}

impl ThreadRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a thread before it starts.
    pub fn register(&self, tid: Tid) {
        self.inner.lock().insert(
            tid,
            ThreadState {
                finished: false,
                end_ctr: 0,
            },
        );
    }

    /// Marks a thread finished at counter `end_ctr` and wakes joiners.
    pub fn mark_finished(&self, tid: Tid, end_ctr: u64) {
        let mut inner = self.inner.lock();
        inner.insert(
            tid,
            ThreadState {
                finished: true,
                end_ctr,
            },
        );
        self.cv.notify_all();
    }

    /// The end counter of `tid` if it already finished.
    pub fn try_end(&self, tid: Tid) -> Option<u64> {
        self.inner
            .lock()
            .get(&tid)
            .filter(|s| s.finished)
            .map(|s| s.end_ctr)
    }

    /// Blocks until `tid` finishes, returning its end counter.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the halt flag is raised first.
    pub fn wait_finished(&self, tid: Tid, halt: &HaltFlag) -> Result<u64, Halted> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(st) = inner.get(&tid) {
                if st.finished {
                    return Ok(st.end_ctr);
                }
            }
            if halt.is_set() {
                return Err(Halted);
            }
            self.cv.wait_for(&mut inner, HALT_TICK);
        }
    }

    /// Total threads ever registered.
    pub fn count(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn join_after_finish_is_immediate() {
        let reg = ThreadRegistry::new();
        let t = Tid::ROOT.child(0);
        reg.register(t);
        assert_eq!(reg.try_end(t), None);
        reg.mark_finished(t, 17);
        assert_eq!(reg.try_end(t), Some(17));
    }

    #[test]
    fn wait_finished_blocks_until_marked() {
        let reg = Arc::new(ThreadRegistry::new());
        let halt = HaltFlag::new();
        let t = Tid::ROOT.child(0);
        reg.register(t);
        let reg2 = reg.clone();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            reg2.mark_finished(t, 5);
        });
        assert_eq!(reg.wait_finished(t, &halt), Ok(5));
        h.join().unwrap();
    }

    #[test]
    fn wait_finished_honors_halt() {
        let reg = ThreadRegistry::new();
        let halt = HaltFlag::new();
        halt.set();
        assert_eq!(
            reg.wait_finished(Tid::ROOT.child(0), &halt),
            Err(Halted)
        );
    }
}
