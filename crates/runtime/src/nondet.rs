//! Sources of nondeterministic intrinsic values (`time`, `rand`).
//!
//! During the original run these come from a live source and are recorded
//! (Section 3.2: "we record the value of the call in the original run and
//! replace the call with the recorded value in the replay run"). During
//! replay a scripted source plays the recorded per-thread sequences back.

use crate::thread_id::Tid;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, Ordering};

/// Configuration for nondeterministic intrinsics.
#[derive(Debug, Clone)]
pub enum NondetMode {
    /// Live values: a shared logical clock for `time()` and per-thread
    /// seeded generators for `rand(n)`.
    Real {
        /// Base seed; each thread derives its stream from `seed ^ tid`.
        seed: u64,
    },
    /// Scripted playback of recorded values, per thread, in call order.
    Scripted(HashMap<Tid, Vec<i64>>),
}

impl Default for NondetMode {
    fn default() -> Self {
        NondetMode::Real { seed: 0 }
    }
}

/// A per-run instance of a [`NondetMode`].
pub(crate) enum NondetSource {
    Real {
        clock: AtomicI64,
    },
    Scripted {
        queues: Mutex<HashMap<Tid, VecDeque<i64>>>,
    },
}

impl NondetSource {
    pub(crate) fn new(mode: &NondetMode) -> Self {
        match mode {
            NondetMode::Real { .. } => NondetSource::Real {
                clock: AtomicI64::new(1),
            },
            NondetMode::Scripted(map) => NondetSource::Scripted {
                queues: Mutex::new(
                    map.iter()
                        .map(|(&tid, vals)| (tid, vals.iter().copied().collect()))
                        .collect(),
                ),
            },
        }
    }

    /// Produces the next value for `tid`; `compute` supplies the live value
    /// when in real mode. Returns `None` when a scripted queue is exhausted
    /// (a replay divergence).
    pub(crate) fn next(&self, tid: Tid, compute: impl FnOnce(&Self) -> i64) -> Option<i64> {
        match self {
            NondetSource::Real { .. } => Some(compute(self)),
            NondetSource::Scripted { queues } => {
                queues.lock().get_mut(&tid).and_then(|q| q.pop_front())
            }
        }
    }

    /// The shared logical clock (real mode only).
    pub(crate) fn tick_clock(&self) -> i64 {
        match self {
            NondetSource::Real { clock } => clock.fetch_add(1, Ordering::SeqCst),
            NondetSource::Scripted { .. } => 0,
        }
    }
}

/// A deterministic per-thread pseudo-random stream (SplitMix64).
///
/// Public so that schedule-exploration strategies (`light-explore`) can
/// derive reproducible randomness from the same seed space the runtime
/// uses for `rand(n)`.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    state: u64,
}

impl ThreadRng {
    pub fn new(seed: u64, tid: Tid) -> Self {
        Self {
            state: seed ^ tid.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: i64) -> i64 {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as i64
    }
}

/// Deterministic 61-bit-positive hash used by the `hash` intrinsic.
pub fn opaque_hash(bits: u64) -> i64 {
    let mut z = bits.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) & ((1 << 60) - 1)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_mode_clock_increases() {
        let src = NondetSource::new(&NondetMode::Real { seed: 1 });
        let a = src.next(Tid::ROOT, |s| s.tick_clock()).unwrap();
        let b = src.next(Tid::ROOT, |s| s.tick_clock()).unwrap();
        assert!(b > a);
    }

    #[test]
    fn scripted_mode_plays_back_in_order() {
        let mut map = HashMap::new();
        map.insert(Tid::ROOT, vec![7, 8, 9]);
        let src = NondetSource::new(&NondetMode::Scripted(map));
        assert_eq!(src.next(Tid::ROOT, |_| unreachable!()), Some(7));
        assert_eq!(src.next(Tid::ROOT, |_| unreachable!()), Some(8));
        assert_eq!(src.next(Tid::ROOT, |_| unreachable!()), Some(9));
        assert_eq!(src.next(Tid::ROOT, |_| unreachable!()), None);
    }

    #[test]
    fn scripted_mode_is_per_thread() {
        let mut map = HashMap::new();
        map.insert(Tid::ROOT, vec![1]);
        let src = NondetSource::new(&NondetMode::Scripted(map));
        assert_eq!(src.next(Tid::ROOT.child(0), |_| unreachable!()), None);
    }

    #[test]
    fn thread_rng_is_deterministic_and_bounded() {
        let mut a = ThreadRng::new(42, Tid::ROOT.child(1));
        let mut b = ThreadRng::new(42, Tid::ROOT.child(1));
        for _ in 0..100 {
            let v = a.below(10);
            assert_eq!(v, b.below(10));
            assert!((0..10).contains(&v));
        }
    }

    #[test]
    fn thread_rng_streams_differ_by_thread() {
        let mut a = ThreadRng::new(42, Tid::ROOT.child(1));
        let mut b = ThreadRng::new(42, Tid::ROOT.child(2));
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn opaque_hash_is_deterministic_and_positive() {
        assert_eq!(opaque_hash(123), opaque_hash(123));
        assert_ne!(opaque_hash(123), opaque_hash(124));
        assert!(opaque_hash(u64::MAX) >= 0);
    }
}
