//! Top-level execution entry point.

use crate::fault::{FaultKind, FaultReport};
use crate::halt::HaltFlag;
use crate::heap::Heap;
use crate::hooks::{NullRecorder, Recorder};
use crate::interp::{interp_thread, RunCtx};
use crate::monitor::MonitorTable;
use crate::nondet::{NondetMode, NondetSource};
use crate::policy::SharedPolicy;
use crate::registry::ThreadRegistry;
use crate::sched::{
    ChaosScheduler, ControlledScheduler, ExploreScheduler, FreeScheduler, ReplaySchedule,
    Scheduler,
};
use crate::thread_id::Tid;
use crate::value::Value;
use lir::{BlockId, InstrId, Program};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which scheduling strategy an execution uses.
// `Controlled` dwarfs the other variants, but exactly one spec exists per
// execution, so boxing the schedule would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum SchedulerSpec {
    /// Native OS scheduling (used for overhead measurements).
    Free,
    /// Serialized seeded exploration; reproducible by seed.
    Chaos { seed: u64 },
    /// Strategy-driven exploration with a caller-held scheduler handle
    /// (so the caller can read the decision trace afterwards). Gets the
    /// same deadlock-detector hookup as `Chaos`.
    Explore(Arc<ExploreScheduler>),
    /// Replay enforcement of a schedule, with a per-event wait timeout.
    Controlled {
        schedule: ReplaySchedule,
        timeout: Duration,
    },
    /// A caller-provided scheduler.
    Custom(Arc<dyn Scheduler>),
}

impl fmt::Debug for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerSpec::Free => write!(f, "Free"),
            SchedulerSpec::Chaos { seed } => write!(f, "Chaos {{ seed: {seed} }}"),
            SchedulerSpec::Explore(_) => write!(f, "Explore(..)"),
            SchedulerSpec::Controlled { schedule, timeout } => write!(
                f,
                "Controlled {{ ordered: {}, timeout: {timeout:?} }}",
                schedule.ordered_len()
            ),
            SchedulerSpec::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// Configuration of one execution.
#[derive(Clone)]
pub struct ExecConfig {
    /// The record/replay technique's hooks.
    pub recorder: Arc<dyn Recorder>,
    pub scheduler: SchedulerSpec,
    pub policy: SharedPolicy,
    pub nondet: NondetMode,
    /// Total interpreter steps across all threads before a
    /// [`FaultKind::StepLimit`] fault.
    pub step_limit: u64,
    /// Maximum call-stack depth per thread.
    pub max_call_depth: usize,
    /// Replay mode: `notify` marks every waiter and the controlled
    /// scheduler decides which one proceeds.
    pub wake_all_on_notify: bool,
    /// Watchdog budget; exceeding it raises [`FaultKind::Timeout`].
    pub wall_timeout: Duration,
    /// Whether `print` output is captured into [`RunOutcome::prints`].
    pub capture_prints: bool,
    /// Observability handle. Disabled by default; when a sink is
    /// attached, the run emits per-thread lifetime spans and the
    /// controlled scheduler's enforcement counters.
    pub obs: light_obs::Obs,
    /// Flight-recorder handle. Disabled by default; when a sink is
    /// attached, the controlled scheduler emits per-decision micro-events
    /// (admissions, stalls, suppressions, parks). The recorder hook gets
    /// its own handle via `LightRecorder::with_flight`-style builders,
    /// not through this field, so non-recording schedulers still profile.
    pub flight: light_obs::Flight,
    /// An externally held halt flag. When set mid-run (e.g. by a
    /// divergence checker that has seen enough), every blocking primitive
    /// winds the execution down promptly. `None` creates a private flag.
    /// Ignored for [`SchedulerSpec::Explore`], whose scheduler already
    /// carries its own flag.
    pub halt: Option<HaltFlag>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            recorder: Arc::new(NullRecorder),
            scheduler: SchedulerSpec::Free,
            policy: SharedPolicy::All,
            nondet: NondetMode::default(),
            step_limit: 500_000_000,
            max_call_depth: 256,
            wake_all_on_notify: false,
            wall_timeout: Duration::from_secs(60),
            capture_prints: true,
            obs: light_obs::Obs::disabled(),
            flight: light_obs::Flight::disabled(),
            halt: None,
        }
    }
}

impl fmt::Debug for ExecConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecConfig")
            .field("scheduler", &self.scheduler)
            .field("step_limit", &self.step_limit)
            .field("wall_timeout", &self.wall_timeout)
            .finish_non_exhaustive()
    }
}

/// Summary statistics of one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    pub duration: Duration,
    /// LIR threads (including the root).
    pub threads: usize,
    /// Instrumented events across all threads.
    pub events: u64,
    /// Heap objects allocated.
    pub objects: usize,
}

/// The result of one execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The first fault raised, if any.
    pub fault: Option<FaultReport>,
    pub stats: RunStats,
    /// Captured `print` output, in a nondeterministic global order.
    pub prints: Vec<String>,
    /// Enforcement counters when the run used the controlled (replay)
    /// scheduler; `None` for free/chaos/custom scheduling.
    pub sched: Option<light_obs::SchedulerMetrics>,
}

impl RunOutcome {
    /// Whether the run finished with no fault at all.
    pub fn completed(&self) -> bool {
        self.fault.is_none()
    }

    /// The fault, if it is a program bug in the sense of Definition 3.2.
    pub fn program_bug(&self) -> Option<&FaultReport> {
        self.fault.as_ref().filter(|f| f.kind.is_program_bug())
    }
}

/// A problem detected before execution starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupError {
    /// The program has no `main` function.
    NoEntry,
    /// `main` expects a different number of arguments.
    ArityMismatch { expected: usize, got: usize },
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::NoEntry => write!(f, "program declares no `main` function"),
            SetupError::ArityMismatch { expected, got } => {
                write!(f, "`main` expects {expected} argument(s), got {got}")
            }
        }
    }
}

impl std::error::Error for SetupError {}

/// Executes `program`'s `main` with the given integer arguments.
///
/// This is the single entry point used by the recording phase, the replay
/// phase and all baselines: they differ only in the [`ExecConfig`] they
/// pass.
///
/// # Errors
///
/// Returns [`SetupError`] if the program has no entry point or the argument
/// count does not match; all runtime problems surface as
/// [`RunOutcome::fault`] instead.
pub fn run(program: &Arc<Program>, args: &[i64], config: ExecConfig) -> Result<RunOutcome, SetupError> {
    let entry = program.entry.ok_or(SetupError::NoEntry)?;
    let expected = program.func(entry).params as usize;
    if expected != args.len() {
        return Err(SetupError::ArityMismatch {
            expected,
            got: args.len(),
        });
    }

    // An externally built explore scheduler already carries a halt flag;
    // the run must share it so faults wake threads parked at its gates.
    let halt = match &config.scheduler {
        SchedulerSpec::Explore(explore) => explore.halt_flag(),
        _ => config.halt.clone().unwrap_or_default(),
    };
    let mut chaos_handle: Option<Arc<ChaosScheduler>> = None;
    let mut controlled_handle: Option<Arc<ControlledScheduler>> = None;
    let scheduler: Arc<dyn Scheduler> = match &config.scheduler {
        SchedulerSpec::Free => Arc::new(FreeScheduler),
        SchedulerSpec::Chaos { seed } => {
            let chaos = Arc::new(ChaosScheduler::new(*seed, halt.clone()));
            chaos_handle = Some(chaos.clone());
            chaos
        }
        SchedulerSpec::Explore(explore) => {
            chaos_handle = Some(explore.clone());
            explore.clone()
        }
        SchedulerSpec::Controlled { schedule, timeout } => {
            let controlled = Arc::new(
                ControlledScheduler::new(schedule.clone(), halt.clone(), *timeout)
                    .with_flight(config.flight.clone()),
            );
            controlled_handle = Some(controlled.clone());
            controlled
        }
        SchedulerSpec::Custom(custom) => custom.clone(),
    };
    let nondet_seed = match config.nondet {
        NondetMode::Real { seed } => seed,
        NondetMode::Scripted(_) => 0,
    };

    let rt = Arc::new(RunCtx {
        program: program.clone(),
        heap: Heap::new(program.globals.len()),
        monitors: MonitorTable::new(),
        policy: config.policy,
        recorder: config.recorder,
        scheduler,
        halt: halt.clone(),
        fault: Mutex::new(None),
        prints: Mutex::new(Vec::new()),
        nondet: NondetSource::new(&config.nondet),
        nondet_seed,
        step_budget: AtomicI64::new(config.step_limit.min(i64::MAX as u64) as i64),
        events: AtomicU64::new(0),
        threads: ThreadRegistry::new(),
        handles: Mutex::new(Vec::new()),
        wake_all_on_notify: config.wake_all_on_notify,
        max_call_depth: config.max_call_depth,
        capture_prints: config.capture_prints,
        obs: config.obs.clone(),
    });

    // Chaos deadlock detector: blocked threads sit inside primitives, so a
    // background probe must run the all-blocked check and report the fault.
    if let Some(chaos) = &chaos_handle {
        let rt2 = rt.clone();
        let entry_iid = InstrId {
            func: entry,
            block: BlockId(0),
            idx: 0,
        };
        chaos.start_detector(Box::new(move || {
            rt2.report_fault(FaultReport {
                tid: Tid::ROOT,
                ctr: 0,
                instr: entry_iid,
                line: 0,
                kind: FaultKind::Deadlock,
                value: Value::NULL,
                detail: "all live threads are blocked".into(),
            });
        }));
    }

    // Watchdog: raise a Timeout fault if the run exceeds its wall budget.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let rt = rt.clone();
        let done = done.clone();
        let budget = config.wall_timeout;
        let entry_iid = InstrId {
            func: entry,
            block: BlockId(0),
            idx: 0,
        };
        std::thread::spawn(move || {
            let start = Instant::now();
            while !done.load(Ordering::Acquire) {
                if start.elapsed() > budget {
                    rt.report_fault(FaultReport {
                        tid: Tid::ROOT,
                        ctr: 0,
                        instr: entry_iid,
                        line: 0,
                        kind: FaultKind::Timeout,
                        value: Value::NULL,
                        detail: format!("run exceeded {budget:?}"),
                    });
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    let start = Instant::now();
    rt.scheduler.thread_created(Tid::ROOT);
    rt.threads.register(Tid::ROOT);
    let argv: Vec<Value> = args.iter().map(|&v| Value::int(v)).collect();
    interp_thread(rt.clone(), Tid::ROOT, entry, argv, None);

    // Wait for every spawned thread (threads may spawn more while we join).
    loop {
        let handle = rt.handles.lock().pop();
        match handle {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let duration = start.elapsed();
    done.store(true, Ordering::Release);
    let _ = watchdog.join();

    let fault = rt.fault.lock().clone();
    let prints = std::mem::take(&mut *rt.prints.lock());
    let stats = RunStats {
        duration,
        threads: rt.threads.count(),
        events: rt.events.load(Ordering::Relaxed),
        objects: rt.heap.object_count(),
    };
    let sched = controlled_handle.map(|c| c.metrics());
    Ok(RunOutcome {
        fault,
        stats,
        prints,
        sched,
    })
}
