//! Java-style reentrant monitors with `wait`/`notify`.
//!
//! Each LIR object can serve as a monitor (as in the JVM). The
//! implementation reports which `notify` woke which waiter, which Light's
//! recorder consumes to order `notify → wait_after` (Section 4.3), and
//! supports a *wake-all* mode used during replay, where the controlled
//! scheduler — not the monitor's FIFO discipline — decides which waiter
//! proceeds.

use crate::halt::{HaltFlag, Halted, HALT_TICK};
use crate::thread_id::Tid;
use crate::value::ObjId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of the `notify` event that woke a waiter: `(thread, counter)`.
pub type NotifierId = (Tid, u64);

/// Monitor misuse (operating on a monitor the thread does not own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotOwner;

struct Waiter {
    tid: Tid,
    notified: Option<NotifierId>,
}

#[derive(Default)]
struct MonState {
    owner: Option<Tid>,
    count: u32,
    waiters: Vec<Waiter>,
    /// FIFO queue of threads parked for acquisition, with the recursion
    /// count each will own at. Releases hand the monitor to the queue
    /// head directly, so acquisition order is a deterministic function
    /// of registration order (which serialized schedulers control) —
    /// never an OS wake-up race.
    pending: Vec<(Tid, u32)>,
}

impl MonState {
    /// Releases full ownership: hands the monitor to the pending-queue
    /// head when there is one. Returns the new owner.
    fn release(&mut self) -> Option<Tid> {
        self.count = 0;
        if self.pending.is_empty() {
            self.owner = None;
            None
        } else {
            let (next, count) = self.pending.remove(0);
            self.owner = Some(next);
            self.count = count;
            Some(next)
        }
    }
}

/// One object's monitor.
pub struct Monitor {
    state: Mutex<MonState>,
    cv: Condvar,
}

impl Monitor {
    fn new() -> Self {
        Self {
            state: Mutex::new(MonState::default()),
            cv: Condvar::new(),
        }
    }

    /// Attempts to acquire without blocking. Returns `true` on success
    /// (including reentrant re-acquisition).
    pub fn try_enter(&self, tid: Tid) -> bool {
        let mut st = self.state.lock();
        match st.owner {
            None => {
                st.owner = Some(tid);
                st.count = 1;
                true
            }
            Some(owner) if owner == tid => {
                st.count += 1;
                true
            }
            Some(_) => false,
        }
    }

    /// Joins the acquisition queue without blocking; `count` is the
    /// recursion depth the thread will own at once handed the monitor.
    /// Call while the thread is still runnable (under a serialized
    /// scheduler: while it still holds the turn), then park with
    /// [`Monitor::park_pending`].
    pub fn register_pending(&self, tid: Tid, count: u32) {
        self.state.lock().pending.push((tid, count));
    }

    /// Blocks until the monitor is handed to `tid` (it must be registered
    /// with [`Monitor::register_pending`]).
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the halt flag is raised while waiting.
    pub fn park_pending(&self, tid: Tid, halt: &HaltFlag) -> Result<(), Halted> {
        let mut st = self.state.lock();
        loop {
            if st.owner == Some(tid) {
                return Ok(());
            }
            // A release that found the queue momentarily empty left the
            // monitor unowned; the queue head claims it.
            if st.owner.is_none() && st.pending.first().map(|p| p.0) == Some(tid) {
                let (_, count) = st.pending.remove(0);
                st.owner = Some(tid);
                st.count = count;
                return Ok(());
            }
            if halt.is_set() {
                st.pending.retain(|p| p.0 != tid);
                return Err(Halted);
            }
            self.cv.wait_for(&mut st, HALT_TICK);
        }
    }

    /// Acquires, blocking until available or halted.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the halt flag is raised while waiting.
    pub fn enter_blocking(&self, tid: Tid, halt: &HaltFlag) -> Result<(), Halted> {
        if self.try_enter(tid) {
            return Ok(());
        }
        self.register_pending(tid, 1);
        self.park_pending(tid, halt)
    }

    /// Releases one level of ownership. A full release hands the monitor
    /// to the longest-pending blocked acquirer, whose [`Tid`] is returned
    /// so the caller can report the wake-up to its scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`NotOwner`] if `tid` does not own the monitor.
    pub fn exit(&self, tid: Tid) -> Result<Option<Tid>, NotOwner> {
        let mut st = self.state.lock();
        if st.owner != Some(tid) {
            return Err(NotOwner);
        }
        st.count -= 1;
        let woken = if st.count == 0 {
            let woken = st.release();
            self.cv.notify_all();
            woken
        } else {
            None
        };
        Ok(woken)
    }

    /// First phase of `wait`: registers `tid` as a waiter and fully
    /// releases the monitor, returning the saved recursion count and the
    /// pending acquirer the monitor was handed to, if any.
    ///
    /// # Errors
    ///
    /// Returns [`NotOwner`] if `tid` does not own the monitor.
    pub fn wait_begin(&self, tid: Tid) -> Result<(u32, Option<Tid>), NotOwner> {
        let mut st = self.state.lock();
        if st.owner != Some(tid) {
            return Err(NotOwner);
        }
        let saved = st.count;
        st.waiters.push(Waiter {
            tid,
            notified: None,
        });
        let woken = st.release();
        self.cv.notify_all();
        Ok((saved, woken))
    }

    /// Second phase of `wait`: blocks until a `notify` marks this waiter,
    /// then removes it from the wait set and reports the notifier. The
    /// monitor is *not* yet reacquired.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the halt flag is raised while waiting.
    pub fn wait_block(&self, tid: Tid, halt: &HaltFlag) -> Result<NotifierId, Halted> {
        let mut st = self.state.lock();
        loop {
            if let Some(pos) = st
                .waiters
                .iter()
                .position(|w| w.tid == tid && w.notified.is_some())
            {
                let waiter = st.waiters.remove(pos);
                return Ok(waiter.notified.expect("checked above"));
            }
            if halt.is_set() {
                // Deregister so the wait set stays clean.
                st.waiters.retain(|w| w.tid != tid);
                return Err(Halted);
            }
            self.cv.wait_for(&mut st, HALT_TICK);
        }
    }

    /// Final phase of `wait`: reacquires the monitor with the saved count,
    /// queueing behind already-pending acquirers.
    ///
    /// # Errors
    ///
    /// Returns [`Halted`] if the halt flag is raised while waiting.
    pub fn reacquire(&self, tid: Tid, saved: u32, halt: &HaltFlag) -> Result<(), Halted> {
        self.register_pending(tid, saved);
        self.park_pending(tid, halt)
    }

    /// Notifies waiters. With `all` (or `wake_all` — replay mode) every
    /// current waiter is marked; otherwise the longest-waiting one.
    /// Returns the newly notified waiters (threads whose `wait_block`
    /// becomes unblocked) so the caller can report them to its scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`NotOwner`] if `tid` does not own the monitor.
    pub fn notify(
        &self,
        tid: Tid,
        notifier: NotifierId,
        all: bool,
        wake_all: bool,
    ) -> Result<Vec<Tid>, NotOwner> {
        let mut st = self.state.lock();
        if st.owner != Some(tid) {
            return Err(NotOwner);
        }
        let mut woken = Vec::new();
        if all || wake_all {
            for w in st.waiters.iter_mut() {
                if w.notified.is_none() {
                    w.notified = Some(notifier);
                    woken.push(w.tid);
                }
            }
        } else if let Some(w) = st.waiters.iter_mut().find(|w| w.notified.is_none()) {
            w.notified = Some(notifier);
            woken.push(w.tid);
        }
        self.cv.notify_all();
        Ok(woken)
    }

    /// Whether `tid` currently owns this monitor.
    pub fn owned_by(&self, tid: Tid) -> bool {
        self.state.lock().owner == Some(tid)
    }
}

const SHARDS: usize = 16;

/// Lazily materialized monitors, sharded to reduce contention.
pub struct MonitorTable {
    shards: Vec<Mutex<HashMap<ObjId, Arc<Monitor>>>>,
}

impl MonitorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The monitor for `obj`, creating it on first use.
    pub fn monitor(&self, obj: ObjId) -> Arc<Monitor> {
        let shard = &self.shards[obj.index() % SHARDS];
        shard
            .lock()
            .entry(obj)
            .or_insert_with(|| Arc::new(Monitor::new()))
            .clone()
    }
}

impl Default for MonitorTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn reentrant_enter_exit() {
        let m = Monitor::new();
        let t = Tid::ROOT;
        assert!(m.try_enter(t));
        assert!(m.try_enter(t));
        m.exit(t).unwrap();
        assert!(m.owned_by(t));
        m.exit(t).unwrap();
        assert!(!m.owned_by(t));
    }

    #[test]
    fn try_enter_fails_when_held_by_other() {
        let m = Monitor::new();
        assert!(m.try_enter(Tid::ROOT));
        assert!(!m.try_enter(Tid::ROOT.child(0)));
    }

    #[test]
    fn exit_without_ownership_is_misuse() {
        let m = Monitor::new();
        assert_eq!(m.exit(Tid::ROOT), Err(NotOwner));
    }

    #[test]
    fn blocking_enter_succeeds_after_release() {
        let m = Arc::new(Monitor::new());
        let halt = HaltFlag::new();
        let t1 = Tid::ROOT;
        let t2 = Tid::ROOT.child(0);
        assert!(m.try_enter(t1));
        let m2 = m.clone();
        let h2 = halt.clone();
        let handle = thread::spawn(move || m2.enter_blocking(t2, &h2));
        thread::sleep(Duration::from_millis(30));
        m.exit(t1).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(()));
        assert!(m.owned_by(t2));
    }

    #[test]
    fn blocking_enter_honors_halt() {
        let m = Arc::new(Monitor::new());
        let halt = HaltFlag::new();
        assert!(m.try_enter(Tid::ROOT));
        let m2 = m.clone();
        let h2 = halt.clone();
        let handle = thread::spawn(move || m2.enter_blocking(Tid::ROOT.child(0), &h2));
        thread::sleep(Duration::from_millis(20));
        halt.set();
        assert_eq!(handle.join().unwrap(), Err(Halted));
    }

    #[test]
    fn wait_notify_round_trip() {
        let m = Arc::new(Monitor::new());
        let halt = HaltFlag::new();
        let waiter_tid = Tid::ROOT.child(0);
        let notifier_tid = Tid::ROOT;

        let m2 = m.clone();
        let h2 = halt.clone();
        let waiter = thread::spawn(move || {
            assert!(m2.try_enter(waiter_tid));
            assert!(m2.try_enter(waiter_tid)); // depth 2
            let (saved, _) = m2.wait_begin(waiter_tid).unwrap();
            assert_eq!(saved, 2);
            let notifier = m2.wait_block(waiter_tid, &h2).unwrap();
            m2.reacquire(waiter_tid, saved, &h2).unwrap();
            assert!(m2.owned_by(waiter_tid));
            m2.exit(waiter_tid).unwrap();
            m2.exit(waiter_tid).unwrap();
            notifier
        });

        // Give the waiter time to release.
        thread::sleep(Duration::from_millis(30));
        m.enter_blocking(notifier_tid, &halt).unwrap();
        m.notify(notifier_tid, (notifier_tid, 42), false, false)
            .unwrap();
        m.exit(notifier_tid).unwrap();
        assert_eq!(waiter.join().unwrap(), (notifier_tid, 42));
    }

    #[test]
    fn single_notify_wakes_fifo_first() {
        let m = Arc::new(Monitor::new());
        let halt = HaltFlag::new();
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        // Register two waiters directly (in order t1, t2).
        assert!(m.try_enter(t1));
        m.wait_begin(t1).unwrap();
        assert!(m.try_enter(t2));
        m.wait_begin(t2).unwrap();

        assert!(m.try_enter(Tid::ROOT));
        m.notify(Tid::ROOT, (Tid::ROOT, 1), false, false).unwrap();
        m.exit(Tid::ROOT).unwrap();

        // t1 was first in the wait set; only it is notified.
        assert_eq!(m.wait_block(t1, &halt), Ok((Tid::ROOT, 1)));
        halt.set();
        assert_eq!(m.wait_block(t2, &halt), Err(Halted));
    }

    #[test]
    fn wake_all_mode_marks_every_waiter() {
        let m = Arc::new(Monitor::new());
        let halt = HaltFlag::new();
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        assert!(m.try_enter(t1));
        m.wait_begin(t1).unwrap();
        assert!(m.try_enter(t2));
        m.wait_begin(t2).unwrap();

        assert!(m.try_enter(Tid::ROOT));
        m.notify(Tid::ROOT, (Tid::ROOT, 9), false, true).unwrap();
        m.exit(Tid::ROOT).unwrap();

        assert_eq!(m.wait_block(t1, &halt), Ok((Tid::ROOT, 9)));
        assert_eq!(m.wait_block(t2, &halt), Ok((Tid::ROOT, 9)));
    }

    #[test]
    fn release_hands_off_to_pending_fifo_head() {
        let m = Monitor::new();
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        assert!(m.try_enter(Tid::ROOT));
        // t2 registers before t1: the queue, not wake-up timing, decides.
        m.register_pending(t2, 1);
        m.register_pending(t1, 1);
        assert_eq!(m.exit(Tid::ROOT), Ok(Some(t2)));
        assert!(m.owned_by(t2));
        assert_eq!(m.exit(t2), Ok(Some(t1)));
        assert!(m.owned_by(t1));
        assert_eq!(m.exit(t1), Ok(None));
        assert!(!m.owned_by(t1));
    }

    #[test]
    fn single_notify_reports_woken_waiter() {
        let m = Monitor::new();
        let t1 = Tid::ROOT.child(0);
        assert!(m.try_enter(t1));
        m.wait_begin(t1).unwrap();
        assert!(m.try_enter(Tid::ROOT));
        assert_eq!(m.notify(Tid::ROOT, (Tid::ROOT, 1), false, false), Ok(vec![t1]));
        // The sole waiter is already marked: nothing further to wake.
        assert_eq!(m.notify(Tid::ROOT, (Tid::ROOT, 2), false, false), Ok(vec![]));
    }

    #[test]
    fn notify_requires_ownership() {
        let m = Monitor::new();
        assert_eq!(
            m.notify(Tid::ROOT, (Tid::ROOT, 1), false, false),
            Err(NotOwner)
        );
    }

    #[test]
    fn table_returns_same_monitor_for_same_object() {
        let table = MonitorTable::new();
        let a = table.monitor(ObjId(3));
        let b = table.monitor(ObjId(3));
        let c = table.monitor(ObjId(4));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
