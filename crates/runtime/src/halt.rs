//! Cooperative cancellation shared by every blocking primitive.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The polling period of every halt-aware blocking loop.
pub const HALT_TICK: Duration = Duration::from_millis(10);

/// A cloneable halt flag. Once set it never clears; every blocking
/// primitive in the runtime polls it so executions wind down promptly after
/// a fault on any thread.
#[derive(Debug, Clone, Default)]
pub struct HaltFlag(Arc<AtomicBool>);

impl HaltFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether halt has been requested.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Requests halt.
    pub fn set(&self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Error returned by blocking operations interrupted by a halt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Halted;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halt_flag_is_sticky_and_shared() {
        let a = HaltFlag::new();
        let b = a.clone();
        assert!(!a.is_set());
        b.set();
        assert!(a.is_set());
    }
}
