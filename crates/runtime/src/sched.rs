//! Schedulers: free (native), exploration (strategy-driven serialized
//! search, of which chaos is one strategy) and controlled (replay
//! enforcement).
//!
//! The interpreter *gates* every instrumented event through
//! [`Scheduler::before_event`]. The free scheduler lets native OS
//! scheduling decide everything (used for overhead measurements). The
//! exploration scheduler serializes execution and, at each quiescence
//! point, asks a pluggable [`Strategy`] which parked thread runs next;
//! every decision is appended to a [`DecisionTrace`] that can be played
//! back verbatim with [`ScriptedStrategy`] — the substrate of schedule
//! search and repro minimization. The classic chaos scheduler is the
//! exploration scheduler driven by [`RandomWalkStrategy`] (a seeded
//! uniform pick), which keeps interleavings reproducible by seed. The
//! controlled scheduler enforces a total order over selected events,
//! which is how Light's solver-produced replay schedule is executed.

use crate::halt::{HaltFlag, Halted, HALT_TICK};
use crate::heap::Loc;
use crate::hooks::AccessKind;
use crate::nondet::ThreadRng;
use crate::thread_id::Tid;
use crate::value::ObjId;
use light_obs::{Flight, FlightKind, SchedulerMetrics, NO_SITE};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What kind of event a gate guards (the scheduler's view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    Access {
        loc: Loc,
        kind: AccessKind,
        /// Bulk-O2 hint: the location is consistently lock-guarded, so its
        /// unlisted writes replay freely (their order is subsumed by the
        /// recorded monitor dependences).
        guarded: bool,
    },
    MonitorEnter(ObjId),
    MonitorExit(ObjId),
    WaitBefore(ObjId),
    WaitAfter(ObjId),
    Notify(ObjId),
    Spawn(Tid),
    ThreadStart,
    Join(Tid),
    ThreadEnd,
}

/// What the gated thread should do with its event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Perform the event normally.
    Proceed,
    /// Skip the store: the event is a *blind write* the replay schedule
    /// elides (Section 4.2).
    SuppressWrite,
}

/// Why a gate refused to let a thread continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedStop {
    /// The run is halting (fault elsewhere, or shutdown).
    Halted,
    /// The chaos scheduler proved all live threads blocked.
    Deadlock,
    /// The controlled scheduler timed out waiting for its slot (replay
    /// infrastructure failure).
    Diverged(String),
}

impl From<Halted> for SchedStop {
    fn from(_: Halted) -> Self {
        SchedStop::Halted
    }
}

/// A scheduling strategy. All methods may be called concurrently.
pub trait Scheduler: Send + Sync {
    /// Registers a thread before it starts running (called by the parent,
    /// so registration is never racy with deadlock detection).
    fn thread_created(&self, tid: Tid) {
        let _ = tid;
    }

    /// Deregisters a finished thread.
    fn thread_exited(&self, tid: Tid) {
        let _ = tid;
    }

    /// Gate before instrumented event `ctr` of `tid`. Blocks until the
    /// event may proceed.
    ///
    /// # Errors
    ///
    /// [`SchedStop`] when the run must stop instead of performing the event.
    fn before_event(&self, tid: Tid, ctr: u64, ev: &EventClass) -> Result<Directive, SchedStop>;

    /// Marks completion of the event admitted by the matching
    /// [`Scheduler::before_event`].
    fn after_event(&self, tid: Tid, ctr: u64) {
        let _ = (tid, ctr);
    }

    /// Tells the scheduler `tid` is about to block in a primitive (monitor,
    /// join, wait) so it is not considered runnable.
    fn note_blocked(&self, tid: Tid) {
        let _ = tid;
    }

    /// Tells the scheduler the calling thread just made the given blocked
    /// threads runnable (monitor handoff, notify, thread end). Called
    /// synchronously by the waking thread — before it reaches its next
    /// gate — so a serializing scheduler can wait for the woken threads to
    /// check in instead of racing their OS wake-up for the next decision.
    fn note_wake(&self, woken: &[Tid]) {
        let _ = woken;
    }

    /// Tells the scheduler `tid` finished blocking; blocks until the
    /// thread may run again (relevant for serializing schedulers).
    ///
    /// # Errors
    ///
    /// [`SchedStop`] when the run must stop.
    fn note_unblocked(&self, tid: Tid) -> Result<(), SchedStop> {
        let _ = tid;
        Ok(())
    }
}

/// Native scheduling: every gate is a no-op. Used for the original-run
/// overhead measurements (Figures 4 and 5).
#[derive(Debug, Default)]
pub struct FreeScheduler;

impl Scheduler for FreeScheduler {
    fn before_event(&self, _tid: Tid, _ctr: u64, _ev: &EventClass) -> Result<Directive, SchedStop> {
        Ok(Directive::Proceed)
    }
}

// ---------------------------------------------------------------------------
// Exploration scheduler (chaos is RandomWalkStrategy)
// ---------------------------------------------------------------------------

/// A parked thread offered to a [`Strategy`] at a quiescence point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    pub tid: Tid,
    /// The event the thread is about to perform, when known. `None` for a
    /// thread re-entering the gate from `note_unblocked` (it resumes inside
    /// a primitive, so its next event is not yet visible).
    pub event: Option<EventClass>,
}

/// A pluggable schedule-search strategy: at every quiescence point the
/// exploration scheduler hands it the sorted candidate set and runs the
/// thread it picks.
///
/// `candidates` is non-empty and sorted by [`Tid`]; the return value is an
/// index into it (out-of-range indices are clamped). Implementations must
/// be deterministic functions of their own state and the candidate
/// sequence — that is what makes a run reproducible from `(program, args,
/// strategy, seed)` and what lets a recorded [`DecisionTrace`] be replayed
/// verbatim through [`ScriptedStrategy`].
pub trait Strategy: Send {
    fn pick(&mut self, candidates: &[Candidate]) -> usize;
}

/// One run-length-encoded scheduling decision: the chosen thread and how
/// many consecutive picks it received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub tid: Tid,
    pub picks: u64,
}

/// The full sequence of scheduling decisions of one exploration run,
/// run-length encoded by thread. Segment boundaries are exactly the
/// context switches, so shrinking a repro = removing segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionTrace {
    pub segments: Vec<Segment>,
}

impl DecisionTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one decision, merging into the last segment when the same
    /// thread is picked again.
    pub fn push(&mut self, tid: Tid) {
        if let Some(last) = self.segments.last_mut() {
            if last.tid == tid {
                last.picks += 1;
                return;
            }
        }
        self.segments.push(Segment { tid, picks: 1 });
    }

    /// Number of segments (context-switch granularity).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total individual decisions across all segments.
    pub fn total_picks(&self) -> u64 {
        self.segments.iter().map(|s| s.picks).sum()
    }

    /// Canonical byte encoding (little-endian `(tid, picks)` pairs), used
    /// by determinism regression tests and trace fingerprinting.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.segments.len() * 16);
        for s in &self.segments {
            out.extend_from_slice(&s.tid.raw().to_le_bytes());
            out.extend_from_slice(&s.picks.to_le_bytes());
        }
        out
    }
}

/// The chaos strategy: a uniformly random pick from a seeded SplitMix64
/// stream. This is the original chaos scheduler's decision rule, extracted.
#[derive(Debug, Clone)]
pub struct RandomWalkStrategy {
    rng: ThreadRng,
}

impl RandomWalkStrategy {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ThreadRng::new(seed, Tid::ROOT),
        }
    }
}

impl Strategy for RandomWalkStrategy {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        self.rng.below(candidates.len() as i64) as usize
    }
}

/// Plays a recorded [`DecisionTrace`] back decision-for-decision.
///
/// Minimized traces reference threads that may not be at the gate when
/// their segment comes up (the surrounding context was deleted); such
/// segments are skipped. Past the end of the script the strategy keeps
/// running the last-picked thread while it remains a candidate and falls
/// back to the lowest tid otherwise — deterministic, and it introduces no
/// context switches beyond the scripted ones.
#[derive(Debug, Clone)]
pub struct ScriptedStrategy {
    segments: Vec<Segment>,
    seg: usize,
    used: u64,
    last: Option<Tid>,
}

impl ScriptedStrategy {
    pub fn new(trace: &DecisionTrace) -> Self {
        Self {
            segments: trace.segments.clone(),
            seg: 0,
            used: 0,
            last: None,
        }
    }
}

impl Strategy for ScriptedStrategy {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        while let Some(seg) = self.segments.get(self.seg) {
            if self.used >= seg.picks {
                self.seg += 1;
                self.used = 0;
                continue;
            }
            if let Some(i) = candidates.iter().position(|c| c.tid == seg.tid) {
                self.used += 1;
                self.last = Some(seg.tid);
                return i;
            }
            // Scheduled thread is not available here (the trace was
            // shrunk); drop the rest of this segment.
            self.seg += 1;
            self.used = 0;
        }
        if let Some(last) = self.last {
            if let Some(i) = candidates.iter().position(|c| c.tid == last) {
                return i;
            }
        }
        self.last = Some(candidates[0].tid);
        0
    }
}

struct ExploreState {
    strategy: Box<dyn Strategy>,
    decisions: DecisionTrace,
    alive: HashSet<Tid>,
    at_gate: Vec<Candidate>,
    blocked: HashSet<Tid>,
    /// Threads a `note_wake` declared runnable that have not yet checked
    /// back in via `note_unblocked`. They count as running (not
    /// accounted), so no decision races their in-flight wake-up.
    waking: HashSet<Tid>,
    /// The thread currently allowed to run (holds the "turn").
    holder: Option<Tid>,
    /// Set once a deadlock has been proven; all gates then fail.
    deadlocked: bool,
    /// When the no-runnable condition was first observed.
    suspect_since: Option<Instant>,
}

/// Serialized, strategy-driven exploration of interleavings.
///
/// Exactly one thread runs at a time. When the running thread reaches its
/// next gate (or blocks, or exits), and every other live thread is parked
/// at a gate or blocked, the scheduler asks its [`Strategy`] which parked
/// thread runs next and records the decision. Given the same program,
/// inputs and strategy state, the chosen interleaving is reproducible.
///
/// [`ChaosScheduler`] is this scheduler under [`RandomWalkStrategy`].
pub struct ExploreScheduler {
    halt: HaltFlag,
    state: Mutex<ExploreState>,
    cv: Condvar,
    deadlock_grace: Duration,
    /// Invoked (once) when a deadlock is proven; typically reports a
    /// deadlock fault and raises the halt flag.
    on_deadlock: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

/// The original chaos scheduler: exploration under a seeded random walk.
pub type ChaosScheduler = ExploreScheduler;

impl ExploreScheduler {
    /// Creates a chaos scheduler with the given seed (a
    /// [`RandomWalkStrategy`] exploration).
    pub fn new(seed: u64, halt: HaltFlag) -> Self {
        Self::with_strategy(Box::new(RandomWalkStrategy::new(seed)), halt)
    }

    /// Creates an exploration scheduler driven by `strategy`.
    pub fn with_strategy(strategy: Box<dyn Strategy>, halt: HaltFlag) -> Self {
        Self {
            halt,
            state: Mutex::new(ExploreState {
                strategy,
                decisions: DecisionTrace::new(),
                alive: HashSet::new(),
                at_gate: Vec::new(),
                blocked: HashSet::new(),
                waking: HashSet::new(),
                holder: None,
                deadlocked: false,
                suspect_since: None,
            }),
            cv: Condvar::new(),
            deadlock_grace: Duration::from_millis(200),
            on_deadlock: Mutex::new(None),
        }
    }

    /// Snapshot of the decisions made so far. Stable once the run ends.
    pub fn trace(&self) -> DecisionTrace {
        self.state.lock().decisions.clone()
    }

    /// The halt flag this scheduler polls. An execution driving this
    /// scheduler must share it (see `SchedulerSpec::Explore`), otherwise a
    /// fault elsewhere would never wake threads parked at gates.
    pub fn halt_flag(&self) -> HaltFlag {
        self.halt.clone()
    }

    /// Installs the deadlock callback and starts a background detector that
    /// periodically re-checks for the all-blocked condition (the blocked
    /// threads themselves sit inside monitor/join/wait primitives, so no
    /// gated thread is around to run the check).
    ///
    /// The detector exits when `halt` is raised or `self` is dropped by the
    /// caller keeping the returned scheduler alive only for one run.
    pub fn start_detector(self: &std::sync::Arc<Self>, on_deadlock: Box<dyn FnOnce() + Send>) {
        *self.on_deadlock.lock() = Some(on_deadlock);
        let me = std::sync::Arc::downgrade(self);
        std::thread::spawn(move || loop {
            std::thread::sleep(HALT_TICK.max(Duration::from_millis(20)));
            let Some(s) = me.upgrade() else { return };
            if s.halt.is_set() {
                return;
            }
            let mut st = s.state.lock();
            s.try_pick(&mut st);
            if st.deadlocked {
                return;
            }
        });
    }

    fn fire_deadlock(&self) {
        if let Some(cb) = self.on_deadlock.lock().take() {
            cb();
        }
    }

    /// If every live thread is accounted for (at a gate or blocked) and at
    /// least one is at a gate, ask the strategy which parked thread gets
    /// the turn and record the decision. If *all* live threads are blocked
    /// for longer than the grace period, declare deadlock.
    fn try_pick(&self, st: &mut ExploreState) {
        if st.holder.is_some() || st.deadlocked {
            return;
        }
        // A halting run makes no further decisions: threads unwinding
        // after a fault must not race parked threads into one more pick,
        // or the recorded trace would grow a nondeterministic tail.
        if self.halt.is_set() {
            return;
        }
        let accounted = st.at_gate.len() + st.blocked.len();
        if accounted < st.alive.len() {
            // Some thread is running between gates; wait for it.
            st.suspect_since = None;
            return;
        }
        if !st.at_gate.is_empty() {
            st.suspect_since = None;
            st.at_gate.sort_by_key(|c| c.tid);
            let idx = st
                .strategy
                .pick(&st.at_gate)
                .min(st.at_gate.len() - 1);
            let picked = st.at_gate.remove(idx);
            st.decisions.push(picked.tid);
            st.holder = Some(picked.tid);
            self.cv.notify_all();
            return;
        }
        if st.alive.is_empty() {
            st.suspect_since = None;
            return;
        }
        // All live threads are blocked. Debounce: a thread may be between
        // "its blocking condition became true" and note_unblocked.
        match st.suspect_since {
            None => st.suspect_since = Some(Instant::now()),
            Some(since) if since.elapsed() >= self.deadlock_grace => {
                st.deadlocked = true;
                self.cv.notify_all();
                self.fire_deadlock();
            }
            Some(_) => {}
        }
    }

    /// Parks the calling thread at a gate until it is handed the turn.
    fn wait_for_turn(&self, tid: Tid, event: Option<EventClass>) -> Result<(), SchedStop> {
        let mut st = self.state.lock();
        // Arriving at a gate releases the turn if we held it.
        if st.holder == Some(tid) {
            st.holder = None;
        }
        if !st.at_gate.iter().any(|c| c.tid == tid) {
            st.at_gate.push(Candidate { tid, event });
        }
        loop {
            self.try_pick(&mut st);
            if st.deadlocked {
                return Err(SchedStop::Deadlock);
            }
            if self.halt.is_set() {
                return Err(SchedStop::Halted);
            }
            if st.holder == Some(tid) {
                return Ok(());
            }
            self.cv.wait_for(&mut st, HALT_TICK);
        }
    }
}

impl Scheduler for ExploreScheduler {
    fn thread_created(&self, tid: Tid) {
        let mut st = self.state.lock();
        st.alive.insert(tid);
        st.suspect_since = None;
    }

    fn thread_exited(&self, tid: Tid) {
        let mut st = self.state.lock();
        st.alive.remove(&tid);
        st.at_gate.retain(|c| c.tid != tid);
        st.blocked.remove(&tid);
        st.waking.remove(&tid);
        if st.holder == Some(tid) {
            st.holder = None;
        }
        self.try_pick(&mut st);
        self.cv.notify_all();
    }

    fn before_event(&self, tid: Tid, _ctr: u64, ev: &EventClass) -> Result<Directive, SchedStop> {
        self.wait_for_turn(tid, Some(*ev))?;
        Ok(Directive::Proceed)
    }

    fn note_blocked(&self, tid: Tid) {
        let mut st = self.state.lock();
        st.blocked.insert(tid);
        if st.holder == Some(tid) {
            st.holder = None;
        }
        self.try_pick(&mut st);
        self.cv.notify_all();
    }

    fn note_wake(&self, woken: &[Tid]) {
        let mut st = self.state.lock();
        for tid in woken {
            if st.blocked.remove(tid) {
                st.waking.insert(*tid);
            }
        }
        st.suspect_since = None;
    }

    fn note_unblocked(&self, tid: Tid) -> Result<(), SchedStop> {
        {
            let mut st = self.state.lock();
            st.blocked.remove(&tid);
            st.waking.remove(&tid);
            st.suspect_since = None;
        }
        self.wait_for_turn(tid, None)
    }
}

// ---------------------------------------------------------------------------
// Controlled (replay) scheduler
// ---------------------------------------------------------------------------

/// What the replay schedule says about one `(thread, counter)` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotAction {
    /// The event occupies position `seq` in the enforced total order.
    Ordered(u32),
    /// The event is a blind write: perform no store, no ordering.
    Suppress,
    /// The event never happened in the original run (e.g. a `wait` that was
    /// never notified): park the thread until the run ends.
    Park,
}

/// A total order over selected events, as computed by the replayer.
///
/// Events absent from `slots` run freely (they are inside non-interleaved
/// runs whose endpoints are ordered, or touch locations with no cross-thread
/// flow dependences), except in *strict* mode (Light's replay), where:
///
/// - an unlisted instrumented **data write** is a blind write and is
///   suppressed (paper Section 4.2), unless its `(thread, counter)` is in
///   the allow-list (an interior write of a recorded non-interleaved run)
///   or its static location is marked free (consistently lock-guarded, O2);
/// - an unlisted **wait-after** is a `wait` that was never notified in the
///   original run: the thread parks.
#[derive(Debug, Clone, Default)]
pub struct ReplaySchedule {
    slots: HashMap<(Tid, u64), SlotAction>,
    ordered_len: u32,
    strict: bool,
    allowed_writes: HashMap<Tid, HashSet<u64>>,
    free_fields: HashSet<u32>,
    free_globals: HashSet<u32>,
    /// Per-thread event frontier of the original run: events with larger
    /// counters never happened (the run faulted/halted first) and must
    /// park rather than overtake the recorded prefix.
    ctr_limits: HashMap<Tid, u64>,
    enforce_extents: bool,
}

impl ReplaySchedule {
    /// Creates an empty schedule (every event runs freely).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables strict replay semantics (blind-write suppression and
    /// wait-after parking for unlisted events).
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Adds an event at the next position in the total order.
    pub fn push_ordered(&mut self, tid: Tid, ctr: u64) {
        let seq = self.ordered_len;
        self.slots.insert((tid, ctr), SlotAction::Ordered(seq));
        self.ordered_len += 1;
    }

    /// Marks an event as a suppressed blind write.
    pub fn suppress(&mut self, tid: Tid, ctr: u64) {
        self.slots.insert((tid, ctr), SlotAction::Suppress);
    }

    /// Marks an event as parked (never occurred in the original run).
    pub fn park(&mut self, tid: Tid, ctr: u64) {
        self.slots.insert((tid, ctr), SlotAction::Park);
    }

    /// Allows the unlisted data write at `(tid, ctr)` to execute (it is an
    /// interior write of a recorded non-interleaved run).
    pub fn allow_write(&mut self, tid: Tid, ctr: u64) {
        self.allowed_writes.entry(tid).or_default().insert(ctr);
    }

    /// Marks a field (by raw `FieldId`) as free: consistently lock-guarded,
    /// so its accesses replay correctly without per-access ordering.
    pub fn free_field(&mut self, field: u32) {
        self.free_fields.insert(field);
    }

    /// Marks a global (by raw `GlobalId`) as free.
    pub fn free_global(&mut self, global: u32) {
        self.free_globals.insert(global);
    }

    /// Sets a thread's recorded event frontier and enables frontier
    /// enforcement: unlisted events beyond the frontier park (they never
    /// happened in the original run). With enforcement on, a thread with
    /// *no* recorded frontier parks at its first event.
    pub fn set_extent(&mut self, tid: Tid, last_ctr: u64) {
        self.ctr_limits.insert(tid, last_ctr);
        self.enforce_extents = true;
    }

    /// The action for an event, if constrained.
    pub fn action(&self, tid: Tid, ctr: u64) -> Option<SlotAction> {
        self.slots.get(&(tid, ctr)).copied()
    }

    /// The enforced total order as `(tid, ctr)` pairs, in slot order.
    /// Used by trace exporters to lay the schedule out on a timeline.
    pub fn ordered_slots(&self) -> Vec<(Tid, u64)> {
        let mut slots: Vec<(u32, Tid, u64)> = self
            .slots
            .iter()
            .filter_map(|(&(tid, ctr), &action)| match action {
                SlotAction::Ordered(seq) => Some((seq, tid, ctr)),
                _ => None,
            })
            .collect();
        slots.sort_unstable_by_key(|&(seq, _, _)| seq);
        slots.into_iter().map(|(_, tid, ctr)| (tid, ctr)).collect()
    }

    /// Number of events in the enforced total order.
    pub fn ordered_len(&self) -> u32 {
        self.ordered_len
    }

    /// Decides what an *unlisted* event does under this schedule.
    fn unlisted_action(&self, tid: Tid, ctr: u64, ev: &EventClass) -> UnlistedAction {
        if self.enforce_extents && ctr > self.ctr_limits.get(&tid).copied().unwrap_or(0) {
            return UnlistedAction::Park;
        }
        if !self.strict {
            return UnlistedAction::Proceed;
        }
        match ev {
            EventClass::Access {
                kind: AccessKind::Write,
                loc,
                guarded,
            } => {
                let free = *guarded
                    || match loc {
                        Loc::Field(_, f) => self.free_fields.contains(&f.0),
                        Loc::Global(g) => self.free_globals.contains(&g.0),
                        _ => false,
                    };
                if free
                    || self
                        .allowed_writes
                        .get(&tid)
                        .is_some_and(|s| s.contains(&ctr))
                {
                    UnlistedAction::Proceed
                } else {
                    UnlistedAction::Suppress
                }
            }
            EventClass::WaitAfter(_) => UnlistedAction::Park,
            _ => UnlistedAction::Proceed,
        }
    }
}

enum UnlistedAction {
    Proceed,
    Suppress,
    Park,
}

struct ControlledState {
    next_seq: u32,
    /// Thread admitted by the previous ordered slot, for counting
    /// enforced context switches.
    last_tid: Option<Tid>,
}

/// Enforces a [`ReplaySchedule`] over the gated events.
pub struct ControlledScheduler {
    halt: HaltFlag,
    schedule: ReplaySchedule,
    state: Mutex<ControlledState>,
    cv: Condvar,
    timeout: Duration,
    stalls: AtomicU64,
    stall_ns: AtomicU64,
    switches: AtomicU64,
    suppressed: AtomicU64,
    parked: AtomicU64,
    flight: Flight,
}

impl ControlledScheduler {
    /// Creates a controlled scheduler enforcing `schedule`. `timeout`
    /// bounds how long one event may wait for its slot before the run is
    /// declared divergent.
    pub fn new(schedule: ReplaySchedule, halt: HaltFlag, timeout: Duration) -> Self {
        Self {
            halt,
            schedule,
            state: Mutex::new(ControlledState {
                next_seq: 0,
                last_tid: None,
            }),
            cv: Condvar::new(),
            timeout,
            stalls: AtomicU64::new(0),
            stall_ns: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            flight: Flight::disabled(),
        }
    }

    /// Attaches a flight-recorder handle; enforcement decisions (ordered
    /// admissions, stalls, suppressions, parks) then emit compact events.
    pub fn with_flight(mut self, flight: Flight) -> Self {
        self.flight = flight;
        self
    }

    /// Snapshot of the enforcement counters accumulated so far.
    pub fn metrics(&self) -> SchedulerMetrics {
        SchedulerMetrics {
            schedule_len: u64::from(self.schedule.ordered_len()),
            context_switches: self.switches.load(Ordering::Relaxed),
            enforcement_stalls: self.stalls.load(Ordering::Relaxed),
            stall_ns: self.stall_ns.load(Ordering::Relaxed),
            suppressed_writes: self.suppressed.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
        }
    }
}

impl Scheduler for ControlledScheduler {
    fn before_event(&self, tid: Tid, ctr: u64, ev: &EventClass) -> Result<Directive, SchedStop> {
        let action = match self.schedule.action(tid, ctr) {
            Some(a) => a,
            None => match self.schedule.unlisted_action(tid, ctr, ev) {
                UnlistedAction::Proceed => return Ok(Directive::Proceed),
                UnlistedAction::Suppress => {
                    let n = self.suppressed.fetch_add(1, Ordering::Relaxed) + 1;
                    self.flight.emit(FlightKind::SpecFail, tid.raw(), NO_SITE, n, ctr);
                    return Ok(Directive::SuppressWrite);
                }
                UnlistedAction::Park => SlotAction::Park,
            },
        };
        match action {
            SlotAction::Suppress => {
                let n = self.suppressed.fetch_add(1, Ordering::Relaxed) + 1;
                self.flight.emit(FlightKind::SpecFail, tid.raw(), NO_SITE, n, ctr);
                Ok(Directive::SuppressWrite)
            }
            SlotAction::Park => {
                // Wait out the rest of the run.
                self.parked.fetch_add(1, Ordering::Relaxed);
                self.flight.emit(FlightKind::SchedPark, tid.raw(), NO_SITE, ctr, 0);
                let mut st = self.state.lock();
                loop {
                    if self.halt.is_set() {
                        return Err(SchedStop::Halted);
                    }
                    self.cv.wait_for(&mut st, HALT_TICK);
                }
            }
            SlotAction::Ordered(seq) => {
                let start = Instant::now();
                let mut st = self.state.lock();
                let mut stalled = false;
                loop {
                    if st.next_seq == seq {
                        if stalled {
                            self.stalls.fetch_add(1, Ordering::Relaxed);
                            let waited = start.elapsed().as_nanos() as u64;
                            self.stall_ns.fetch_add(waited, Ordering::Relaxed);
                            self.flight
                                .emit(FlightKind::SchedStall, tid.raw(), NO_SITE, u64::from(seq), waited);
                        }
                        if st.last_tid != Some(tid) {
                            self.switches.fetch_add(1, Ordering::Relaxed);
                            st.last_tid = Some(tid);
                        }
                        self.flight
                            .emit(FlightKind::SchedDecision, tid.raw(), NO_SITE, u64::from(seq), ctr);
                        return Ok(Directive::Proceed);
                    }
                    stalled = true;
                    if self.halt.is_set() {
                        return Err(SchedStop::Halted);
                    }
                    if start.elapsed() > self.timeout {
                        return Err(SchedStop::Diverged(format!(
                            "event ({tid}, {ctr}) waited for slot {seq} but cursor stuck at {}",
                            st.next_seq
                        )));
                    }
                    self.cv.wait_for(&mut st, HALT_TICK);
                }
            }
        }
    }

    fn after_event(&self, tid: Tid, ctr: u64) {
        if let Some(SlotAction::Ordered(seq)) = self.schedule.action(tid, ctr) {
            let mut st = self.state.lock();
            debug_assert_eq!(st.next_seq, seq, "slots must complete in order");
            st.next_seq = seq + 1;
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn ev() -> EventClass {
        EventClass::ThreadStart
    }

    #[test]
    fn free_scheduler_always_proceeds() {
        let s = FreeScheduler;
        assert_eq!(s.before_event(Tid::ROOT, 1, &ev()), Ok(Directive::Proceed));
    }

    #[test]
    fn controlled_enforces_total_order() {
        let halt = HaltFlag::new();
        let mut sched = ReplaySchedule::new();
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        sched.push_ordered(t1, 1); // slot 0
        sched.push_ordered(t2, 1); // slot 1
        sched.push_ordered(t1, 2); // slot 2
        let s = Arc::new(ControlledScheduler::new(
            sched,
            halt,
            Duration::from_secs(5),
        ));

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (tid, ctrs) in [(t1, vec![1u64, 2]), (t2, vec![1u64])] {
            let s = s.clone();
            let order = order.clone();
            handles.push(thread::spawn(move || {
                for c in ctrs {
                    s.before_event(tid, c, &ev()).unwrap();
                    order.lock().push((tid, c));
                    s.after_event(tid, c);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![(t1, 1), (t2, 1), (t1, 2)]);
        let m = s.metrics();
        assert_eq!(m.schedule_len, 3);
        // t1 -> t2 -> t1: every admission changed the running thread.
        assert_eq!(m.context_switches, 3);
        assert_eq!(m.suppressed_writes, 0);
    }

    #[test]
    fn controlled_counts_suppressed_writes_and_slot_order() {
        let halt = HaltFlag::new();
        let mut sched = ReplaySchedule::new();
        sched.push_ordered(Tid::ROOT, 1);
        sched.suppress(Tid::ROOT, 2);
        assert_eq!(sched.ordered_slots(), vec![(Tid::ROOT, 1)]);
        let s = ControlledScheduler::new(sched, halt, Duration::from_secs(1));
        s.before_event(Tid::ROOT, 1, &ev()).unwrap();
        s.after_event(Tid::ROOT, 1);
        assert_eq!(
            s.before_event(Tid::ROOT, 2, &ev()),
            Ok(Directive::SuppressWrite)
        );
        let m = s.metrics();
        assert_eq!(m.suppressed_writes, 1);
        assert_eq!(m.enforcement_stalls, 0);
        assert_eq!(m.context_switches, 1);
    }

    #[test]
    fn controlled_unconstrained_events_run_freely() {
        let halt = HaltFlag::new();
        let s = ControlledScheduler::new(ReplaySchedule::new(), halt, Duration::from_secs(1));
        assert_eq!(
            s.before_event(Tid::ROOT, 99, &ev()),
            Ok(Directive::Proceed)
        );
    }

    #[test]
    fn controlled_suppresses_blind_writes() {
        let halt = HaltFlag::new();
        let mut sched = ReplaySchedule::new();
        sched.suppress(Tid::ROOT, 3);
        let s = ControlledScheduler::new(sched, halt, Duration::from_secs(1));
        assert_eq!(
            s.before_event(Tid::ROOT, 3, &ev()),
            Ok(Directive::SuppressWrite)
        );
    }

    #[test]
    fn controlled_times_out_on_missing_predecessor() {
        let halt = HaltFlag::new();
        let mut sched = ReplaySchedule::new();
        sched.push_ordered(Tid::ROOT.child(0), 1); // slot 0 never executed
        sched.push_ordered(Tid::ROOT, 1); // slot 1
        let s = ControlledScheduler::new(sched, halt, Duration::from_millis(80));
        match s.before_event(Tid::ROOT, 1, &ev()) {
            Err(SchedStop::Diverged(_)) => {}
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn decision_trace_run_length_encodes() {
        let mut t = DecisionTrace::new();
        let a = Tid::ROOT;
        let b = Tid::ROOT.child(0);
        for tid in [a, a, b, a, a, a] {
            t.push(tid);
        }
        assert_eq!(
            t.segments,
            vec![
                Segment { tid: a, picks: 2 },
                Segment { tid: b, picks: 1 },
                Segment { tid: a, picks: 3 },
            ]
        );
        assert_eq!(t.total_picks(), 6);
        assert_eq!(t.encode().len(), 3 * 16);
    }

    #[test]
    fn scripted_strategy_replays_and_tolerates_gaps() {
        let a = Tid::ROOT;
        let b = Tid::ROOT.child(0);
        let c = Tid::ROOT.child(1);
        let mut trace = DecisionTrace::new();
        for tid in [a, b, b, c, a] {
            trace.push(tid);
        }
        let mut s = ScriptedStrategy::new(&trace);
        let cand = |tids: &[Tid]| -> Vec<Candidate> {
            tids.iter()
                .map(|&tid| Candidate { tid, event: None })
                .collect()
        };
        // Full candidate sets: plays back verbatim.
        assert_eq!(s.pick(&cand(&[a, b, c])), 0); // a
        assert_eq!(s.pick(&cand(&[a, b, c])), 1); // b
        assert_eq!(s.pick(&cand(&[a, b, c])), 1); // b
        // c's segment comes up but c is absent: segment is skipped, the
        // next segment (a) is used instead.
        assert_eq!(s.pick(&cand(&[a, b])), 0); // a
        // Past the end: keep running the last pick (a) while present...
        assert_eq!(s.pick(&cand(&[a, b])), 0);
        // ...and fall back to the lowest tid when it is gone.
        assert_eq!(s.pick(&cand(&[b, c])), 0);
    }

    #[test]
    fn random_walk_is_seed_deterministic() {
        let cands: Vec<Candidate> = [Tid::ROOT, Tid::ROOT.child(0), Tid::ROOT.child(1)]
            .iter()
            .map(|&tid| Candidate { tid, event: None })
            .collect();
        let mut x = RandomWalkStrategy::new(99);
        let mut y = RandomWalkStrategy::new(99);
        let mut z = RandomWalkStrategy::new(100);
        let xs: Vec<usize> = (0..64).map(|_| x.pick(&cands)).collect();
        let ys: Vec<usize> = (0..64).map(|_| y.pick(&cands)).collect();
        let zs: Vec<usize> = (0..64).map(|_| z.pick(&cands)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert!(xs.iter().all(|&i| i < 3));
    }

    #[test]
    fn explore_records_decision_trace() {
        let halt = HaltFlag::new();
        let s = ExploreScheduler::new(7, halt);
        s.thread_created(Tid::ROOT);
        for c in 1..=4 {
            s.before_event(Tid::ROOT, c, &ev()).unwrap();
        }
        s.thread_exited(Tid::ROOT);
        let trace = s.trace();
        // A single thread collapses into one segment of 4 picks.
        assert_eq!(trace.segments.len(), 1);
        assert_eq!(trace.total_picks(), 4);
        assert_eq!(trace.segments[0].tid, Tid::ROOT);
    }

    #[test]
    fn chaos_single_thread_runs_through() {
        let halt = HaltFlag::new();
        let s = ChaosScheduler::new(7, halt);
        s.thread_created(Tid::ROOT);
        for c in 1..=5 {
            assert_eq!(s.before_event(Tid::ROOT, c, &ev()), Ok(Directive::Proceed));
        }
        s.thread_exited(Tid::ROOT);
    }

    #[test]
    fn chaos_serializes_two_threads() {
        let halt = HaltFlag::new();
        let s = Arc::new(ChaosScheduler::new(3, halt));
        s.thread_created(Tid::ROOT);
        s.thread_created(Tid::ROOT.child(0));
        let running = Arc::new(Mutex::new(0i32));
        let max_seen = Arc::new(Mutex::new(0i32));
        let mut handles = Vec::new();
        for tid in [Tid::ROOT, Tid::ROOT.child(0)] {
            let s = s.clone();
            let running = running.clone();
            let max_seen = max_seen.clone();
            handles.push(thread::spawn(move || {
                for c in 1..=20u64 {
                    s.before_event(tid, c, &ev()).unwrap();
                    {
                        let mut r = running.lock();
                        *r += 1;
                        let mut m = max_seen.lock();
                        if *r > *m {
                            *m = *r;
                        }
                    }
                    // Simulate a little work between gates.
                    std::hint::black_box(0);
                    *running.lock() -= 1;
                }
                s.thread_exited(tid);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Gates themselves are serialized: at most one thread inside the
        // critical region right after a gate at a time is not guaranteed
        // (work happens after), but the scheduler must have made progress
        // and never panicked.
        assert!(*max_seen.lock() >= 1);
    }

    #[test]
    fn chaos_detects_deadlock_when_all_blocked() {
        let halt = HaltFlag::new();
        let s = Arc::new(ChaosScheduler::new(1, halt));
        s.thread_created(Tid::ROOT);
        s.thread_created(Tid::ROOT.child(0));
        // Both threads report blocked and then wait to be unblocked; no one
        // ever unblocks them, so the scheduler must declare deadlock for a
        // thread parked at a gate.
        let s1 = s.clone();
        let h = thread::spawn(move || {
            s1.note_blocked(Tid::ROOT.child(0));
            // This thread never unblocks; the other is at a gate.
            thread::sleep(Duration::from_secs(2));
        });
        s.note_blocked(Tid::ROOT);
        let res = s.note_unblocked(Tid::ROOT);
        // ROOT became runnable again, so it must get the turn, not deadlock.
        assert_eq!(res, Ok(()));
        // Now ROOT exits; child stays blocked forever -> after ROOT exits
        // nothing is runnable, but nobody is waiting at a gate either, so
        // no deadlock error needs to be delivered. Just ensure no panic.
        s.thread_exited(Tid::ROOT);
        h.join().unwrap();
    }

    #[test]
    fn chaos_reports_deadlock_to_gated_thread() {
        let halt = HaltFlag::new();
        let s = Arc::new(ChaosScheduler::new(1, halt));
        let t1 = Tid::ROOT;
        let t2 = Tid::ROOT.child(0);
        s.thread_created(t1);
        s.thread_created(t2);
        // t2 blocks forever.
        s.note_blocked(t2);
        // t1 parks at a gate; with t2 blocked and t1 at gate, t1 gets the
        // turn. Then t1 blocks too -> everyone blocked -> deadlock is
        // declared after the grace period, delivered to whoever waits.
        assert_eq!(s.before_event(t1, 1, &ev()), Ok(Directive::Proceed));
        s.note_blocked(t1);
        let res = s.note_unblocked_deadlock_probe(t1);
        assert_eq!(res, Err(SchedStop::Deadlock));
    }

    impl ChaosScheduler {
        /// Test helper: like `note_unblocked` but expects failure quickly.
        fn note_unblocked_deadlock_probe(&self, tid: Tid) -> Result<(), SchedStop> {
            // Re-block immediately so the "all blocked" condition holds
            // while we wait at the gate as an un-runnable... actually just
            // keep tid blocked and wait at the gate directly.
            let _ = tid;
            let start = Instant::now();
            loop {
                {
                    let mut st = self.state.lock();
                    self.try_pick(&mut st);
                    if st.deadlocked {
                        return Err(SchedStop::Deadlock);
                    }
                }
                if start.elapsed() > Duration::from_secs(3) {
                    return Ok(());
                }
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
}
