//! Instrumentation hooks: the interface between the interpreter and a
//! record/replay technique.
//!
//! The interpreter assigns every instrumented event a thread-local counter
//! value (the `D(t)` counters of Algorithm 1) and routes the event to a
//! [`Recorder`]. Data accesses are routed through [`Recorder::on_access`],
//! which *wraps* the actual memory operation so the technique can establish
//! whatever atomicity it needs (Light's `atomic { o.f = v; lw ← c }`
//! blocks, Leap's synchronized access vectors, ...).

use crate::heap::Loc;
use crate::thread_id::Tid;
use crate::value::ObjId;
use lir::InstrId;
use std::sync::atomic::{AtomicU64, Ordering};

/// How an instrumented data access touches its location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A pure load.
    Read,
    /// A pure store (a candidate *blind write* if it ends up in no flow
    /// dependence).
    Write,
    /// An atomic read-modify-write (map mutation, monitor ghost accesses).
    /// Never treated as blind.
    ReadWrite,
}

impl AccessKind {
    /// Whether the access observes the previous value of the location.
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::ReadWrite)
    }

    /// Whether the access updates the location.
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::ReadWrite)
    }
}

/// A synchronization event, already ordered correctly with respect to the
/// underlying primitive (monitor events fire while the monitor is held,
/// `Join` fires after the child has finished, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    MonitorEnter { obj: ObjId },
    MonitorExit { obj: ObjId },
    /// `wait` is modeled as two operations (Section 4.3): this one releases
    /// the monitor...
    WaitBefore { obj: ObjId },
    /// ...and this one reacquires it. `notifier` identifies the `Notify`
    /// event `(thread, counter)` that woke the waiter, when known.
    WaitAfter {
        obj: ObjId,
        notifier: Option<(Tid, u64)>,
    },
    Notify { obj: ObjId, all: bool },
    /// The parent's side of thread creation.
    Spawn { child: Tid },
    /// The child's first event. `parent` is `(thread, counter)` of the
    /// corresponding `Spawn`, or `None` for the root thread.
    ThreadStart { parent: Option<(Tid, u64)> },
    /// The parent's side of `join`; `child_end` is the counter of the
    /// child's `ThreadEnd` event.
    Join { child: Tid, child_end: u64 },
    /// The last event of every thread.
    ThreadEnd,
}

/// A record/replay technique's view of an execution.
///
/// Implementations must be thread-safe: methods are called concurrently
/// from every LIR thread. All methods receive the event's thread and its
/// thread-local counter value (counters start at 1 and increment at every
/// instrumented event of that thread).
pub trait Recorder: Send + Sync {
    /// Wraps an instrumented data access. `op` performs the actual memory
    /// operation and yields the raw value read (for reads) or stored (for
    /// writes); it may be invoked more than once only for idempotent
    /// [`AccessKind::Read`] accesses (speculative retry), and must be
    /// invoked exactly once otherwise. The implementation must return the
    /// result of the final `op` call.
    #[allow(clippy::too_many_arguments)]
    fn on_access(
        &self,
        tid: Tid,
        ctr: u64,
        loc: Loc,
        kind: AccessKind,
        guarded: bool,
        instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64;

    /// Observes a synchronization event.
    fn on_sync(&self, tid: Tid, ctr: u64, ev: SyncEvent, instr: InstrId);

    /// Records the result of a nondeterministic intrinsic (`time`, `rand`).
    fn on_nondet(&self, tid: Tid, value: i64);

    /// Called once when a thread finishes, after its `ThreadEnd` event.
    /// Implementations typically flush thread-local buffers here.
    fn on_thread_exit(&self, tid: Tid) {
        let _ = tid;
    }
}

/// A recorder that records nothing: the uninstrumented baseline for
/// overhead measurements.
#[derive(Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn on_access(
        &self,
        _tid: Tid,
        _ctr: u64,
        _loc: Loc,
        _kind: AccessKind,
        _guarded: bool,
        _instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        op()
    }

    fn on_sync(&self, _tid: Tid, _ctr: u64, _ev: SyncEvent, _instr: InstrId) {}

    fn on_nondet(&self, _tid: Tid, _value: i64) {}
}

/// A recorder that counts events; useful in tests and as a cheap
/// event-density probe for workload calibration.
#[derive(Debug, Default)]
pub struct CountingRecorder {
    reads: AtomicU64,
    writes: AtomicU64,
    rmws: AtomicU64,
    syncs: AtomicU64,
    nondets: AtomicU64,
}

impl CountingRecorder {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Instrumented pure reads observed.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Instrumented pure writes observed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Instrumented read-modify-writes observed.
    pub fn rmws(&self) -> u64 {
        self.rmws.load(Ordering::Relaxed)
    }

    /// Synchronization events observed.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }

    /// Nondeterministic intrinsic results observed.
    pub fn nondets(&self) -> u64 {
        self.nondets.load(Ordering::Relaxed)
    }

    /// Total instrumented events.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes() + self.rmws() + self.syncs()
    }
}

impl Recorder for CountingRecorder {
    fn on_access(
        &self,
        _tid: Tid,
        _ctr: u64,
        _loc: Loc,
        kind: AccessKind,
        _guarded: bool,
        _instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        let counter = match kind {
            AccessKind::Read => &self.reads,
            AccessKind::Write => &self.writes,
            AccessKind::ReadWrite => &self.rmws,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        op()
    }

    fn on_sync(&self, _tid: Tid, _ctr: u64, _ev: SyncEvent, _instr: InstrId) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    fn on_nondet(&self, _tid: Tid, _value: i64) {
        self.nondets.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::{BlockId, FieldId, FuncId, GlobalId};

    fn dummy_instr() -> InstrId {
        InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        }
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.reads() && !AccessKind::Read.writes());
        assert!(!AccessKind::Write.reads() && AccessKind::Write.writes());
        assert!(AccessKind::ReadWrite.reads() && AccessKind::ReadWrite.writes());
    }

    #[test]
    fn null_recorder_passes_through() {
        let r = NullRecorder;
        let mut op = || 42u64;
        let out = r.on_access(
            Tid::ROOT,
            1,
            Loc::Global(GlobalId(0)),
            AccessKind::Read,
            false,
            dummy_instr(),
            &mut op,
        );
        assert_eq!(out, 42);
    }

    #[test]
    fn counting_recorder_counts() {
        let r = CountingRecorder::new();
        let loc = Loc::Field(crate::value::ObjId(0), FieldId(0));
        let mut op = || 0u64;
        r.on_access(Tid::ROOT, 1, loc, AccessKind::Read, false, dummy_instr(), &mut op);
        r.on_access(Tid::ROOT, 2, loc, AccessKind::Write, false, dummy_instr(), &mut op);
        r.on_access(
            Tid::ROOT,
            3,
            loc,
            AccessKind::ReadWrite,
            false,
            dummy_instr(),
            &mut op,
        );
        r.on_sync(
            Tid::ROOT,
            4,
            SyncEvent::ThreadEnd,
            dummy_instr(),
        );
        r.on_nondet(Tid::ROOT, 7);
        assert_eq!(r.reads(), 1);
        assert_eq!(r.writes(), 1);
        assert_eq!(r.rmws(), 1);
        assert_eq!(r.syncs(), 1);
        assert_eq!(r.nondets(), 1);
        assert_eq!(r.total(), 4);
    }
}
