//! Fault reports: the "bugs of interest" of Definition 3.2, plus
//! infrastructure faults.

use crate::thread_id::Tid;
use crate::value::Value;
use lir::InstrId;
use std::fmt;

/// Classification of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Field/array/map access or monitor operation on `null` or a non-ref.
    NullDeref,
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array index outside bounds.
    IndexOutOfBounds,
    /// `assert(e)` with falsy `e`.
    AssertFailed,
    /// `wait`/`notify`/`monitor_exit` without owning the monitor, or
    /// `join` on a non-thread value.
    MonitorMisuse,
    /// All live threads are blocked (chaos/controlled scheduling detects
    /// this deterministically).
    Deadlock,
    /// Dynamic type mismatch, e.g. arithmetic on a reference.
    TypeError,
    /// Call stack exceeded the configured depth.
    StackOverflow,
    /// The configured execution step budget was exhausted.
    StepLimit,
    /// The configured wall-clock budget was exhausted (watchdog). Under
    /// free scheduling this is also how genuine deadlocks surface.
    Timeout,
    /// A replay run could not follow its schedule (gate timeout or a
    /// scripted nondeterministic value ran out). Indicates an infrastructure
    /// problem, never expected when Theorem 1's preconditions hold.
    ReplayDiverged,
}

impl FaultKind {
    /// Whether this fault is a *program* bug in the sense of Definition 3.2
    /// (use of an illegal value) or a deadlock, as opposed to an
    /// infrastructure limit.
    pub fn is_program_bug(self) -> bool {
        matches!(
            self,
            FaultKind::NullDeref
                | FaultKind::DivByZero
                | FaultKind::IndexOutOfBounds
                | FaultKind::AssertFailed
                | FaultKind::MonitorMisuse
                | FaultKind::TypeError
                | FaultKind::Deadlock
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::NullDeref => "null dereference",
            FaultKind::DivByZero => "division by zero",
            FaultKind::IndexOutOfBounds => "index out of bounds",
            FaultKind::AssertFailed => "assertion failed",
            FaultKind::MonitorMisuse => "monitor misuse",
            FaultKind::Deadlock => "deadlock",
            FaultKind::TypeError => "type error",
            FaultKind::StackOverflow => "stack overflow",
            FaultKind::StepLimit => "step limit exceeded",
            FaultKind::Timeout => "wall-clock timeout",
            FaultKind::ReplayDiverged => "replay diverged",
        };
        f.write_str(s)
    }
}

/// A fault observed during execution, with the correlation data Theorem 1
/// speaks about: the thread, its local event counter, the faulting
/// statement, and the illegal value used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    pub tid: Tid,
    /// The thread-local instrumentation counter at the time of the fault.
    pub ctr: u64,
    /// The faulting static instruction.
    pub instr: InstrId,
    /// 1-based source line (0 if unknown).
    pub line: u32,
    pub kind: FaultKind,
    /// The illegal value whose use caused the fault (e.g. the `null` that
    /// was dereferenced, the zero divisor). [`Value::NULL`] when
    /// inapplicable.
    pub value: Value,
    /// Free-form diagnostic detail.
    pub detail: String,
}

impl FaultReport {
    /// Theorem 1's replay criterion: the replay fault is *correlated* with
    /// the original fault — same thread, same thread-local counter, same
    /// statement, same kind, same illegal value.
    pub fn correlates_with(&self, other: &FaultReport) -> bool {
        self.tid == other.tid
            && self.ctr == other.ctr
            && self.instr == other.instr
            && self.kind == other.kind
            && self.value == other.value
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} at {} (line {}, counter {}): {} [value {}]",
            self.kind, self.tid, self.instr, self.line, self.ctr, self.detail, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lir::{BlockId, FuncId};

    fn report(ctr: u64, value: Value) -> FaultReport {
        FaultReport {
            tid: Tid::ROOT.child(0),
            ctr,
            instr: InstrId {
                func: FuncId(0),
                block: BlockId(0),
                idx: 3,
            },
            line: 12,
            kind: FaultKind::NullDeref,
            value,
            detail: "x.f with x null".into(),
        }
    }

    #[test]
    fn correlation_requires_all_fields() {
        let a = report(5, Value::NULL);
        assert!(a.correlates_with(&report(5, Value::NULL)));
        assert!(!a.correlates_with(&report(6, Value::NULL)));
        assert!(!a.correlates_with(&report(5, Value::int(0))));
    }

    #[test]
    fn program_bug_classification() {
        assert!(FaultKind::NullDeref.is_program_bug());
        assert!(FaultKind::Deadlock.is_program_bug());
        assert!(!FaultKind::StepLimit.is_program_bug());
        assert!(!FaultKind::ReplayDiverged.is_program_bug());
    }

    #[test]
    fn display_is_informative() {
        let text = report(5, Value::NULL).to_string();
        assert!(text.contains("null dereference"));
        assert!(text.contains("counter 5"));
    }
}
