//! End-to-end interpreter tests: language semantics, faults, concurrency
//! primitives, schedulers and instrumentation.

use light_runtime::{
    run, CountingRecorder, ExecConfig, FaultKind, NondetMode, RunOutcome, SchedulerSpec,
    SharedPolicy, Tid,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn exec(src: &str, args: &[i64]) -> RunOutcome {
    let program = Arc::new(lir::parse(src).expect("parse"));
    run(&program, args, ExecConfig::default()).expect("setup")
}

fn exec_with(src: &str, args: &[i64], config: ExecConfig) -> RunOutcome {
    let program = Arc::new(lir::parse(src).expect("parse"));
    run(&program, args, config).expect("setup")
}

#[test]
fn arithmetic_and_loops() {
    let out = exec(
        "global acc;
         fn main(n) {
             let i = 1;
             while (i <= n) {
                 acc = acc + i;
                 i = i + 1;
             }
             assert(acc == n * (n + 1) / 2);
         }",
        &[100],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn recursion_fibonacci() {
    let out = exec(
        "fn fib(n) {
             if (n < 2) { return n; }
             return fib(n - 1) + fib(n - 2);
         }
         fn main() { assert(fib(15) == 610); }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn objects_and_fields() {
    let out = exec(
        "class Point { field x; field y; }
         fn main() {
             let p = new Point();
             p.x = 3;
             p.y = 4;
             assert(p.x * p.x + p.y * p.y == 25);
         }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn arrays_and_len() {
    let out = exec(
        "fn main() {
             let a = new [5];
             let i = 0;
             while (i < len(a)) {
                 a[i] = i * i;
                 i = i + 1;
             }
             assert(a[4] == 16);
             assert(len(a) == 5);
         }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn map_intrinsics() {
    let out = exec(
        "fn main() {
             let m = map_new();
             let old = map_put(m, 1, 100);
             assert(old == null);
             assert(map_get(m, 1) == 100);
             assert(map_contains(m, 1) == 1);
             assert(map_contains(m, 2) == 0);
             assert(map_size(m) == 1);
             assert(map_remove(m, 1) == 100);
             assert(map_size(m) == 0);
             assert(map_get(m, 1) == null);
         }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn hash_is_deterministic() {
    let out = exec(
        "fn main() { assert(hash(42) == hash(42)); assert(hash(1) != hash(2)); }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn short_circuit_avoids_null_deref() {
    let out = exec(
        "class C { field v; }
         fn main() {
             let c = null;
             if (c != null && c.v == 1) {
                 assert(false);
             }
         }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn null_deref_faults_with_value() {
    let out = exec(
        "class C { field v; }
         fn main() { let c = null; let x = c.v; }",
        &[],
    );
    let fault = out.fault.expect("must fault");
    assert_eq!(fault.kind, FaultKind::NullDeref);
    assert!(fault.value.is_null());
    assert_eq!(fault.tid, Tid::ROOT);
}

#[test]
fn div_by_zero_faults() {
    let out = exec("fn main(d) { let x = 10 / d; }", &[0]);
    assert_eq!(out.fault.expect("must fault").kind, FaultKind::DivByZero);
}

#[test]
fn index_out_of_bounds_faults() {
    let out = exec("fn main() { let a = new [3]; a[3] = 1; }", &[]);
    let fault = out.fault.expect("must fault");
    assert_eq!(fault.kind, FaultKind::IndexOutOfBounds);
    assert_eq!(fault.value.as_int(), Some(3));
}

#[test]
fn assert_failure_faults() {
    let out = exec("fn main(x) { assert(x > 10); }", &[5]);
    assert_eq!(out.fault.expect("must fault").kind, FaultKind::AssertFailed);
}

#[test]
fn stack_overflow_faults() {
    let out = exec("fn f() { f(); } fn main() { f(); }", &[]);
    assert_eq!(
        out.fault.expect("must fault").kind,
        FaultKind::StackOverflow
    );
}

#[test]
fn step_limit_faults() {
    let config = ExecConfig {
        step_limit: 10_000,
        ..ExecConfig::default()
    };
    let out = exec_with("fn main() { while (true) { } }", &[], config);
    assert_eq!(out.fault.expect("must fault").kind, FaultKind::StepLimit);
}

#[test]
fn spawn_join_produces_sum() {
    let out = exec(
        "global total;
         global lock;
         class L { field pad; }
         fn worker(n) {
             let i = 0;
             while (i < n) {
                 sync (lock) { total = total + 1; }
                 i = i + 1;
             }
         }
         fn main(n) {
             lock = new L();
             let t1 = spawn worker(n);
             let t2 = spawn worker(n);
             let t3 = spawn worker(n);
             join t1;
             join t2;
             join t3;
             assert(total == 3 * n);
         }",
        &[200],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
    assert_eq!(out.stats.threads, 4);
}

#[test]
fn wait_notify_ping_pong() {
    let out = exec(
        "global state;
         global mon;
         class M { field pad; }
         fn consumer() {
             sync (mon) {
                 while (state == 0) { wait(mon); }
                 state = 2;
                 notify_all(mon);
             }
         }
         fn main() {
             mon = new M();
             state = 0;
             let t = spawn consumer();
             sync (mon) {
                 state = 1;
                 notify(mon);
             }
             sync (mon) {
                 while (state != 2) { wait(mon); }
             }
             join t;
             assert(state == 2);
         }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn wait_without_monitor_is_misuse() {
    let out = exec(
        "global mon; class M { field pad; }
         fn main() { mon = new M(); wait(mon); }",
        &[],
    );
    assert_eq!(
        out.fault.expect("must fault").kind,
        FaultKind::MonitorMisuse
    );
}

#[test]
fn chaos_scheduler_is_deterministic_per_seed() {
    let src = "global x;
         fn racer(v) { x = v; }
         fn main() {
             let t1 = spawn racer(1);
             let t2 = spawn racer(2);
             join t1;
             join t2;
             print(x);
         }";
    let run_once = |seed: u64| {
        let config = ExecConfig {
            scheduler: SchedulerSpec::Chaos { seed },
            ..ExecConfig::default()
        };
        exec_with(src, &[], config).prints
    };
    for seed in 0..6 {
        assert_eq!(run_once(seed), run_once(seed), "seed {seed} not stable");
    }
    // Distinct seeds usually disagree, but no interleaving outcome is
    // guaranteed on every host, so observe exploration rather than assert.
    let all: Vec<_> = (0..6).map(run_once).collect();
    if all.windows(2).all(|w| w[0] == w[1]) {
        eprintln!("note: chaos seeds 0..6 all agreed; exploration not observed");
    }
}

#[test]
fn chaos_detects_deadlock() {
    let src = "global a; global b; global sync_flag;
         class L { field pad; }
         fn left() {
             sync (a) {
                 sync_flag = sync_flag + 1;
                 sync (b) { }
             }
         }
         fn right() {
             sync (b) {
                 sync_flag = sync_flag + 1;
                 sync (a) { }
             }
         }
         fn main() {
             a = new L();
             b = new L();
             let t1 = spawn left();
             let t2 = spawn right();
             join t1;
             join t2;
         }";
    // Some seed must order the two monitor acquisitions into a deadlock.
    let mut saw_deadlock = false;
    for seed in 0..40 {
        let config = ExecConfig {
            scheduler: SchedulerSpec::Chaos { seed },
            wall_timeout: Duration::from_secs(30),
            ..ExecConfig::default()
        };
        let out = exec_with(src, &[], config);
        if let Some(f) = &out.fault {
            assert_eq!(f.kind, FaultKind::Deadlock, "unexpected fault {f}");
            saw_deadlock = true;
            break;
        }
    }
    assert!(saw_deadlock, "no seed exposed the deadlock");
}

#[test]
fn counting_recorder_sees_shared_accesses() {
    let recorder = Arc::new(CountingRecorder::new());
    let config = ExecConfig {
        recorder: recorder.clone(),
        ..ExecConfig::default()
    };
    let out = exec_with(
        "global g;
         fn main() {
             g = 1;          // write
             let a = g;      // read
             let b = g;      // read
         }",
        &[],
        config,
    );
    assert!(out.completed());
    assert_eq!(recorder.writes(), 1);
    assert_eq!(recorder.reads(), 2);
    // ThreadStart + ThreadEnd for the root thread.
    assert_eq!(recorder.syncs(), 2);
}

#[test]
fn policy_can_exclude_locations() {
    let recorder = Arc::new(CountingRecorder::new());
    let config = ExecConfig {
        recorder: recorder.clone(),
        policy: SharedPolicy::Analyzed {
            shared_fields: vec![],
            shared_globals: vec![false],
            shared_allocs: Default::default(),
            guarded_allocs: Default::default(),
        },
        ..ExecConfig::default()
    };
    let out = exec_with(
        "global g; fn main() { g = 1; let a = g; }",
        &[],
        config,
    );
    assert!(out.completed());
    assert_eq!(recorder.reads() + recorder.writes(), 0);
}

#[test]
fn scripted_nondet_replays_values() {
    let src = "fn main() {
        let a = time();
        let b = rand(100);
        assert(a == 111);
        assert(b == 42);
    }";
    let mut scripted = HashMap::new();
    scripted.insert(Tid::ROOT, vec![111, 42]);
    let config = ExecConfig {
        nondet: NondetMode::Scripted(scripted),
        ..ExecConfig::default()
    };
    let out = exec_with(src, &[], config);
    assert!(out.completed(), "fault: {:?}", out.fault);
}

#[test]
fn scripted_nondet_exhaustion_is_divergence() {
    let config = ExecConfig {
        nondet: NondetMode::Scripted(HashMap::new()),
        ..ExecConfig::default()
    };
    let out = exec_with("fn main() { let a = time(); }", &[], config);
    assert_eq!(
        out.fault.expect("must fault").kind,
        FaultKind::ReplayDiverged
    );
}

#[test]
fn prints_are_captured() {
    let out = exec(
        "fn main() { print(7); print(null); let a = new [1]; print(a); }",
        &[],
    );
    assert!(out.completed());
    assert_eq!(out.prints.len(), 3);
    assert_eq!(out.prints[0], "7");
    assert_eq!(out.prints[1], "null");
}

#[test]
fn setup_errors_are_reported() {
    let program = Arc::new(lir::parse("fn helper() {}").unwrap());
    assert!(run(&program, &[], ExecConfig::default()).is_err());
    let program = Arc::new(lir::parse("fn main(a, b) {}").unwrap());
    assert!(run(&program, &[1], ExecConfig::default()).is_err());
}

#[test]
fn fault_in_child_thread_halts_run() {
    let out = exec(
        "class C { field v; }
         fn bad() { let c = null; let x = c.v; }
         fn main() {
             let t = spawn bad();
             join t;
         }",
        &[],
    );
    let fault = out.fault.expect("must fault");
    assert_eq!(fault.kind, FaultKind::NullDeref);
    assert_eq!(fault.tid, Tid::ROOT.child(0));
}

#[test]
fn racy_counter_under_free_scheduling_runs() {
    // Unsynchronized increments may lose updates; the run must still
    // complete without faulting.
    let out = exec(
        "global total;
         fn worker(n) {
             let i = 0;
             while (i < n) { total = total + 1; i = i + 1; }
         }
         fn main(n) {
             let t1 = spawn worker(n);
             let t2 = spawn worker(n);
             join t1;
             join t2;
             assert(total <= 2 * n);
             assert(total >= n);
         }",
        &[500],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
    assert!(out.stats.events > 1000);
}

#[test]
fn nested_sync_blocks_are_reentrant() {
    let out = exec(
        "global m; global v; class L { field pad; }
         fn main() {
             m = new L();
             sync (m) {
                 sync (m) {
                     v = 42;
                 }
             }
             assert(v == 42);
         }",
        &[],
    );
    assert!(out.completed(), "fault: {:?}", out.fault);
}
