//! Lockset analysis: which locations are *consistently guarded* by a
//! common lock.
//!
//! This backs the paper's O2 optimization (Lemma 4.2): if every access to a
//! location happens under one common lock, the recorded lock-operation
//! orders subsume the location's flow dependences, so Light's recorder can
//! skip them. The analysis is conservative — when the guarding lock cannot
//! be identified statically, the optimization is disabled for that
//! location, exactly as the paper describes.

use lir::{FieldId, FuncId, GlobalId, Instr, InstrId, Operand, Program, Reg, Terminator};
use std::collections::{BTreeSet, HashMap};

/// A static lock identity.
///
/// Only monitors read from a write-once global have a stable identity
/// across the whole program; everything else is [`LockAbs::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockAbs {
    /// `sync (g) { .. }` where global `g` is initialized exactly once.
    Global(GlobalId),
    /// A lock received as the `i`-th parameter (resolved through call
    /// sites).
    Param(u32),
    /// Statically unidentifiable.
    Unknown,
}

type LockSet = BTreeSet<LockAbs>;

/// Result: per field/global, the common guarding lock, if any.
#[derive(Debug, Clone, Default)]
pub struct GuardedLocations {
    pub fields: HashMap<FieldId, GlobalId>,
    pub globals: HashMap<GlobalId, GlobalId>,
    /// Must-hold sets at every heap access, used by the race-pair analysis.
    pub held_at: HashMap<InstrId, LockSet>,
}

impl GuardedLocations {
    /// Whether accesses to `field` are consistently guarded.
    pub fn field_guarded(&self, field: FieldId) -> bool {
        self.fields.contains_key(&field)
    }

    /// Whether accesses to `global` are consistently guarded.
    pub fn global_guarded(&self, global: GlobalId) -> bool {
        self.globals.contains_key(&global)
    }
}

/// Runs the lockset analysis over the whole program.
pub fn guarded_locations(program: &Program) -> GuardedLocations {
    // Identify write-once globals: stable lock identities.
    let mut global_writes = vec![0usize; program.globals.len()];
    for func in &program.funcs {
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Instr::SetGlobal { global, .. } = instr {
                    global_writes[global.index()] += 1;
                }
            }
        }
    }
    let stable_global = |g: GlobalId| global_writes[g.index()] == 1;

    // Per-function register abstraction (flow-insensitive, single-def
    // chains through moves).
    let reg_abs: Vec<HashMap<Reg, LockAbs>> = program
        .funcs
        .iter()
        .map(|f| resolve_regs(f, &stable_global))
        .collect();

    // Interprocedural fixpoint on function entry-held sets.
    // None = not yet observed at any call site (top).
    let mut entry_held: Vec<Option<LockSet>> = vec![None; program.funcs.len()];
    if let Some(entry) = program.entry {
        entry_held[entry.index()] = Some(LockSet::new());
    }
    // Spawned functions start with nothing held.
    for func in &program.funcs {
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Instr::Spawn { func: callee, .. } = instr {
                    meet_into(&mut entry_held[callee.index()], &LockSet::new());
                }
            }
        }
    }

    let mut held_at: HashMap<InstrId, LockSet> = HashMap::new();
    loop {
        let mut changed = false;
        held_at.clear();
        for (f, func) in program.funcs.iter().enumerate() {
            let Some(start) = entry_held[f].clone() else {
                continue; // never called
            };
            let per_block = block_dataflow(func, &reg_abs[f], &start);
            // Record held sets at accesses and propagate to callees.
            for (b, block) in func.blocks.iter().enumerate() {
                let mut held = per_block[b].clone();
                let Some(ref mut held) = held else { continue };
                for (i, instr) in block.instrs.iter().enumerate() {
                    let iid = InstrId {
                        func: FuncId(f as u32),
                        block: lir::BlockId(b as u32),
                        idx: i as u32,
                    };
                    if matches!(
                        instr,
                        Instr::GetField { .. }
                            | Instr::SetField { .. }
                            | Instr::GetGlobal { .. }
                            | Instr::SetGlobal { .. }
                            | Instr::GetElem { .. }
                            | Instr::SetElem { .. }
                            | Instr::Intrinsic { .. }
                    ) {
                        held_at.insert(iid, held.clone());
                    }
                    transfer(instr, &reg_abs[f], held);
                    if let Instr::Call {
                        func: callee, args, ..
                    } = instr
                    {
                        let translated = translate(held, args);
                        if meet_into(&mut entry_held[callee.index()], &translated) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Verdicts: a location is guarded iff the intersection of held sets
    // over all its accesses contains a stable Global lock. Pre-spawn
    // initialization accesses happen-before every thread and cannot race,
    // so they do not defeat guarding (Lemma 4.2 only needs race freedom).
    let pre_spawn = crate::prespawn::pre_spawn_instrs(program);
    let mut field_sets: HashMap<FieldId, Option<LockSet>> = HashMap::new();
    let mut global_sets: HashMap<GlobalId, Option<LockSet>> = HashMap::new();
    for (f, func) in program.funcs.iter().enumerate() {
        for (iid, instr) in func.instr_ids(FuncId(f as u32)) {
            if pre_spawn.contains(&iid) {
                continue;
            }
            let held = held_at.get(&iid).cloned().unwrap_or_default();
            match instr {
                Instr::GetField { field, .. } | Instr::SetField { field, .. } => {
                    meet_verdict(field_sets.entry(*field).or_insert(None), &held);
                }
                Instr::GetGlobal { global, .. } | Instr::SetGlobal { global, .. } => {
                    meet_verdict(global_sets.entry(*global).or_insert(None), &held);
                }
                _ => {}
            }
        }
    }

    let pick = |set: &Option<LockSet>| -> Option<GlobalId> {
        set.as_ref().and_then(|s| {
            s.iter().find_map(|l| match l {
                LockAbs::Global(g) => Some(*g),
                _ => None,
            })
        })
    };

    GuardedLocations {
        fields: field_sets
            .iter()
            .filter_map(|(&f, s)| pick(s).map(|g| (f, g)))
            .collect(),
        globals: global_sets
            .iter()
            .filter_map(|(&gl, s)| pick(s).map(|g| (gl, g)))
            .collect(),
        held_at,
    }
}

fn meet_verdict(slot: &mut Option<LockSet>, held: &LockSet) {
    match slot {
        None => *slot = Some(held.clone()),
        Some(s) => {
            *s = s.intersection(held).copied().collect();
        }
    }
}

fn meet_into(slot: &mut Option<LockSet>, incoming: &LockSet) -> bool {
    match slot {
        None => {
            *slot = Some(incoming.clone());
            true
        }
        Some(s) => {
            let met: LockSet = s.intersection(incoming).copied().collect();
            if met != *s {
                *s = met;
                true
            } else {
                false
            }
        }
    }
}

/// Translates a caller-side held set into callee terms for a call with
/// `args`: globals pass through, a caller lock passed as argument `i`
/// becomes `Param(i)`.
fn translate(held: &LockSet, args: &[Operand]) -> LockSet {
    let mut out = LockSet::new();
    for lock in held {
        match lock {
            LockAbs::Global(g) => {
                out.insert(LockAbs::Global(*g));
            }
            LockAbs::Param(_) | LockAbs::Unknown => {
                // A caller param lock is also visible in the callee if the
                // same value is passed along — handled below via args.
            }
        }
    }
    // Any argument that *is* a held lock becomes a Param lock in the
    // callee... this requires knowing the abstraction of each arg, which we
    // skip for simplicity: Global locks passed as arguments are still
    // visible through the Global abstraction inside the callee.
    let _ = args;
    out
}

/// Resolves each register of `func` to a lock abstraction, when it has a
/// single reaching definition chain.
fn resolve_regs(
    func: &lir::ir::Func,
    stable_global: &impl Fn(GlobalId) -> bool,
) -> HashMap<Reg, LockAbs> {
    // Count definitions per register.
    let mut defs: HashMap<Reg, Vec<&Instr>> = HashMap::new();
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                defs.entry(d).or_default().push(instr);
            }
        }
    }
    let mut cache: HashMap<Reg, LockAbs> = HashMap::new();
    for reg in 0..func.nregs {
        let r = Reg(reg);
        let abs = resolve_one(r, func.params, &defs, stable_global, 0);
        cache.insert(r, abs);
    }
    cache
}

fn resolve_one(
    r: Reg,
    params: u32,
    defs: &HashMap<Reg, Vec<&Instr>>,
    stable_global: &impl Fn(GlobalId) -> bool,
    depth: usize,
) -> LockAbs {
    if depth > 8 {
        return LockAbs::Unknown;
    }
    match defs.get(&r).map(Vec::as_slice) {
        None => {
            if r.0 < params {
                LockAbs::Param(r.0)
            } else {
                LockAbs::Unknown
            }
        }
        Some([single]) => match single {
            Instr::GetGlobal { global, .. } if stable_global(*global) => LockAbs::Global(*global),
            Instr::Move {
                src: Operand::Reg(src),
                ..
            } => resolve_one(*src, params, defs, stable_global, depth + 1),
            _ => LockAbs::Unknown,
        },
        Some(_) => LockAbs::Unknown,
    }
}

/// Forward must-hold dataflow over the blocks of one function. Returns the
/// held set at each block *entry* (`None` = unreachable).
fn block_dataflow(
    func: &lir::ir::Func,
    reg_abs: &HashMap<Reg, LockAbs>,
    start: &LockSet,
) -> Vec<Option<LockSet>> {
    let n = func.blocks.len();
    let mut state: Vec<Option<LockSet>> = vec![None; n];
    state[0] = Some(start.clone());
    let mut work: Vec<usize> = vec![0];
    while let Some(b) = work.pop() {
        let Some(mut held) = state[b].clone() else {
            continue;
        };
        let block = &func.blocks[b];
        for instr in &block.instrs {
            transfer(instr, reg_abs, &mut held);
        }
        let succs: Vec<usize> = match block.term {
            Terminator::Jump(t) => vec![t.index()],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb.index(), else_bb.index()],
            Terminator::Ret(_) => vec![],
        };
        for s in succs {
            let before = state[s].clone();
            meet_into(&mut state[s], &held);
            if state[s] != before {
                work.push(s);
            }
        }
    }
    state
}

fn transfer(instr: &Instr, reg_abs: &HashMap<Reg, LockAbs>, held: &mut LockSet) {
    let abs_of = |op: &Operand| -> LockAbs {
        match op {
            Operand::Reg(r) => reg_abs.get(r).copied().unwrap_or(LockAbs::Unknown),
            _ => LockAbs::Unknown,
        }
    };
    match instr {
        Instr::MonitorEnter { obj } => match abs_of(obj) {
            LockAbs::Unknown => {}
            abs => {
                held.insert(abs);
            }
        },
        Instr::MonitorExit { obj } | Instr::Wait { obj } => match abs_of(obj) {
            // An unknown monitor exit may release anything we think we
            // hold; `wait` releases its monitor while blocked.
            LockAbs::Unknown => held.clear(),
            abs => {
                held.remove(&abs);
                if matches!(instr, Instr::Wait { .. }) {
                    // During wait the lock is released and retaken, but
                    // *other* locks stay held — nothing further to do; the
                    // monitor itself is held again after wait returns.
                    held.insert(abs);
                }
            }
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (lir::Program, GuardedLocations) {
        let p = lir::parse(src).unwrap();
        let g = guarded_locations(&p);
        (p, g)
    }

    #[test]
    fn consistently_locked_global_is_guarded() {
        let (p, g) = analyze(
            "global lock; global data; class L { field pad; }
             fn worker() { sync (lock) { data = data + 1; } }
             fn main() {
                 lock = new L();
                 let t = spawn worker();
                 sync (lock) { data = data + 2; }
                 join t;
             }",
        );
        let data = p.global_by_name("data").unwrap();
        assert!(g.global_guarded(data));
    }

    #[test]
    fn unlocked_access_defeats_guarding() {
        let (p, g) = analyze(
            "global lock; global data; class L { field pad; }
             fn worker() { sync (lock) { data = data + 1; } }
             fn main() {
                 lock = new L();
                 let t = spawn worker();
                 data = 5; // unguarded!
                 join t;
             }",
        );
        let data = p.global_by_name("data").unwrap();
        assert!(!g.global_guarded(data));
    }

    #[test]
    fn different_locks_defeat_guarding() {
        let (p, g) = analyze(
            "global l1; global l2; global data; class L { field pad; }
             fn worker() { sync (l1) { data = data + 1; } }
             fn main() {
                 l1 = new L(); l2 = new L();
                 let t = spawn worker();
                 sync (l2) { data = data + 2; }
                 join t;
             }",
        );
        let data = p.global_by_name("data").unwrap();
        assert!(!g.global_guarded(data));
    }

    #[test]
    fn field_guarded_through_callee() {
        let (p, g) = analyze(
            "global lock; global cache; class L { field pad; } class C { field v; }
             fn update(c) { c.v = c.v + 1; }
             fn worker() { sync (lock) { update(cache); } }
             fn main() {
                 lock = new L(); cache = new C();
                 let t = spawn worker();
                 sync (lock) { update(cache); }
                 join t;
             }",
        );
        let v = p.field_by_name("v").unwrap();
        assert!(g.field_guarded(v));
    }

    #[test]
    fn callee_called_from_mixed_contexts_is_unguarded() {
        let (p, g) = analyze(
            "global lock; global cache; class L { field pad; } class C { field v; }
             fn update(c) { c.v = c.v + 1; }
             fn worker() { sync (lock) { update(cache); } }
             fn main() {
                 lock = new L(); cache = new C();
                 let t = spawn worker();
                 update(cache); // called without the lock
                 join t;
             }",
        );
        let v = p.field_by_name("v").unwrap();
        assert!(!g.field_guarded(v));
    }

    #[test]
    fn reassigned_lock_global_is_not_stable() {
        let (p, g) = analyze(
            "global lock; global data; class L { field pad; }
             fn worker() { sync (lock) { data = data + 1; } }
             fn main() {
                 lock = new L();
                 let t = spawn worker();
                 sync (lock) { data = data + 2; }
                 lock = new L(); // identity changes!
                 join t;
             }",
        );
        let data = p.global_by_name("data").unwrap();
        assert!(!g.global_guarded(data));
    }

    #[test]
    fn nested_locks_keep_outer_held() {
        let (p, g) = analyze(
            "global l1; global l2; global data; class L { field pad; }
             fn worker() { sync (l1) { sync (l2) { data = 1; } } }
             fn main() {
                 l1 = new L(); l2 = new L();
                 let t = spawn worker();
                 sync (l1) { data = 2; }
                 join t;
             }",
        );
        let data = p.global_by_name("data").unwrap();
        // Both accesses hold l1.
        assert!(g.global_guarded(data));
    }
}
