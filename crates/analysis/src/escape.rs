//! Interprocedural escape analysis for allocation sites.
//!
//! An object *escapes* its allocating thread if its reference may be stored
//! into the heap (a global, a field, an array element, a map), passed to a
//! spawned thread, or returned/propagated to a context that does any of
//! those. Escaping allocation sites are conservatively treated as shared:
//! their element accesses are instrumented. Non-escaping sites (thread-local
//! temporaries, the common case in scientific kernels) are not.
//!
//! The analysis is flow-insensitive: per function, a register is *escaping*
//! if it appears in a sink position, is moved into an escaping register, or
//! is passed as an argument whose parameter escapes in the callee
//! (interprocedural fixpoint over parameter-escape summaries).

use lir::{FuncId, Instr, InstrId, Program, Reg, Terminator};
use std::collections::HashSet;

/// Per-function escape summary: which parameters escape.
#[derive(Debug, Clone, Default)]
struct FuncSummary {
    escaping_params: HashSet<u32>,
}

/// The set of escaping allocation sites of a program.
#[derive(Debug, Clone)]
pub struct EscapeAnalysis {
    escaping_sites: HashSet<InstrId>,
}

impl EscapeAnalysis {
    /// Runs the analysis.
    pub fn run(program: &Program) -> Self {
        let mut summaries: Vec<FuncSummary> = vec![FuncSummary::default(); program.funcs.len()];

        // Fixpoint over parameter-escape summaries.
        loop {
            let mut changed = false;
            for (f, func) in program.funcs.iter().enumerate() {
                let escaping = escaping_regs(program, func, &summaries);
                let summary = &mut summaries[f];
                for p in 0..func.params {
                    if escaping.contains(&Reg(p)) && summary.escaping_params.insert(p) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Collect allocation sites whose destination register escapes.
        let mut escaping_sites = HashSet::new();
        for (f, func) in program.funcs.iter().enumerate() {
            let escaping = escaping_regs(program, func, &summaries);
            for (iid, instr) in func.instr_ids(FuncId(f as u32)) {
                let dst = match instr {
                    Instr::New { dst, .. } | Instr::NewArray { dst, .. } => Some(*dst),
                    Instr::Intrinsic {
                        dst: Some(dst),
                        intr: lir::Intrinsic::MapNew,
                        ..
                    } => Some(*dst),
                    _ => None,
                };
                if let Some(dst) = dst {
                    if escaping.contains(&dst) {
                        escaping_sites.insert(iid);
                    }
                }
            }
        }

        Self { escaping_sites }
    }

    /// Whether objects allocated at `site` may escape their thread.
    pub fn escapes(&self, site: InstrId) -> bool {
        self.escaping_sites.contains(&site)
    }

    /// All escaping allocation sites.
    pub fn escaping_sites(&self) -> &HashSet<InstrId> {
        &self.escaping_sites
    }
}

/// Computes the escaping registers of `func` under the current summaries.
fn escaping_regs(
    program: &Program,
    func: &lir::ir::Func,
    summaries: &[FuncSummary],
) -> HashSet<Reg> {
    let mut escaping: HashSet<Reg> = HashSet::new();
    // Seed + propagate to fixpoint (registers are reused, so `Move` edges
    // propagate both ways conservatively? No: a move `dst = src` makes
    // `src` escape when `dst` does — values flow src -> dst, and escape is
    // a property of the value, so it flows dst -> src).
    loop {
        let mut changed = false;
        let mark = |r: Option<Reg>, escaping: &mut HashSet<Reg>| {
            if let Some(r) = r {
                if escaping.insert(r) {
                    return true;
                }
            }
            false
        };
        for block in &func.blocks {
            for instr in &block.instrs {
                match instr {
                    Instr::SetGlobal { value, .. } => {
                        changed |= mark(value.reg(), &mut escaping);
                    }
                    Instr::SetField { value, obj, .. } => {
                        changed |= mark(value.reg(), &mut escaping);
                        // Storing into an object does not by itself make
                        // the object escape.
                        let _ = obj;
                    }
                    Instr::SetElem { value, .. } => {
                        changed |= mark(value.reg(), &mut escaping);
                    }
                    Instr::Intrinsic {
                        intr: lir::Intrinsic::MapPut,
                        args,
                        ..
                    } => {
                        // The stored value (arg 2) escapes into the map.
                        if let Some(v) = args.get(2) {
                            changed |= mark(v.reg(), &mut escaping);
                        }
                    }
                    Instr::Spawn { args, .. } => {
                        for a in args {
                            changed |= mark(a.reg(), &mut escaping);
                        }
                    }
                    Instr::Call { func: callee, args, .. } => {
                        let summary = &summaries[callee.index()];
                        for (i, a) in args.iter().enumerate() {
                            if summary.escaping_params.contains(&(i as u32)) {
                                changed |= mark(a.reg(), &mut escaping);
                            }
                        }
                    }
                    Instr::Move { dst, src }
                        if escaping.contains(dst) => {
                            changed |= mark(src.reg(), &mut escaping);
                        }
                    _ => {}
                }
            }
            if let Terminator::Ret(Some(v)) = block.term {
                // Returned references flow to the caller; treat as escape
                // (conservative: the caller may publish them).
                changed |= mark(v.reg(), &mut escaping);
            }
        }
        let _ = program;
        if !changed {
            break;
        }
    }
    escaping
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (lir::Program, EscapeAnalysis) {
        let p = lir::parse(src).unwrap();
        let e = EscapeAnalysis::run(&p);
        (p, e)
    }

    fn alloc_sites(p: &Program) -> Vec<InstrId> {
        let mut out = Vec::new();
        for (f, func) in p.funcs.iter().enumerate() {
            for (iid, instr) in func.instr_ids(FuncId(f as u32)) {
                if matches!(
                    instr,
                    Instr::New { .. }
                        | Instr::NewArray { .. }
                        | Instr::Intrinsic {
                            intr: lir::Intrinsic::MapNew,
                            ..
                        }
                ) {
                    out.push(iid);
                }
            }
        }
        out
    }

    #[test]
    fn local_temp_array_does_not_escape() {
        let (p, e) = analyze(
            "fn main() {
                 let a = new [10];
                 a[0] = 1;
                 let x = a[0];
             }",
        );
        let sites = alloc_sites(&p);
        assert_eq!(sites.len(), 1);
        assert!(!e.escapes(sites[0]));
    }

    #[test]
    fn global_stored_object_escapes() {
        let (p, e) = analyze(
            "global g;
             fn main() { let a = new [10]; g = a; }",
        );
        let sites = alloc_sites(&p);
        assert!(e.escapes(sites[0]));
    }

    #[test]
    fn spawn_argument_escapes() {
        let (p, e) = analyze(
            "fn worker(a) { a[0] = 1; }
             fn main() {
                 let a = new [4];
                 let t = spawn worker(a);
                 join t;
             }",
        );
        let sites = alloc_sites(&p);
        assert!(e.escapes(sites[0]));
    }

    #[test]
    fn call_arg_escapes_only_if_param_escapes() {
        let (p, e) = analyze(
            "global g;
             fn keep_local(a) { a[0] = 1; }
             fn publish(a) { g = a; }
             fn main() {
                 let local_arr = new [4];
                 keep_local(local_arr);
                 let pub_arr = new [4];
                 publish(pub_arr);
             }",
        );
        let sites = alloc_sites(&p);
        assert_eq!(sites.len(), 2);
        assert!(!e.escapes(sites[0]), "keep_local arg must not escape");
        assert!(e.escapes(sites[1]), "publish arg must escape");
    }

    #[test]
    fn returned_object_escapes() {
        let (p, e) = analyze(
            "fn make() { let a = new [2]; return a; }
             fn main() { let a = make(); }",
        );
        let sites = alloc_sites(&p);
        assert!(e.escapes(sites[0]));
    }

    #[test]
    fn value_stored_into_field_escapes() {
        let (p, e) = analyze(
            "class Box { field inner; }
             fn main() {
                 let b = new Box();
                 let a = new [2];
                 b.inner = a;
             }",
        );
        let sites = alloc_sites(&p);
        // The array (second site) escapes into the box; the box itself does
        // not escape.
        assert!(!e.escapes(sites[0]));
        assert!(e.escapes(sites[1]));
    }

    #[test]
    fn transitive_call_chain_escape() {
        let (p, e) = analyze(
            "global g;
             fn inner(x) { g = x; }
             fn outer(y) { inner(y); }
             fn main() { let a = new [1]; outer(a); }",
        );
        let sites = alloc_sites(&p);
        assert!(e.escapes(sites[0]));
    }

    #[test]
    fn map_put_value_escapes() {
        let (p, e) = analyze(
            "fn main() {
                 let m = map_new();
                 let a = new [1];
                 map_put(m, 1, a);
             }",
        );
        let sites = alloc_sites(&p);
        // Site order: map_new, new [1]; the array escapes into the map.
        assert!(e.escapes(sites[1]));
    }
}
