//! Happens-before-spawn refinement: instructions of the entry function
//! that execute before any thread can exist happen-before every other
//! thread's actions. They cannot race, they do not count as conflicting
//! accesses for shared-location detection, and they cannot defeat a
//! location's lock-guarding verdict (the paper's Chord-based analyses
//! perform the same refinement for initialization code).

use lir::{Instr, InstrId, Program};
use std::collections::HashSet;

/// Entry-function instructions that execute before any thread can have
/// been spawned (a forward may-spawn dataflow over the entry CFG; calls to
/// functions that may transitively spawn also set the flag).
pub fn pre_spawn_instrs(program: &Program) -> HashSet<InstrId> {
    let mut out = HashSet::new();
    let Some(entry) = program.entry else {
        return out;
    };
    // May-spawn summary per function.
    let n = program.funcs.len();
    let mut may_spawn = vec![false; n];
    loop {
        let mut changed = false;
        for (f, func) in program.funcs.iter().enumerate() {
            if may_spawn[f] {
                continue;
            }
            let found = func.blocks.iter().flat_map(|b| &b.instrs).any(|i| match i {
                Instr::Spawn { .. } => true,
                Instr::Call { func: callee, .. } => may_spawn[callee.index()],
                _ => false,
            });
            if found {
                may_spawn[f] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let func = program.func(entry);
    let nblocks = func.blocks.len();
    // spawned_at_entry[b]: true if a spawn MAY have happened before b.
    let mut spawned_at_entry = vec![false; nblocks];
    let mut visited = vec![false; nblocks];
    let mut work = vec![0usize];
    visited[0] = true;
    while let Some(b) = work.pop() {
        let block = &func.blocks[b];
        let mut spawned = spawned_at_entry[b];
        for (i, instr) in block.instrs.iter().enumerate() {
            if !spawned {
                out.insert(InstrId {
                    func: entry,
                    block: lir::BlockId(b as u32),
                    idx: i as u32,
                });
            }
            match instr {
                Instr::Spawn { .. } => spawned = true,
                Instr::Call { func: callee, .. } if may_spawn[callee.index()] => spawned = true,
                _ => {}
            }
        }
        for succ in block.term.successors() {
            let s = succ.index();
            let before = spawned_at_entry[s];
            spawned_at_entry[s] = before || spawned;
            if !visited[s] || (spawned && !before) {
                visited[s] = true;
                work.push(s);
            }
        }
    }
    // Re-filter: an instruction marked pre-spawn in one visit might be
    // reached post-spawn through another path; recompute membership from
    // the final block states.
    let mut refined = HashSet::new();
    for (b, block) in func.blocks.iter().enumerate() {
        let mut spawned = spawned_at_entry[b];
        for (i, instr) in block.instrs.iter().enumerate() {
            let iid = InstrId {
                func: entry,
                block: lir::BlockId(b as u32),
                idx: i as u32,
            };
            if !spawned && out.contains(&iid) {
                refined.insert(iid);
            }
            match instr {
                Instr::Spawn { .. } => spawned = true,
                Instr::Call { func: callee, .. } if may_spawn[callee.index()] => spawned = true,
                _ => {}
            }
        }
    }
    refined
}


#[cfg(test)]
mod tests {
    use super::*;

    fn pre_spawn_count(src: &str) -> usize {
        let p = lir::parse(src).unwrap();
        pre_spawn_instrs(&p).len()
    }

    #[test]
    fn straight_line_init_is_pre_spawn() {
        // Both SetGlobals precede the spawn.
        let n = pre_spawn_count(
            "global a; global b;
             fn w() {}
             fn main() { a = 1; b = 2; let t = spawn w(); join t; }",
        );
        assert!(n >= 2);
    }

    #[test]
    fn nothing_after_spawn_is_pre_spawn() {
        let p = lir::parse(
            "global a;
             fn w() {}
             fn main() { let t = spawn w(); a = 1; join t; }",
        )
        .unwrap();
        let pre = pre_spawn_instrs(&p);
        // The SetGlobal for `a` must not be pre-spawn.
        let main = p.entry.unwrap();
        for (iid, instr) in p.func(main).instr_ids(main) {
            if matches!(instr, Instr::SetGlobal { .. }) {
                assert!(!pre.contains(&iid), "post-spawn write marked pre-spawn");
            }
        }
    }

    #[test]
    fn call_to_spawning_function_ends_pre_spawn() {
        let p = lir::parse(
            "global a;
             fn w() {}
             fn kick() { let t = spawn w(); join t; }
             fn main() { kick(); a = 1; }",
        )
        .unwrap();
        let pre = pre_spawn_instrs(&p);
        let main = p.entry.unwrap();
        for (iid, instr) in p.func(main).instr_ids(main) {
            if matches!(instr, Instr::SetGlobal { .. }) {
                assert!(!pre.contains(&iid));
            }
        }
    }

    #[test]
    fn loop_carrying_spawn_poisons_whole_loop() {
        // A spawn inside the loop body may have happened before any later
        // iteration's access.
        let p = lir::parse(
            "global a;
             fn w() {}
             fn main(n) {
                 let i = 0;
                 while (i < n) {
                     a = i;
                     let t = spawn w();
                     join t;
                     i = i + 1;
                 }
             }",
        )
        .unwrap();
        let pre = pre_spawn_instrs(&p);
        let main = p.entry.unwrap();
        for (iid, instr) in p.func(main).instr_ids(main) {
            if matches!(instr, Instr::SetGlobal { .. }) {
                assert!(
                    !pre.contains(&iid),
                    "loop-carried access wrongly marked pre-spawn"
                );
            }
        }
    }
}
