//! Static analyses over LIR programs.
//!
//! This crate plays the role the Light paper assigns to the Soot and Chord
//! frameworks:
//!
//! - [`CallGraph`] — call edges, thread roots, reachability and thread
//!   multiplicity;
//! - [`EscapeAnalysis`] — interprocedural allocation-site escape analysis;
//! - [`SharedLocations`] — shared field/global/allocation detection,
//!   producing the runtime's [`light_runtime::SharedPolicy`];
//! - [`guarded_locations`] — lockset analysis identifying consistently
//!   guarded locations (enables the paper's O2, Lemma 4.2);
//! - [`race_pairs`] — static race pairs (front end of the Chimera-style
//!   baseline).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), lir::Error> {
//! let program = lir::parse(
//!     "global counter;
//!      fn worker() { counter = counter + 1; }
//!      fn main() {
//!          let t1 = spawn worker();
//!          let t2 = spawn worker();
//!          join t1; join t2;
//!      }",
//! )?;
//! let analysis = light_analysis::analyze(&program);
//! let g = program.global_by_name("counter").unwrap();
//! assert!(analysis.policy.global_shared(g));
//! assert!(!analysis.races.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod bulk_guard;
pub mod callgraph;
pub mod escape;
pub mod lockset;
pub mod prespawn;
pub mod races;
pub mod shared;

pub use bulk_guard::{guarded_alloc_sites, init_only_alloc_sites};
pub use callgraph::{CallGraph, Multiplicity};
pub use escape::EscapeAnalysis;
pub use lockset::{guarded_locations, GuardedLocations, LockAbs};
pub use races::{
    change_point_candidates, race_pairs, racy_functions, RacePair, RacyLocations, StaticLoc,
};
pub use shared::SharedLocations;

use light_runtime::SharedPolicy;
use lir::Program;

/// All analysis products for one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub call_graph: CallGraph,
    pub escape: EscapeAnalysis,
    /// Which locations the runtime should instrument.
    pub policy: SharedPolicy,
    /// Which locations are consistently guarded (feeds Light's O2).
    pub guarded: GuardedLocations,
    /// Allocation sites whose containers are consistently lock-guarded
    /// (the bulk half of O2).
    pub guarded_allocs: std::collections::HashSet<lir::InstrId>,
    /// Potentially racing static access pairs (feeds the Chimera baseline).
    pub races: Vec<RacePair>,
}

/// Runs every analysis on `program`.
pub fn analyze(program: &Program) -> Analysis {
    let call_graph = CallGraph::build(program);
    let escape = EscapeAnalysis::run(program);
    let shared = SharedLocations::compute(program, &call_graph, &escape);
    let guarded = guarded_locations(program);
    let guarded_allocs = guarded_alloc_sites(program, &guarded);
    let init_only = init_only_alloc_sites(program);
    let races = race_pairs(program, &call_graph, &guarded);
    let mut policy = shared.into_policy();
    if let light_runtime::SharedPolicy::Analyzed {
        guarded_allocs: slot,
        shared_allocs,
        ..
    } = &mut policy
    {
        *slot = guarded_allocs.clone();
        // Containers fully initialized before any thread exists carry
        // deterministic contents; drop their instrumentation entirely.
        for site in &init_only {
            shared_allocs.remove(site);
        }
    }
    Analysis {
        policy,
        call_graph,
        escape,
        guarded,
        guarded_allocs,
        races,
    }
}
