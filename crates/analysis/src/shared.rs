//! Shared-location detection: which fields, globals and allocation sites
//! may be accessed by more than one thread (with at least one writer).
//!
//! This plays the role the paper assigns to Soot/Chord: restricting the
//! replay algorithm to shared locations as "a natural yet significant
//! performance optimization" (Section 3.2).

use crate::callgraph::{CallGraph, Multiplicity};
use crate::escape::EscapeAnalysis;
use light_runtime::SharedPolicy;
use lir::{FuncId, Instr, Program};
use std::collections::HashSet;

#[derive(Debug, Clone, Default)]
struct AccessSet {
    reads: HashSet<u32>,
    writes: HashSet<u32>,
}

impl AccessSet {
    fn touched(&self) -> impl Iterator<Item = u32> + '_ {
        self.reads.union(&self.writes).copied()
    }
}

/// Result of the shared-location analysis.
#[derive(Debug, Clone)]
pub struct SharedLocations {
    pub shared_fields: Vec<bool>,
    pub shared_globals: Vec<bool>,
    pub shared_allocs: HashSet<lir::InstrId>,
}

impl SharedLocations {
    /// Runs the analysis, combining root reachability (which threads access
    /// which static locations) with escape information for allocation
    /// sites.
    pub fn compute(program: &Program, graph: &CallGraph, escape: &EscapeAnalysis) -> Self {
        // Per root: field/global access footprint over reachable functions.
        // Pre-spawn initialization accesses happen-before every thread and
        // are excluded: a location whose only writes are initialization is
        // effectively read-only once threads exist.
        let pre_spawn = crate::prespawn::pre_spawn_instrs(program);
        let per_root: Vec<(FuncId, AccessSet, AccessSet)> = graph
            .roots
            .iter()
            .map(|&root| {
                let mut fields = AccessSet::default();
                let mut globals = AccessSet::default();
                for &f in &graph.reachable[&root] {
                    collect(program, f, &pre_spawn, &mut fields, &mut globals);
                }
                (root, fields, globals)
            })
            .collect();

        let shared_fields = (0..program.field_names.len() as u32)
            .map(|id| is_shared(&per_root, graph, id, true))
            .collect();
        let shared_globals = (0..program.globals.len() as u32)
            .map(|id| is_shared(&per_root, graph, id, false))
            .collect();

        Self {
            shared_fields,
            shared_globals,
            shared_allocs: escape.escaping_sites().clone(),
        }
    }

    /// Converts to the runtime's [`SharedPolicy`].
    pub fn into_policy(self) -> SharedPolicy {
        SharedPolicy::Analyzed {
            shared_fields: self.shared_fields,
            shared_globals: self.shared_globals,
            shared_allocs: self.shared_allocs,
            guarded_allocs: Default::default(),
        }
    }
}

fn is_shared(
    per_root: &[(FuncId, AccessSet, AccessSet)],
    graph: &CallGraph,
    id: u32,
    is_field: bool,
) -> bool {
    fn select(entry: &(FuncId, AccessSet, AccessSet), is_field: bool) -> &AccessSet {
        if is_field {
            &entry.1
        } else {
            &entry.2
        }
    }
    let accessors: Vec<&(FuncId, AccessSet, AccessSet)> = per_root
        .iter()
        .filter(|e| select(e, is_field).touched().any(|x| x == id))
        .collect();
    let writers = accessors
        .iter()
        .filter(|e| select(e, is_field).writes.contains(&id))
        .count();
    if writers == 0 {
        // Read-only everywhere: no flow dependences can cross threads.
        return false;
    }
    if accessors.len() >= 2 {
        return true;
    }
    // One accessing root: shared only if that root may have many instances.
    accessors
        .iter()
        .any(|e| graph.multiplicity[&e.0] == Multiplicity::Many)
}

fn collect(
    program: &Program,
    f: FuncId,
    pre_spawn: &std::collections::HashSet<lir::InstrId>,
    fields: &mut AccessSet,
    globals: &mut AccessSet,
) {
    for (iid, instr) in program.func(f).instr_ids(f) {
        {
            if pre_spawn.contains(&iid) {
                continue;
            }
            match instr {
                Instr::GetField { field, .. } => {
                    fields.reads.insert(field.0);
                }
                Instr::SetField { field, .. } => {
                    fields.writes.insert(field.0);
                }
                Instr::GetGlobal { global, .. } => {
                    globals.reads.insert(global.0);
                }
                Instr::SetGlobal { global, .. } => {
                    globals.writes.insert(global.0);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(src: &str) -> (lir::Program, SharedLocations) {
        let p = lir::parse(src).unwrap();
        let g = CallGraph::build(&p);
        let e = EscapeAnalysis::run(&p);
        let s = SharedLocations::compute(&p, &g, &e);
        (p, s)
    }

    #[test]
    fn global_written_by_two_threads_is_shared() {
        let (p, s) = shared(
            "global counter;
             fn worker() { counter = counter + 1; }
             fn main() { let t = spawn worker(); join t; counter = counter + 1; }",
        );
        let g = p.global_by_name("counter").unwrap();
        assert!(s.shared_globals[g.index()]);
    }

    #[test]
    fn main_only_global_is_not_shared() {
        let (p, s) = shared(
            "global private_state;
             fn worker() { }
             fn main() { let t = spawn worker(); private_state = 1; join t; }",
        );
        let g = p.global_by_name("private_state").unwrap();
        assert!(!s.shared_globals[g.index()]);
    }

    #[test]
    fn read_only_global_is_not_shared() {
        // Written only before any spawn by main... conservatively, the
        // analysis sees main as a writer and worker as a reader, so it IS
        // shared. The truly unshared case is read-by-everyone,
        // written-by-nobody.
        let (p, s) = shared(
            "global config;
             fn worker() { let c = config; }
             fn main() { let t = spawn worker(); let c = config; join t; }",
        );
        let g = p.global_by_name("config").unwrap();
        assert!(!s.shared_globals[g.index()], "no writers anywhere");
    }

    #[test]
    fn field_accessed_by_single_root_many_instances_is_shared() {
        let (p, s) = shared(
            "class C { field v; }
             global obj;
             fn worker() { obj.v = obj.v + 1; }
             fn main() {
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let f = p.field_by_name("v").unwrap();
        assert!(s.shared_fields[f.index()]);
    }

    #[test]
    fn field_used_by_one_thread_is_not_shared() {
        let (p, s) = shared(
            "class C { field scratch; }
             fn worker() { let c = new C(); c.scratch = 1; }
             fn main() { let t = spawn worker(); join t; }",
        );
        let f = p.field_by_name("scratch").unwrap();
        assert!(!s.shared_fields[f.index()]);
    }

    #[test]
    fn policy_conversion_round_trips() {
        let (p, s) = shared(
            "global x;
             fn worker() { x = 1; }
             fn main() { let t = spawn worker(); x = 2; join t; }",
        );
        let g = p.global_by_name("x").unwrap();
        let policy = s.into_policy();
        assert!(policy.global_shared(g));
    }
}
