//! Call graph, thread roots, reachability and thread multiplicity.

use lir::{FuncId, Instr, Program, Terminator};
use std::collections::{HashMap, HashSet, VecDeque};

/// How many instances of a thread root may run during one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Multiplicity {
    /// At most one instance.
    One,
    /// Possibly two or more instances (multiple spawn sites, spawn in a
    /// loop, or spawned from a many-instance thread).
    Many,
}

/// The program's call graph plus thread-root information.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct callees (via `call`) of each function.
    pub calls: Vec<HashSet<FuncId>>,
    /// Functions each function spawns.
    pub spawns: Vec<HashSet<FuncId>>,
    /// Thread roots: the entry function plus every spawned function.
    pub roots: Vec<FuncId>,
    /// Per root, the functions reachable through `call` edges (including
    /// the root itself). Spawned functions belong to *their own* root.
    pub reachable: HashMap<FuncId, HashSet<FuncId>>,
    /// Per root, how many thread instances may execute it.
    pub multiplicity: HashMap<FuncId, Multiplicity>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn build(program: &Program) -> Self {
        let n = program.funcs.len();
        let mut calls: Vec<HashSet<FuncId>> = vec![HashSet::new(); n];
        let mut spawns: Vec<HashSet<FuncId>> = vec![HashSet::new(); n];
        // Spawn sites that sit inside a CFG cycle of their function, or
        // appear several times, can run many times.
        let mut spawn_sites: HashMap<FuncId, Vec<(FuncId, bool)>> = HashMap::new();

        for (f, func) in program.funcs.iter().enumerate() {
            let looping = blocks_in_cycles(func);
            for (b, block) in func.blocks.iter().enumerate() {
                for instr in &block.instrs {
                    match instr {
                        Instr::Call { func: callee, .. } => {
                            calls[f].insert(*callee);
                        }
                        Instr::Spawn { func: callee, .. } => {
                            spawns[f].insert(*callee);
                            spawn_sites
                                .entry(*callee)
                                .or_default()
                                .push((FuncId(f as u32), looping.contains(&b)));
                        }
                        _ => {}
                    }
                }
            }
        }

        let mut roots: Vec<FuncId> = Vec::new();
        if let Some(entry) = program.entry {
            roots.push(entry);
        }
        for set in &spawns {
            for &callee in set {
                if !roots.contains(&callee) {
                    roots.push(callee);
                }
            }
        }
        roots.sort();

        let mut reachable = HashMap::new();
        for &root in &roots {
            reachable.insert(root, reach_over_calls(&calls, root));
        }

        // Multiplicity fixpoint: entry has One; a spawned root is Many if
        // spawned more than once overall, spawned inside a loop, or spawned
        // (possibly transitively) by a Many thread or from a function
        // reachable from a Many root.
        let mut multiplicity: HashMap<FuncId, Multiplicity> = roots
            .iter()
            .map(|&r| (r, Multiplicity::One))
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &root in &roots {
                if multiplicity[&root] == Multiplicity::Many {
                    continue;
                }
                let sites = spawn_sites.get(&root).cloned().unwrap_or_default();
                let mut many = sites.len() > 1 || sites.iter().any(|&(_, in_loop)| in_loop);
                if !many {
                    // One site: inherits its spawner's multiplicity. The
                    // spawner function may be reachable from several roots.
                    for &(spawner_func, _) in &sites {
                        for (&r, funcs) in &reachable {
                            if funcs.contains(&spawner_func)
                                && multiplicity[&r] == Multiplicity::Many
                            {
                                many = true;
                            }
                        }
                        // Reachable from two distinct roots => two threads
                        // can spawn it.
                        let owners = reachable
                            .values()
                            .filter(|funcs| funcs.contains(&spawner_func))
                            .count();
                        if owners > 1 {
                            many = true;
                        }
                    }
                }
                if many {
                    multiplicity.insert(root, Multiplicity::Many);
                    changed = true;
                }
            }
        }

        Self {
            calls,
            spawns,
            roots,
            reachable,
            multiplicity,
        }
    }

    /// The roots whose threads may execute function `f`.
    pub fn roots_reaching(&self, f: FuncId) -> Vec<FuncId> {
        self.roots
            .iter()
            .copied()
            .filter(|r| self.reachable[r].contains(&f))
            .collect()
    }

    /// Whether function `f` may execute in two or more threads
    /// concurrently: reachable from two distinct roots, or from one root
    /// with [`Multiplicity::Many`].
    pub fn may_run_in_parallel(&self, f: FuncId) -> bool {
        let owners = self.roots_reaching(f);
        owners.len() > 1
            || owners
                .iter()
                .any(|r| self.multiplicity[r] == Multiplicity::Many)
    }
}

fn reach_over_calls(calls: &[HashSet<FuncId>], root: FuncId) -> HashSet<FuncId> {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(root);
    queue.push_back(root);
    while let Some(f) = queue.pop_front() {
        for &callee in &calls[f.index()] {
            if seen.insert(callee) {
                queue.push_back(callee);
            }
        }
    }
    seen
}

/// Block indices that lie on some CFG cycle of `func`.
fn blocks_in_cycles(func: &lir::ir::Func) -> HashSet<usize> {
    let n = func.blocks.len();
    // block b is on a cycle iff b is reachable from one of its successors.
    let succs: Vec<Vec<usize>> = func
        .blocks
        .iter()
        .map(|b| match b.term {
            Terminator::Jump(t) => vec![t.index()],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb.index(), else_bb.index()],
            Terminator::Ret(_) => vec![],
        })
        .collect();
    let mut result = HashSet::new();
    for b in 0..n {
        let mut seen = vec![false; n];
        let mut queue: VecDeque<usize> = succs[b].iter().copied().collect();
        while let Some(x) = queue.pop_front() {
            if seen[x] {
                continue;
            }
            seen[x] = true;
            if x == b {
                result.insert(b);
                break;
            }
            for &s in &succs[x] {
                queue.push_back(s);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> (lir::Program, CallGraph) {
        let p = lir::parse(src).unwrap();
        let g = CallGraph::build(&p);
        (p, g)
    }

    #[test]
    fn roots_include_entry_and_spawned() {
        let (p, g) = graph(
            "fn worker() {}
             fn main() { let t = spawn worker(); join t; }",
        );
        let main = p.func_by_name("main").unwrap();
        let worker = p.func_by_name("worker").unwrap();
        assert_eq!(g.roots, {
            let mut v = vec![main, worker];
            v.sort();
            v
        });
    }

    #[test]
    fn reachability_follows_calls_not_spawns() {
        let (p, g) = graph(
            "fn helper() {}
             fn worker() { helper(); }
             fn main() { let t = spawn worker(); join t; }",
        );
        let main = p.func_by_name("main").unwrap();
        let worker = p.func_by_name("worker").unwrap();
        let helper = p.func_by_name("helper").unwrap();
        assert!(g.reachable[&worker].contains(&helper));
        assert!(!g.reachable[&main].contains(&helper));
        assert!(!g.reachable[&main].contains(&worker));
    }

    #[test]
    fn single_spawn_is_multiplicity_one() {
        let (p, g) = graph(
            "fn worker() {}
             fn main() { let t = spawn worker(); join t; }",
        );
        let worker = p.func_by_name("worker").unwrap();
        assert_eq!(g.multiplicity[&worker], Multiplicity::One);
    }

    #[test]
    fn two_spawn_sites_are_many() {
        let (p, g) = graph(
            "fn worker() {}
             fn main() {
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let worker = p.func_by_name("worker").unwrap();
        assert_eq!(g.multiplicity[&worker], Multiplicity::Many);
    }

    #[test]
    fn spawn_in_loop_is_many() {
        let (p, g) = graph(
            "fn worker() {}
             fn main(n) {
                 let i = 0;
                 while (i < n) { let t = spawn worker(); join t; i = i + 1; }
             }",
        );
        let worker = p.func_by_name("worker").unwrap();
        assert_eq!(g.multiplicity[&worker], Multiplicity::Many);
    }

    #[test]
    fn parallel_detection() {
        let (p, g) = graph(
            "fn shared_code() {}
             fn worker() { shared_code(); }
             fn main() {
                 shared_code();
                 let t = spawn worker();
                 join t;
             }",
        );
        let shared = p.func_by_name("shared_code").unwrap();
        let worker = p.func_by_name("worker").unwrap();
        assert!(g.may_run_in_parallel(shared));
        assert!(!g.may_run_in_parallel(worker));
    }
}
