//! Static race-pair detection (the Chimera baseline's front end).
//!
//! A pair of static accesses races when they may touch the same shared
//! location from two concurrently-running threads, at least one writes, and
//! no common lock is held at both. Chimera (Lee et al., PLDI'12) weaves
//! locks around such pairs; the paper shows this serialization is exactly
//! what *hides* three of the eight evaluation bugs.

use crate::callgraph::CallGraph;
use crate::lockset::GuardedLocations;
use lir::{FieldId, FuncId, GlobalId, Instr, InstrId, Program};
use std::collections::HashSet;

/// A static location a race can occur on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StaticLoc {
    Field(FieldId),
    Global(GlobalId),
    /// Array-element and map accesses are pooled per function for the
    /// conservative baseline analysis.
    Bulk,
}

/// One potentially racing pair of static accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacePair {
    pub loc: StaticLoc,
    pub a: InstrId,
    pub b: InstrId,
}

/// Finds potentially racing static access pairs.
pub fn race_pairs(program: &Program, graph: &CallGraph, locks: &GuardedLocations) -> Vec<RacePair> {
    struct Access {
        iid: InstrId,
        func: FuncId,
        loc: StaticLoc,
        write: bool,
    }

    let pre_spawn = crate::prespawn::pre_spawn_instrs(program);
    let mut accesses: Vec<Access> = Vec::new();
    for (f, func) in program.funcs.iter().enumerate() {
        let fid = FuncId(f as u32);
        for (iid, instr) in func.instr_ids(fid) {
            if pre_spawn.contains(&iid) {
                // Initialization code that runs before any thread exists
                // happens-before everything; it cannot race.
                continue;
            }
            let (loc, write) = match instr {
                Instr::GetField { field, .. } => (StaticLoc::Field(*field), false),
                Instr::SetField { field, .. } => (StaticLoc::Field(*field), true),
                Instr::GetGlobal { global, .. } => (StaticLoc::Global(*global), false),
                Instr::SetGlobal { global, .. } => (StaticLoc::Global(*global), true),
                Instr::GetElem { .. } => (StaticLoc::Bulk, false),
                Instr::SetElem { .. } => (StaticLoc::Bulk, true),
                Instr::Intrinsic { intr, .. } if intr.is_solver_opaque() => {
                    (StaticLoc::Bulk, true)
                }
                _ => continue,
            };
            accesses.push(Access {
                iid,
                func: fid,
                loc,
                write,
            });
        }
    }

    let common_lock = |a: InstrId, b: InstrId| -> bool {
        match (locks.held_at.get(&a), locks.held_at.get(&b)) {
            (Some(x), Some(y)) => x.intersection(y).next().is_some(),
            _ => false,
        }
    };

    let concurrent = |f1: FuncId, f2: FuncId| -> bool {
        let r1: HashSet<_> = graph.roots_reaching(f1).into_iter().collect();
        let r2: HashSet<_> = graph.roots_reaching(f2).into_iter().collect();
        // Two distinct roots, or a shared many-instance root.
        for &a in &r1 {
            for &b in &r2 {
                if a != b {
                    return true;
                }
                if graph.multiplicity[&a] == crate::callgraph::Multiplicity::Many {
                    return true;
                }
            }
        }
        false
    };

    let mut pairs = Vec::new();
    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.loc != b.loc || !(a.write || b.write) {
                continue;
            }
            if !concurrent(a.func, b.func) {
                continue;
            }
            if common_lock(a.iid, b.iid) {
                continue;
            }
            pairs.push(RacePair {
                loc: a.loc,
                a: a.iid,
                b: b.iid,
            });
        }
    }
    pairs
}

/// The functions involved in any race pair — the set Chimera serializes.
pub fn racy_functions(pairs: &[RacePair]) -> HashSet<FuncId> {
    pairs
        .iter()
        .flat_map(|p| [p.a.func, p.b.func])
        .collect()
}

/// The statically racy locations, digested for dynamic matching: a
/// schedule-exploration strategy preempts exactly at accesses that may be
/// one side of a race (race-directed search).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RacyLocations {
    /// Raw [`FieldId`]s involved in some race pair.
    pub fields: HashSet<u32>,
    /// Raw [`GlobalId`]s involved in some race pair.
    pub globals: HashSet<u32>,
    /// Whether any pooled (array/map/opaque-intrinsic) access races; if so
    /// every such access is a candidate.
    pub bulk: bool,
}

impl RacyLocations {
    /// Whether any location at all is racy.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty() && self.globals.is_empty() && !self.bulk
    }
}

/// Digests race pairs into the preemption-point candidate set used by
/// race-directed schedule exploration.
pub fn change_point_candidates(pairs: &[RacePair]) -> RacyLocations {
    let mut out = RacyLocations::default();
    for p in pairs {
        match p.loc {
            StaticLoc::Field(f) => {
                out.fields.insert(f.0);
            }
            StaticLoc::Global(g) => {
                out.globals.insert(g.0);
            }
            StaticLoc::Bulk => out.bulk = true,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockset::guarded_locations;

    fn races(src: &str) -> (lir::Program, Vec<RacePair>) {
        let p = lir::parse(src).unwrap();
        let g = CallGraph::build(&p);
        let l = guarded_locations(&p);
        let r = race_pairs(&p, &g, &l);
        (p, r)
    }

    #[test]
    fn unsynchronized_counter_races() {
        let (p, r) = races(
            "global counter;
             fn worker() { counter = counter + 1; }
             fn main() {
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let g = p.global_by_name("counter").unwrap();
        assert!(r.iter().any(|p| p.loc == StaticLoc::Global(g)));
    }

    #[test]
    fn locked_counter_does_not_race() {
        let (p, r) = races(
            "global lock; global counter; class L { field pad; }
             fn worker() { sync (lock) { counter = counter + 1; } }
             fn main() {
                 lock = new L();
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let g = p.global_by_name("counter").unwrap();
        assert!(!r.iter().any(|p| p.loc == StaticLoc::Global(g)));
    }

    #[test]
    fn read_read_does_not_race() {
        let (p, r) = races(
            "global config;
             fn worker() { let c = config; }
             fn main() {
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let g = p.global_by_name("config").unwrap();
        assert!(!r.iter().any(|p| p.loc == StaticLoc::Global(g)));
    }

    #[test]
    fn pre_spawn_initialization_does_not_race() {
        let (p, r) = races(
            "global state;
             fn worker() { state = 1; }
             fn main() { state = 2; let t = spawn worker(); join t; }",
        );
        // main's write happens before any thread exists; worker is then
        // the only post-spawn accessor, so no race remains.
        let g = p.global_by_name("state").unwrap();
        assert!(!r.iter().any(|p| p.loc == StaticLoc::Global(g)));
    }

    #[test]
    fn post_spawn_main_accesses_still_race() {
        let (p, r) = races(
            "global state;
             fn worker() { state = 1; }
             fn main() { let t = spawn worker(); state = 2; join t; }",
        );
        let g = p.global_by_name("state").unwrap();
        assert!(r.iter().any(|p| p.loc == StaticLoc::Global(g)));
    }

    #[test]
    fn lock_publication_is_not_racy() {
        let (p, r) = races(
            "global lock; global v; class L { field pad; }
             fn worker() { sync (lock) { v = v + 1; } }
             fn main() {
                 lock = new L();
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let g = p.global_by_name("lock").unwrap();
        assert!(!r.iter().any(|p| p.loc == StaticLoc::Global(g)));
    }

    #[test]
    fn change_point_candidates_digest_pairs() {
        let (p, r) = races(
            "global counter;
             fn worker() { counter = counter + 1; }
             fn main() {
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let g = p.global_by_name("counter").unwrap();
        let cands = change_point_candidates(&r);
        assert!(cands.globals.contains(&g.0));
        assert!(cands.fields.is_empty());
        assert!(!cands.bulk);
        assert!(!cands.is_empty());
        assert!(change_point_candidates(&[]).is_empty());
    }

    #[test]
    fn racy_functions_cover_both_sides() {
        let (p, r) = races(
            "global counter;
             fn worker() { counter = counter + 1; }
             fn main() {
                 let t1 = spawn worker();
                 counter = 0;
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        let funcs = racy_functions(&r);
        assert!(funcs.contains(&p.func_by_name("worker").unwrap()));
        assert!(funcs.contains(&p.func_by_name("main").unwrap()));
    }
}
