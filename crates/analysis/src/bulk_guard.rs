//! Lockset analysis for *bulk* locations (array elements and maps): the
//! allocation-site half of the paper's O2 (Lemma 4.2).
//!
//! A container allocation is **consistently guarded** when every element /
//! map access that can reach it holds one common lock. Without a points-to
//! analysis, reachability is established syntactically but soundly:
//!
//! 1. the allocation's only uses are a single store into a write-once
//!    global `g` (never passed to calls/spawns, never stored into fields,
//!    elements or maps, never returned) — so the container is reachable
//!    *only* through `g`;
//! 2. every register holding a value read from `g` is used only as the
//!    receiver of element/map accesses or `len` — so no re-aliasing;
//! 3. every such access (outside pre-spawn initialization) holds a common
//!    stable lock.
//!
//! Any violation conservatively disqualifies the site.

use crate::lockset::{GuardedLocations, LockAbs};
use lir::{FuncId, GlobalId, Instr, InstrId, Intrinsic, Operand, Program, Reg};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Guarded allocation sites (`New`/`NewArray`/`map_new` instructions whose
/// containers are consistently lock-protected).
pub fn guarded_alloc_sites(program: &Program, locks: &GuardedLocations) -> HashSet<InstrId> {
    let pre_spawn = crate::prespawn::pre_spawn_instrs(program);

    // Count global writes; candidate roots are write-once globals whose
    // single write stores a fresh allocation.
    let mut global_writes: HashMap<GlobalId, Vec<InstrId>> = HashMap::new();
    for (f, func) in program.funcs.iter().enumerate() {
        for (iid, instr) in func.instr_ids(FuncId(f as u32)) {
            if let Instr::SetGlobal { global, .. } = instr {
                global_writes.entry(*global).or_default().push(iid);
            }
        }
    }

    let mut guarded = HashSet::new();
    'globals: for (global, writes) in &global_writes {
        let [write_iid] = writes.as_slice() else {
            continue;
        };
        let Some(Instr::SetGlobal {
            value: Operand::Reg(alloc_reg),
            ..
        }) = program.instr(*write_iid)
        else {
            continue;
        };
        let func = program.func(write_iid.func);

        // The register must be defined exactly once, by an allocation, and
        // used only by this store (plus local container accesses).
        let mut alloc_site: Option<InstrId> = None;
        for (iid, instr) in func.instr_ids(write_iid.func) {
            if instr.def() == Some(*alloc_reg) {
                match instr {
                    Instr::New { .. }
                    | Instr::NewArray { .. }
                    | Instr::Intrinsic {
                        intr: Intrinsic::MapNew,
                        ..
                    } => {
                        if alloc_site.replace(iid).is_some() {
                            continue 'globals; // multiple defs
                        }
                    }
                    _ => continue 'globals,
                }
            }
        }
        let Some(site) = alloc_site else {
            continue;
        };
        if !ok_container_uses(func, write_iid.func, *alloc_reg, Some(*write_iid)) {
            continue;
        }

        // Every register loaded from the global, in every function, must be
        // used only as a container receiver; collect the access sites.
        let mut accesses: Vec<InstrId> = Vec::new();
        for (f, func) in program.funcs.iter().enumerate() {
            let fid = FuncId(f as u32);
            for (iid, instr) in func.instr_ids(fid) {
                if let Instr::GetGlobal { dst, global: g } = instr {
                    if g == global {
                        if !ok_container_uses(func, fid, *dst, None) {
                            continue 'globals;
                        }
                        collect_receiver_accesses(func, fid, *dst, &mut accesses);
                        let _ = iid;
                    }
                }
            }
        }

        // All (post-initialization) accesses share a stable lock.
        let mut verdict: Option<BTreeSet<LockAbs>> = None;
        for &a in &accesses {
            if pre_spawn.contains(&a) {
                continue;
            }
            let held = locks.held_at.get(&a).cloned().unwrap_or_default();
            match &mut verdict {
                None => verdict = Some(held),
                Some(v) => *v = v.intersection(&held).copied().collect(),
            }
        }
        let has_stable_lock = verdict
            .as_ref()
            .is_some_and(|v| v.iter().any(|l| matches!(l, LockAbs::Global(_))));
        if has_stable_lock {
            guarded.insert(site);
        }
    }
    guarded
}

/// Whether `reg`'s uses in `func` are limited to container accesses (as
/// the receiver), `len`, moves into registers with the same property, and
/// optionally one specific store instruction.
fn ok_container_uses(
    func: &lir::ir::Func,
    fid: FuncId,
    reg: Reg,
    allowed_store: Option<InstrId>,
) -> bool {
    // Track aliases created by Move.
    let mut aliases: HashSet<Reg> = [reg].into_iter().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Instr::Move {
                    dst,
                    src: Operand::Reg(s),
                } = instr
                {
                    if aliases.contains(s) && aliases.insert(*dst) {
                        changed = true;
                    }
                }
            }
        }
    }
    for (iid, instr) in func.instr_ids(fid) {
        let uses_alias = instr
            .uses()
            .iter()
            .any(|op| matches!(op, Operand::Reg(r) if aliases.contains(r)));
        if !uses_alias {
            continue;
        }
        let ok = match instr {
            Instr::GetElem { arr: Operand::Reg(r), idx, .. } => {
                aliases.contains(r) && !matches!(idx, Operand::Reg(i) if aliases.contains(i))
            }
            Instr::SetElem { arr: Operand::Reg(r), idx, value } => {
                aliases.contains(r)
                    && !matches!(idx, Operand::Reg(i) if aliases.contains(i))
                    && !matches!(value, Operand::Reg(v) if aliases.contains(v))
            }
            Instr::Intrinsic {
                intr:
                    Intrinsic::ArrayLen
                    | Intrinsic::MapGet
                    | Intrinsic::MapPut
                    | Intrinsic::MapRemove
                    | Intrinsic::MapContains
                    | Intrinsic::MapSize,
                args,
                ..
            } => {
                // Receiver position only; the container must not appear
                // as a key or stored value.
                matches!(args.first(), Some(Operand::Reg(r)) if aliases.contains(r))
                    && !args[1..]
                        .iter()
                        .any(|op| matches!(op, Operand::Reg(r) if aliases.contains(r)))
            }
            Instr::Move { .. } => true,
            Instr::SetGlobal { .. } => Some(iid) == allowed_store,
            _ => false,
        };
        if !ok {
            return false;
        }
    }
    // Branches/returns on the alias would also leak it; terminators only
    // use condition/return operands.
    for block in &func.blocks {
        match block.term {
            lir::Terminator::Branch { cond: Operand::Reg(r), .. }
            | lir::Terminator::Ret(Some(Operand::Reg(r)))
                if aliases.contains(&r) => {
                    return false;
                }
            _ => {}
        }
    }
    true
}

/// Collects element/map access instructions whose receiver is (an alias
/// of) `reg`.
fn collect_receiver_accesses(
    func: &lir::ir::Func,
    fid: FuncId,
    reg: Reg,
    out: &mut Vec<InstrId>,
) {
    let mut aliases: HashSet<Reg> = [reg].into_iter().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Instr::Move {
                    dst,
                    src: Operand::Reg(s),
                } = instr
                {
                    if aliases.contains(s) && aliases.insert(*dst) {
                        changed = true;
                    }
                }
            }
        }
    }
    for (iid, instr) in func.instr_ids(fid) {
        let is_access = match instr {
            Instr::GetElem { arr: Operand::Reg(r), .. }
            | Instr::SetElem { arr: Operand::Reg(r), .. } => aliases.contains(r),
            Instr::Intrinsic { intr, args, .. } => {
                intr.is_solver_opaque()
                    && matches!(args.first(), Some(Operand::Reg(r)) if aliases.contains(r))
            }
            _ => false,
        };
        if is_access {
            out.push(iid);
        }
    }
}

/// Containers whose mutations are all pre-spawn initialization: their
/// contents are fixed before any thread exists, so post-spawn reads are
/// deterministic and the container needs no instrumentation at all.
/// Uses the same sound syntactic reachability conditions as
/// [`guarded_alloc_sites`].
pub fn init_only_alloc_sites(program: &Program) -> HashSet<InstrId> {
    let pre_spawn = crate::prespawn::pre_spawn_instrs(program);
    let mut global_writes: HashMap<GlobalId, Vec<InstrId>> = HashMap::new();
    for (f, func) in program.funcs.iter().enumerate() {
        for (iid, instr) in func.instr_ids(FuncId(f as u32)) {
            if let Instr::SetGlobal { global, .. } = instr {
                global_writes.entry(*global).or_default().push(iid);
            }
        }
    }
    let mut init_only = HashSet::new();
    'globals: for (global, writes) in &global_writes {
        let [write_iid] = writes.as_slice() else {
            continue;
        };
        if !pre_spawn.contains(write_iid) {
            continue;
        }
        let Some(Instr::SetGlobal {
            value: Operand::Reg(alloc_reg),
            ..
        }) = program.instr(*write_iid)
        else {
            continue;
        };
        let func = program.func(write_iid.func);
        let mut alloc_site: Option<InstrId> = None;
        for (iid, instr) in func.instr_ids(write_iid.func) {
            if instr.def() == Some(*alloc_reg) {
                match instr {
                    Instr::New { .. }
                    | Instr::NewArray { .. }
                    | Instr::Intrinsic {
                        intr: Intrinsic::MapNew,
                        ..
                    } => {
                        if alloc_site.replace(iid).is_some() {
                            continue 'globals;
                        }
                    }
                    _ => continue 'globals,
                }
            }
        }
        let Some(site) = alloc_site else { continue };
        if !ok_container_uses(func, write_iid.func, *alloc_reg, Some(*write_iid)) {
            continue;
        }
        // All mutating accesses through the global root must be pre-spawn.
        let mut accesses: Vec<InstrId> = Vec::new();
        for (f, func) in program.funcs.iter().enumerate() {
            let fid = FuncId(f as u32);
            for (_iid, instr) in func.instr_ids(fid) {
                if let Instr::GetGlobal { dst, global: g } = instr {
                    if g == global {
                        if !ok_container_uses(func, fid, *dst, None) {
                            continue 'globals;
                        }
                        collect_receiver_accesses(func, fid, *dst, &mut accesses);
                    }
                }
            }
        }
        let all_mutations_pre_spawn = accesses.iter().all(|&a| {
            let mutating = match program.instr(a) {
                Some(Instr::SetElem { .. }) => true,
                Some(Instr::Intrinsic { intr, .. }) => matches!(
                    intr,
                    Intrinsic::MapPut | Intrinsic::MapRemove
                ),
                _ => false,
            };
            !mutating || pre_spawn.contains(&a)
        });
        if all_mutations_pre_spawn {
            init_only.insert(site);
        }
    }
    init_only
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockset::guarded_locations;

    fn sites(src: &str) -> (lir::Program, HashSet<InstrId>) {
        let p = lir::parse(src).unwrap();
        let locks = guarded_locations(&p);
        let s = guarded_alloc_sites(&p, &locks);
        (p, s)
    }

    #[test]
    fn locked_array_site_is_guarded() {
        let (_, s) = sites(
            "global lock; global sums; class L { field pad; }
             fn worker(n) {
                 let i = 0;
                 while (i < n) {
                     sync (lock) { sums[i % 4] = sums[i % 4] + 1; }
                     i = i + 1;
                 }
             }
             fn main(n) {
                 lock = new L();
                 sums = new [4];
                 let t1 = spawn worker(n);
                 let t2 = spawn worker(n);
                 join t1; join t2;
                 sync (lock) { print(sums[0]); }
             }",
        );
        assert_eq!(s.len(), 1, "the sums allocation must be guarded");
    }

    #[test]
    fn unlocked_access_disqualifies_site() {
        let (_, s) = sites(
            "global lock; global sums; class L { field pad; }
             fn worker() { sync (lock) { sums[0] = sums[0] + 1; } }
             fn main() {
                 lock = new L();
                 sums = new [4];
                 let t1 = spawn worker();
                 let x = sums[1];  // unguarded post-spawn access
                 join t1;
             }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn leaked_container_disqualifies_site() {
        let (_, s) = sites(
            "global lock; global sums; global leak; class L { field pad; }
             fn worker() { sync (lock) { sums[0] = sums[0] + 1; } }
             fn main() {
                 lock = new L();
                 sums = new [4];
                 leak = sums;      // aliased through another global
                 let t1 = spawn worker();
                 join t1;
             }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn container_passed_to_call_disqualifies_site() {
        let (_, s) = sites(
            "global lock; global sums; class L { field pad; }
             fn helper(a) { a[0] = 1; }
             fn worker() { sync (lock) { let c = sums; helper(c); } }
             fn main() {
                 lock = new L();
                 sums = new [4];
                 let t1 = spawn worker();
                 join t1;
             }",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn guarded_map_site() {
        let (_, s) = sites(
            "global lock; global table; class L { field pad; }
             fn worker(n) {
                 let i = 0;
                 while (i < n) {
                     sync (lock) { map_put(table, i, i * 2); }
                     i = i + 1;
                 }
             }
             fn main(n) {
                 lock = new L();
                 table = map_new();
                 let t1 = spawn worker(n);
                 let t2 = spawn worker(n);
                 join t1; join t2;
             }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn init_only_array_is_detected() {
        let p = lir::parse(
            "global points;
             fn worker(n) {
                 let i = 0; let acc = 0;
                 while (i < n) { acc = acc + points[i]; i = i + 1; }
             }
             fn main(n) {
                 points = new [n];
                 let i = 0;
                 while (i < n) { points[i] = i * 3; i = i + 1; }
                 let t1 = spawn worker(n);
                 let t2 = spawn worker(n);
                 join t1; join t2;
             }",
        )
        .unwrap();
        let sites = init_only_alloc_sites(&p);
        assert_eq!(sites.len(), 1);
    }

    #[test]
    fn post_spawn_writes_disqualify_init_only() {
        let p = lir::parse(
            "global data;
             fn worker() { data[0] = 1; }
             fn main() {
                 data = new [4];
                 let t = spawn worker();
                 join t;
             }",
        )
        .unwrap();
        assert!(init_only_alloc_sites(&p).is_empty());
    }

    #[test]
    fn reassigned_global_disqualifies_site() {
        let (_, s) = sites(
            "global lock; global sums; class L { field pad; }
             fn worker() { sync (lock) { sums[0] = 1; } }
             fn main() {
                 lock = new L();
                 sums = new [4];
                 sums = new [8];
                 let t1 = spawn worker();
                 join t1;
             }",
        );
        assert!(s.is_empty());
    }
}
