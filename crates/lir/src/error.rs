//! Error type shared by the LIR front-end.

use std::fmt;

/// The error returned by every fallible operation in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    /// 1-based source line; 0 when the error has no source position
    /// (e.g. validation of a builder-constructed program).
    line: u32,
    message: String,
}

/// Broad classification of front-end failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Malformed token stream (unknown character, unterminated comment, ...).
    Lex,
    /// Token stream does not match the grammar.
    Parse,
    /// Name resolution or other semantic problem during lowering.
    Lower,
    /// A constructed [`crate::Program`] violates an IR invariant.
    Validate,
}

impl Error {
    pub(crate) fn new(kind: ErrorKind, line: u32, message: impl Into<String>) -> Self {
        Self {
            kind,
            line,
            message: message.into(),
        }
    }

    /// The classification of this error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The 1-based source line of the error, or 0 if unknown.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The human-readable description, without position information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.kind {
            ErrorKind::Lex => "lex error",
            ErrorKind::Parse => "parse error",
            ErrorKind::Lower => "lowering error",
            ErrorKind::Validate => "validation error",
        };
        if self.line > 0 {
            write!(f, "{stage} at line {}: {}", self.line, self.message)
        } else {
            write!(f, "{stage}: {}", self.message)
        }
    }
}

impl std::error::Error for Error {}
