//! IR validation: structural invariants every [`Program`] must satisfy.

use crate::error::{Error, ErrorKind};
use crate::ir::*;

/// Checks structural invariants of `program`.
///
/// Validated properties:
/// - every operand register is within the owning function's register count;
/// - every parameter count is within the register count;
/// - every jump/branch target names an existing block;
/// - every call/spawn target exists and is passed the right argument count;
/// - every class, field and global reference is in range;
/// - every intrinsic receives its exact argument count;
/// - block instruction/line vectors are parallel.
///
/// # Errors
///
/// Returns a [`Error`] with [`ErrorKind::Validate`] describing the first
/// violated invariant.
pub fn validate(program: &Program) -> Result<(), Error> {
    for (f, func) in program.funcs.iter().enumerate() {
        let fid = FuncId(f as u32);
        validate_func(program, fid, func)?;
    }
    if let Some(entry) = program.entry {
        if entry.index() >= program.funcs.len() {
            return Err(verr(format!("entry {entry} out of range")));
        }
    }
    Ok(())
}

fn verr(message: impl Into<String>) -> Error {
    Error::new(ErrorKind::Validate, 0, message)
}

fn validate_func(program: &Program, _fid: FuncId, func: &Func) -> Result<(), Error> {
    let ctx = |what: &str| format!("in `{}`: {what}", func.name);
    if func.params > func.nregs {
        return Err(verr(ctx(&format!(
            "{} params exceed {} registers",
            func.params, func.nregs
        ))));
    }
    if func.blocks.is_empty() {
        return Err(verr(ctx("function has no blocks")));
    }
    for (b, block) in func.blocks.iter().enumerate() {
        if block.instrs.len() != block.lines.len() {
            return Err(verr(ctx(&format!(
                "block b{b}: {} instrs but {} lines",
                block.instrs.len(),
                block.lines.len()
            ))));
        }
        for (i, instr) in block.instrs.iter().enumerate() {
            let at = format!("b{b}:{i}");
            validate_instr(program, func, instr).map_err(|e| {
                verr(ctx(&format!("{at}: {}", e.message())))
            })?;
        }
        for target in block.term.successors() {
            if target.index() >= func.blocks.len() {
                return Err(verr(ctx(&format!(
                    "b{b}: terminator targets missing block {target}"
                ))));
            }
        }
        if let Terminator::Branch { cond, .. } = block.term {
            check_operand(func, cond).map_err(|e| verr(ctx(&format!("b{b}: {}", e.message()))))?;
        }
        if let Terminator::Ret(Some(v)) = block.term {
            check_operand(func, v).map_err(|e| verr(ctx(&format!("b{b}: {}", e.message()))))?;
        }
    }
    Ok(())
}

fn check_operand(func: &Func, op: Operand) -> Result<(), Error> {
    if let Operand::Reg(r) = op {
        if r.0 >= func.nregs {
            return Err(verr(format!(
                "register {r} out of range (nregs = {})",
                func.nregs
            )));
        }
    }
    Ok(())
}

fn check_reg(func: &Func, r: Reg) -> Result<(), Error> {
    check_operand(func, Operand::Reg(r))
}

fn validate_instr(program: &Program, func: &Func, instr: &Instr) -> Result<(), Error> {
    for op in instr.uses() {
        check_operand(func, op)?;
    }
    if let Some(dst) = instr.def() {
        check_reg(func, dst)?;
    }
    match instr {
        Instr::New { class, .. }
            if class.index() >= program.classes.len() => {
                return Err(verr(format!("unknown class {class}")));
            }
        Instr::GetField { field, .. } | Instr::SetField { field, .. }
            if field.index() >= program.field_names.len() => {
                return Err(verr(format!("unknown field {field}")));
            }
        Instr::GetGlobal { global, .. } | Instr::SetGlobal { global, .. }
            if global.index() >= program.globals.len() => {
                return Err(verr(format!("unknown global {global}")));
            }
        Instr::Call { func: callee, args, .. } | Instr::Spawn { func: callee, args, .. } => {
            let Some(target) = program.funcs.get(callee.index()) else {
                return Err(verr(format!("unknown function {callee}")));
            };
            if target.params as usize != args.len() {
                return Err(verr(format!(
                    "`{}` expects {} args, got {}",
                    target.name,
                    target.params,
                    args.len()
                )));
            }
        }
        Instr::Intrinsic { intr, args, dst } => {
            if args.len() != intr.arg_count() {
                return Err(verr(format!(
                    "intrinsic `{intr}` expects {} args, got {}",
                    intr.arg_count(),
                    args.len()
                )));
            }
            if dst.is_some() && !intr.has_result() {
                return Err(verr(format!("intrinsic `{intr}` has no result")));
            }
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    fn one_block_func(instrs: Vec<Instr>, nregs: u32) -> Program {
        let n = instrs.len();
        Program {
            classes: vec![],
            field_names: vec![],
            globals: vec![],
            funcs: vec![Func {
                name: "f".into(),
                params: 0,
                nregs,
                blocks: vec![Block {
                    instrs,
                    lines: vec![0; n],
                    term: Terminator::Ret(None),
                    term_line: 0,
                }],
                line: 0,
            }],
            entry: None,
        }
    }

    #[test]
    fn accepts_well_formed_program() {
        let p = one_block_func(
            vec![Instr::Bin {
                dst: Reg(0),
                op: BinOp::Add,
                lhs: Operand::Const(1),
                rhs: Operand::Const(2),
            }],
            1,
        );
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn rejects_out_of_range_register() {
        let p = one_block_func(
            vec![Instr::Move {
                dst: Reg(5),
                src: Operand::Const(0),
            }],
            1,
        );
        let e = validate(&p).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Validate);
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut p = one_block_func(vec![], 0);
        p.funcs[0].blocks[0].term = Terminator::Jump(BlockId(7));
        assert!(validate(&p).is_err());
    }

    #[test]
    fn rejects_unknown_class() {
        let p = one_block_func(
            vec![Instr::New {
                dst: Reg(0),
                class: ClassId(3),
            }],
            1,
        );
        assert!(validate(&p).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut p = one_block_func(
            vec![Instr::Call {
                dst: None,
                func: FuncId(0),
                args: vec![Operand::Const(1)],
            }],
            0,
        );
        // `f` takes zero params but the call passes one.
        p.funcs[0].blocks[0].lines = vec![0];
        assert!(validate(&p).is_err());
    }

    #[test]
    fn rejects_mismatched_line_table() {
        let mut p = one_block_func(
            vec![Instr::Move {
                dst: Reg(0),
                src: Operand::Const(0),
            }],
            1,
        );
        p.funcs[0].blocks[0].lines.clear();
        assert!(validate(&p).is_err());
    }

    #[test]
    fn validates_parsed_programs() {
        let p = crate::parse(
            "class C { field v; }
             global g;
             fn work(o) { o.v = o.v + 1; }
             fn main() { let o = new C(); g = o; work(o); }",
        )
        .unwrap();
        assert!(validate(&p).is_ok());
    }
}
