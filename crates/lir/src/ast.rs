//! Abstract syntax tree produced by the LIR parser.

use std::fmt;

/// A top-level item in a LIR source file.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Class(ClassDecl),
    Fn(FnDecl),
    /// `global name;` — a named shared heap cell.
    Global(String, u32),
}

/// `class Name { field a; field b; }`
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    pub name: String,
    pub fields: Vec<String>,
    pub line: u32,
}

/// `fn name(p1, p2) { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A statement with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: u32,
}

/// The statement forms of LIR.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `let x = e;`
    Let(String, Expr),
    /// `lv = e;`
    Assign(LValue, Expr),
    /// `if (c) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`
    While(Expr, Vec<Stmt>),
    /// `sync (m) { .. }` — Java-style synchronized block.
    Sync(Expr, Vec<Stmt>),
    /// `join t;`
    Join(Expr),
    /// `wait(m);` — must hold the monitor on `m`.
    Wait(Expr),
    /// `notify(m);`
    Notify(Expr),
    /// `notify_all(m);`
    NotifyAll(Expr),
    /// `assert(e);` — traps when `e` evaluates to 0.
    Assert(Expr),
    /// `return;` or `return e;`
    Return(Option<Expr>),
    Break,
    Continue,
    /// An expression evaluated for effect, e.g. a call.
    Expr(Expr),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable or a `global`.
    Var(String),
    /// `obj.field`
    Field(Expr, String),
    /// `arr[idx]`
    Elem(Expr, Expr),
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Null,
    /// A local variable or `global` read.
    Var(String),
    /// `obj.field`
    Field(Box<Expr>, String),
    /// `arr[idx]`
    Elem(Box<Expr>, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuiting `&&`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuiting `||`.
    Or(Box<Expr>, Box<Expr>),
    /// `f(a, b)` — user function or intrinsic.
    Call(String, Vec<Expr>),
    /// `spawn f(a, b)` — returns a thread handle.
    Spawn(String, Vec<Expr>),
    /// `new C()` — heap allocation.
    New(String),
    /// `new [n]` — array allocation of length `n`, zero-initialized.
    NewArray(Box<Expr>),
}

/// Binary operators. Comparison operators yield 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// Whether the paper's computation-based comparator (CLAP-style) can
    /// model the operator with a linear-arithmetic solver. Multiplication,
    /// division, remainder, shifts and bitwise operators over two symbolic
    /// operands are non-linear.
    pub fn is_linear(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Sub
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not: `!0 == 1`, `!nonzero == 0`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}
