//! Recursive-descent parser producing the LIR AST.

use crate::ast::*;
use crate::error::{Error, ErrorKind};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a whole source file into top-level items.
pub fn parse_items(source: &str) -> Result<Vec<Item>, Error> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !parser.at(&TokenKind::Eof) {
        items.push(parser.item()?);
    }
    Ok(items)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), Error> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, Error> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::new(ErrorKind::Parse, self.line(), message)
    }

    fn item(&mut self) -> Result<Item, Error> {
        let line = self.line();
        match self.peek() {
            TokenKind::KwClass => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::LBrace)?;
                let mut fields = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    self.expect(&TokenKind::KwField)?;
                    fields.push(self.expect_ident()?);
                    self.expect(&TokenKind::Semi)?;
                }
                Ok(Item::Class(ClassDecl { name, fields, line }))
            }
            TokenKind::KwGlobal => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Item::Global(name, line))
            }
            TokenKind::KwFn => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::LParen)?;
                let mut params = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        params.push(self.expect_ident()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Item::Fn(FnDecl {
                    name,
                    params,
                    body,
                    line,
                }))
            }
            other => Err(self.error(format!(
                "expected `class`, `global` or `fn`, found {other}"
            ))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, Error> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, Error> {
        let line = self.line();
        let kind = match self.peek().clone() {
            TokenKind::KwLet => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Let(name, value)
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokenKind::KwElse) {
                    if self.at(&TokenKind::KwIf) {
                        // `else if` chains nest as a one-statement else block.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                return Ok(Stmt {
                    kind: StmtKind::If(cond, then_body, else_body),
                    line,
                });
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                return Ok(Stmt {
                    kind: StmtKind::While(cond, body),
                    line,
                });
            }
            TokenKind::KwSync => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let monitor = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                return Ok(Stmt {
                    kind: StmtKind::Sync(monitor, body),
                    line,
                });
            }
            TokenKind::KwJoin => {
                self.bump();
                let handle = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Join(handle)
            }
            TokenKind::KwWait => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let monitor = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Wait(monitor)
            }
            TokenKind::KwNotify => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let monitor = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Notify(monitor)
            }
            TokenKind::KwNotifyAll => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let monitor = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::NotifyAll(monitor)
            }
            TokenKind::KwAssert => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Assert(cond)
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                StmtKind::Return(value)
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Break
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Continue
            }
            _ => {
                // Expression statement or assignment.
                let expr = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    let lvalue = match expr {
                        Expr::Var(name) => LValue::Var(name),
                        Expr::Field(obj, field) => LValue::Field(*obj, field),
                        Expr::Elem(arr, idx) => LValue::Elem(*arr, *idx),
                        _ => {
                            return Err(Error::new(
                                ErrorKind::Parse,
                                line,
                                "left side of `=` must be a variable, field or array element",
                            ))
                        }
                    };
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    StmtKind::Assign(lvalue, value)
                } else {
                    self.expect(&TokenKind::Semi)?;
                    StmtKind::Expr(expr)
                }
            }
        };
        Ok(Stmt { kind, line })
    }

    fn expr(&mut self) -> Result<Expr, Error> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Error> {
        let lhs = self.bitor_expr()?;
        let op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.bitor_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn bitor_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.bitxor_expr()?;
        while self.at(&TokenKind::Pipe) {
            self.bump();
            let rhs = self.bitxor_expr()?;
            lhs = Expr::Binary(BinOp::BitOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.bitand_expr()?;
        while self.at(&TokenKind::Caret) {
            self.bump();
            let rhs = self.bitand_expr()?;
            lhs = Expr::Binary(BinOp::BitXor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.shift_expr()?;
        while self.at(&TokenKind::Amp) {
            self.bump();
            let rhs = self.shift_expr()?;
            lhs = Expr::Binary(BinOp::BitAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn add_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, Error> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(inner)))
            }
            TokenKind::Bang => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, Error> {
        let mut expr = self.primary_expr()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let field = self.expect_ident()?;
                expr = Expr::Field(Box::new(expr), field);
            } else if self.eat(&TokenKind::LBracket) {
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                expr = Expr::Elem(Box::new(expr), Box::new(idx));
            } else {
                return Ok(expr);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, Error> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::KwTrue => {
                self.bump();
                Ok(Expr::Int(1))
            }
            TokenKind::KwFalse => {
                self.bump();
                Ok(Expr::Int(0))
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr::Null)
            }
            TokenKind::KwNew => {
                self.bump();
                if self.eat(&TokenKind::LBracket) {
                    let len = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::NewArray(Box::new(len)))
                } else {
                    let class = self.expect_ident()?;
                    self.expect(&TokenKind::LParen)?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::New(class))
                }
            }
            TokenKind::KwSpawn => {
                self.bump();
                let func = self.expect_ident()?;
                let args = self.call_args()?;
                Ok(Expr::Spawn(func, args))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, Error> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_fn_body(body: &str) -> Vec<Stmt> {
        let src = format!("fn main() {{ {body} }}");
        let items = parse_items(&src).unwrap();
        match items.into_iter().next().unwrap() {
            Item::Fn(decl) => decl.body,
            other => panic!("expected fn, got {other:?}"),
        }
    }

    #[test]
    fn parses_class_declaration() {
        let items = parse_items("class Point { field x; field y; }").unwrap();
        assert_eq!(
            items,
            vec![Item::Class(ClassDecl {
                name: "Point".into(),
                fields: vec!["x".into(), "y".into()],
                line: 1,
            })]
        );
    }

    #[test]
    fn parses_global_declaration() {
        let items = parse_items("global cache;").unwrap();
        assert_eq!(items, vec![Item::Global("cache".into(), 1)]);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let body = parse_fn_body("let x = 1 + 2 * 3;");
        match &body[0].kind {
            StmtKind::Let(_, Expr::Binary(BinOp::Add, lhs, rhs)) => {
                assert_eq!(**lhs, Expr::Int(1));
                assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_above_logic() {
        let body = parse_fn_body("let x = a < b && c > d;");
        match &body[0].kind {
            StmtKind::Let(_, Expr::And(lhs, rhs)) => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::Lt, _, _)));
                assert!(matches!(**rhs, Expr::Binary(BinOp::Gt, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_field_and_elem_chains() {
        let body = parse_fn_body("let x = a.b[i].c;");
        match &body[0].kind {
            StmtKind::Let(_, Expr::Field(inner, c)) => {
                assert_eq!(c, "c");
                assert!(matches!(**inner, Expr::Elem(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_field_assignment() {
        let body = parse_fn_body("obj.count = obj.count + 1;");
        assert!(matches!(
            &body[0].kind,
            StmtKind::Assign(LValue::Field(_, _), _)
        ));
    }

    #[test]
    fn parses_else_if_chain() {
        let body = parse_fn_body("if (a) { } else if (b) { } else { let z = 1; }");
        match &body[0].kind {
            StmtKind::If(_, _, else_body) => match &else_body[0].kind {
                StmtKind::If(_, _, inner_else) => assert_eq!(inner_else.len(), 1),
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_sync_and_wait() {
        let body = parse_fn_body("sync (m) { wait(m); notify_all(m); }");
        match &body[0].kind {
            StmtKind::Sync(_, inner) => {
                assert!(matches!(inner[0].kind, StmtKind::Wait(_)));
                assert!(matches!(inner[1].kind, StmtKind::NotifyAll(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_spawn_and_join() {
        let body = parse_fn_body("let t = spawn worker(1, 2); join t;");
        assert!(matches!(&body[0].kind, StmtKind::Let(_, Expr::Spawn(f, a)) if f == "worker" && a.len() == 2));
        assert!(matches!(&body[1].kind, StmtKind::Join(_)));
    }

    #[test]
    fn parses_new_object_and_array() {
        let body = parse_fn_body("let o = new Point(); let a = new [10];");
        assert!(matches!(&body[0].kind, StmtKind::Let(_, Expr::New(c)) if c == "Point"));
        assert!(matches!(&body[1].kind, StmtKind::Let(_, Expr::NewArray(_))));
    }

    #[test]
    fn rejects_assignment_to_call() {
        let err = parse_items("fn main() { f() = 3; }").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_items("fn main() { let x = 1 }").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
    }

    #[test]
    fn true_false_literals_desugar_to_ints() {
        let body = parse_fn_body("let a = true; let b = false;");
        assert!(matches!(&body[0].kind, StmtKind::Let(_, Expr::Int(1))));
        assert!(matches!(&body[1].kind, StmtKind::Let(_, Expr::Int(0))));
    }
}
