//! Token definitions for the LIR lexer.

use std::fmt;

/// A lexical token together with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// The kinds of tokens recognized by the LIR lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),

    // Keywords.
    KwClass,
    KwField,
    KwFn,
    KwGlobal,
    KwLet,
    KwIf,
    KwElse,
    KwWhile,
    KwBreak,
    KwContinue,
    KwReturn,
    KwSync,
    KwSpawn,
    KwJoin,
    KwWait,
    KwNotify,
    KwNotifyAll,
    KwAssert,
    KwNew,
    KwNull,
    KwTrue,
    KwFalse,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AndAnd,
    OrOr,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident`, if it is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "class" => TokenKind::KwClass,
            "field" => TokenKind::KwField,
            "fn" => TokenKind::KwFn,
            "global" => TokenKind::KwGlobal,
            "let" => TokenKind::KwLet,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "return" => TokenKind::KwReturn,
            "sync" => TokenKind::KwSync,
            "spawn" => TokenKind::KwSpawn,
            "join" => TokenKind::KwJoin,
            "wait" => TokenKind::KwWait,
            "notify" => TokenKind::KwNotify,
            "notify_all" => TokenKind::KwNotifyAll,
            "assert" => TokenKind::KwAssert,
            "new" => TokenKind::KwNew,
            "null" => TokenKind::KwNull,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Ident(name) => return write!(f, "identifier `{name}`"),
            TokenKind::Int(v) => return write!(f, "integer `{v}`"),
            TokenKind::KwClass => "`class`",
            TokenKind::KwField => "`field`",
            TokenKind::KwFn => "`fn`",
            TokenKind::KwGlobal => "`global`",
            TokenKind::KwLet => "`let`",
            TokenKind::KwIf => "`if`",
            TokenKind::KwElse => "`else`",
            TokenKind::KwWhile => "`while`",
            TokenKind::KwBreak => "`break`",
            TokenKind::KwContinue => "`continue`",
            TokenKind::KwReturn => "`return`",
            TokenKind::KwSync => "`sync`",
            TokenKind::KwSpawn => "`spawn`",
            TokenKind::KwJoin => "`join`",
            TokenKind::KwWait => "`wait`",
            TokenKind::KwNotify => "`notify`",
            TokenKind::KwNotifyAll => "`notify_all`",
            TokenKind::KwAssert => "`assert`",
            TokenKind::KwNew => "`new`",
            TokenKind::KwNull => "`null`",
            TokenKind::KwTrue => "`true`",
            TokenKind::KwFalse => "`false`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LBracket => "`[`",
            TokenKind::RBracket => "`]`",
            TokenKind::Comma => "`,`",
            TokenKind::Semi => "`;`",
            TokenKind::Dot => "`.`",
            TokenKind::Assign => "`=`",
            TokenKind::Plus => "`+`",
            TokenKind::Minus => "`-`",
            TokenKind::Star => "`*`",
            TokenKind::Slash => "`/`",
            TokenKind::Percent => "`%`",
            TokenKind::Amp => "`&`",
            TokenKind::Pipe => "`|`",
            TokenKind::Caret => "`^`",
            TokenKind::Shl => "`<<`",
            TokenKind::Shr => "`>>`",
            TokenKind::AndAnd => "`&&`",
            TokenKind::OrOr => "`||`",
            TokenKind::Bang => "`!`",
            TokenKind::Lt => "`<`",
            TokenKind::Le => "`<=`",
            TokenKind::Gt => "`>`",
            TokenKind::Ge => "`>=`",
            TokenKind::EqEq => "`==`",
            TokenKind::Ne => "`!=`",
            TokenKind::Eof => "end of input",
        };
        f.write_str(s)
    }
}
