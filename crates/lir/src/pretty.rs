//! Human-readable printing of lowered programs, for debugging and tests.

use crate::ir::*;
use std::fmt::{self, Write as _};

/// Wraps a [`Program`] to render its IR as text.
///
/// ```
/// # fn main() -> Result<(), lir::Error> {
/// let p = lir::parse("fn main() { let x = 1 + 2; }")?;
/// let text = lir::pretty::program(&p);
/// assert!(text.contains("fn main"));
/// # Ok(())
/// # }
/// ```
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for class in &p.classes {
        let fields: Vec<&str> = class
            .fields
            .iter()
            .map(|f| p.field_names[f.index()].as_str())
            .collect();
        let _ = writeln!(out, "class {} {{ {} }}", class.name, fields.join(", "));
    }
    for global in &p.globals {
        let _ = writeln!(out, "global {global};");
    }
    for (i, func) in p.funcs.iter().enumerate() {
        let _ = writeln!(
            out,
            "fn {}(params: {}, regs: {}) {{  // f{i}",
            func.name, func.params, func.nregs
        );
        for (b, block) in func.blocks.iter().enumerate() {
            let _ = writeln!(out, "  b{b}:");
            for instr in &block.instrs {
                let _ = writeln!(out, "    {}", InstrDisplay { p, instr });
            }
            let _ = writeln!(out, "    {}", TermDisplay(&block.term));
        }
        let _ = writeln!(out, "}}");
    }
    out
}

struct InstrDisplay<'a> {
    p: &'a Program,
    instr: &'a Instr,
}

impl fmt::Display for InstrDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.p;
        match self.instr {
            Instr::Move { dst, src } => write!(f, "{dst} = {src}"),
            Instr::Un { dst, op, src } => write!(f, "{dst} = {op}{src}"),
            Instr::Bin { dst, op, lhs, rhs } => write!(f, "{dst} = {lhs} {op} {rhs}"),
            Instr::New { dst, class } => {
                write!(f, "{dst} = new {}", p.classes[class.index()].name)
            }
            Instr::NewArray { dst, len } => write!(f, "{dst} = new [{len}]"),
            Instr::GetField { dst, obj, field } => {
                write!(f, "{dst} = {obj}.{}", p.field_names[field.index()])
            }
            Instr::SetField { obj, field, value } => {
                write!(f, "{obj}.{} = {value}", p.field_names[field.index()])
            }
            Instr::GetElem { dst, arr, idx } => write!(f, "{dst} = {arr}[{idx}]"),
            Instr::SetElem { arr, idx, value } => write!(f, "{arr}[{idx}] = {value}"),
            Instr::GetGlobal { dst, global } => {
                write!(f, "{dst} = @{}", p.globals[global.index()])
            }
            Instr::SetGlobal { global, value } => {
                write!(f, "@{} = {value}", p.globals[global.index()])
            }
            Instr::Call { dst, func, args } => {
                if let Some(dst) = dst {
                    write!(f, "{dst} = ")?;
                }
                write!(f, "call {}({})", p.funcs[func.index()].name, Args(args))
            }
            Instr::Intrinsic { dst, intr, args } => {
                if let Some(dst) = dst {
                    write!(f, "{dst} = ")?;
                }
                write!(f, "{intr}({})", Args(args))
            }
            Instr::Spawn { dst, func, args } => {
                write!(
                    f,
                    "{dst} = spawn {}({})",
                    p.funcs[func.index()].name,
                    Args(args)
                )
            }
            Instr::Join { handle } => write!(f, "join {handle}"),
            Instr::MonitorEnter { obj } => write!(f, "monitor_enter {obj}"),
            Instr::MonitorExit { obj } => write!(f, "monitor_exit {obj}"),
            Instr::Wait { obj } => write!(f, "wait {obj}"),
            Instr::Notify { obj, all: false } => write!(f, "notify {obj}"),
            Instr::Notify { obj, all: true } => write!(f, "notify_all {obj}"),
            Instr::Assert { cond } => write!(f, "assert {cond}"),
        }
    }
}

struct TermDisplay<'a>(&'a Terminator);

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Terminator::Jump(bb) => write!(f, "jump {bb}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "branch {cond} ? {then_bb} : {else_bb}"),
            Terminator::Ret(None) => write!(f, "ret"),
            Terminator::Ret(Some(v)) => write!(f, "ret {v}"),
        }
    }
}

struct Args<'a>(&'a [Operand]);

impl fmt::Display for Args<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_every_instruction_form() {
        let p = crate::parse(
            "class C { field v; }
             global g;
             fn w(o) { sync (o) { o.v = o.v + 1; wait(o); notify(o); notify_all(o); } }
             fn main() {
                 let o = new C();
                 let a = new [4];
                 a[0] = 1;
                 let x = a[0];
                 g = o;
                 let t = spawn w(o);
                 join t;
                 let h = hash(x);
                 print(h);
                 assert(x == 1);
                 let n = -x;
                 let b = !x;
                 if (b) { print(b); }
             }",
        )
        .unwrap();
        let text = super::program(&p);
        for needle in [
            "class C",
            "global g;",
            "monitor_enter",
            "monitor_exit",
            "wait",
            "notify",
            "notify_all",
            "spawn",
            "join",
            "hash(",
            "print(",
            "assert",
            "new [",
            "branch",
            "ret",
            "@g",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
