//! Lowering from the AST to three-address IR.

use crate::ast::{self, Expr, Item, LValue, Stmt, StmtKind};
use crate::error::{Error, ErrorKind};
use crate::ir::*;
use std::collections::HashMap;

/// Lowers parsed items into an IR [`Program`].
pub fn lower(items: &[Item]) -> Result<Program, Error> {
    let mut ctx = Ctx::default();

    // Pass 1: collect declarations so uses can be resolved in any order.
    for item in items {
        match item {
            Item::Class(decl) => {
                if ctx.class_ids.contains_key(&decl.name) {
                    return Err(err(decl.line, format!("duplicate class `{}`", decl.name)));
                }
                let mut fields = Vec::new();
                for field in &decl.fields {
                    let id = ctx.intern_field(field);
                    if fields.contains(&id) {
                        return Err(err(
                            decl.line,
                            format!("duplicate field `{field}` in class `{}`", decl.name),
                        ));
                    }
                    fields.push(id);
                }
                ctx.class_ids
                    .insert(decl.name.clone(), ClassId(ctx.classes.len() as u32));
                ctx.classes.push(Class {
                    name: decl.name.clone(),
                    fields,
                });
            }
            Item::Global(name, line) => {
                if ctx.global_ids.contains_key(name) {
                    return Err(err(*line, format!("duplicate global `{name}`")));
                }
                ctx.global_ids
                    .insert(name.clone(), GlobalId(ctx.globals.len() as u32));
                ctx.globals.push(name.clone());
            }
            Item::Fn(decl) => {
                if ctx.func_ids.contains_key(&decl.name) {
                    return Err(err(decl.line, format!("duplicate function `{}`", decl.name)));
                }
                if Intrinsic::from_name(&decl.name).is_some() {
                    return Err(err(
                        decl.line,
                        format!("function `{}` shadows an intrinsic", decl.name),
                    ));
                }
                ctx.func_ids
                    .insert(decl.name.clone(), FuncId(ctx.func_sigs.len() as u32));
                ctx.func_sigs.push(decl.params.len());
            }
        }
    }

    // Pass 2: lower function bodies.
    let mut funcs = Vec::new();
    for item in items {
        if let Item::Fn(decl) = item {
            funcs.push(FuncLowerer::new(&ctx, decl).lower()?);
        }
    }

    let entry = ctx.func_ids.get("main").copied();
    Ok(Program {
        classes: ctx.classes,
        field_names: ctx.field_names,
        globals: ctx.globals,
        funcs,
        entry,
    })
}

fn err(line: u32, message: impl Into<String>) -> Error {
    Error::new(ErrorKind::Lower, line, message)
}

#[derive(Default)]
struct Ctx {
    classes: Vec<Class>,
    class_ids: HashMap<String, ClassId>,
    field_names: Vec<String>,
    field_ids: HashMap<String, FieldId>,
    globals: Vec<String>,
    global_ids: HashMap<String, GlobalId>,
    func_ids: HashMap<String, FuncId>,
    func_sigs: Vec<usize>,
}

impl Ctx {
    fn intern_field(&mut self, name: &str) -> FieldId {
        if let Some(&id) = self.field_ids.get(name) {
            return id;
        }
        let id = FieldId(self.field_names.len() as u32);
        self.field_names.push(name.to_owned());
        self.field_ids.insert(name.to_owned(), id);
        id
    }
}

struct BlockBuilder {
    instrs: Vec<Instr>,
    lines: Vec<u32>,
    term: Option<(Terminator, u32)>,
}

struct LoopCtx {
    head: BlockId,
    exit: BlockId,
    /// Depth of the sync stack when the loop body was entered; `break` and
    /// `continue` release monitors acquired above this depth.
    sync_depth: usize,
}

struct FuncLowerer<'a> {
    ctx: &'a Ctx,
    decl: &'a ast::FnDecl,
    blocks: Vec<BlockBuilder>,
    current: BlockId,
    next_reg: u32,
    scopes: Vec<HashMap<String, Reg>>,
    loops: Vec<LoopCtx>,
    /// Temp registers holding monitors of enclosing `sync` blocks.
    syncs: Vec<Reg>,
}

impl<'a> FuncLowerer<'a> {
    fn new(ctx: &'a Ctx, decl: &'a ast::FnDecl) -> Self {
        let mut scope = HashMap::new();
        for (i, param) in decl.params.iter().enumerate() {
            scope.insert(param.clone(), Reg(i as u32));
        }
        Self {
            ctx,
            decl,
            blocks: vec![BlockBuilder {
                instrs: Vec::new(),
                lines: Vec::new(),
                term: None,
            }],
            current: BlockId(0),
            next_reg: decl.params.len() as u32,
            scopes: vec![scope],
            loops: Vec::new(),
            syncs: Vec::new(),
        }
    }

    fn lower(mut self) -> Result<Func, Error> {
        self.lower_stmts(&self.decl.body)?;
        // Fall-off-the-end and dead blocks return null.
        for block in &mut self.blocks {
            if block.term.is_none() {
                block.term = Some((Terminator::Ret(None), self.decl.line));
            }
        }
        Ok(Func {
            name: self.decl.name.clone(),
            params: self.decl.params.len() as u32,
            nregs: self.next_reg,
            blocks: self
                .blocks
                .into_iter()
                .map(|b| {
                    let (term, term_line) = b.term.expect("terminator filled above");
                    Block {
                        instrs: b.instrs,
                        lines: b.lines,
                        term,
                        term_line,
                    }
                })
                .collect(),
            line: self.decl.line,
        })
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockBuilder {
            instrs: Vec::new(),
            lines: Vec::new(),
            term: None,
        });
        id
    }

    fn emit(&mut self, instr: Instr, line: u32) {
        let block = &mut self.blocks[self.current.index()];
        if block.term.is_some() {
            // Unreachable code after return/break; drop it silently.
            return;
        }
        block.instrs.push(instr);
        block.lines.push(line);
    }

    fn terminate(&mut self, term: Terminator, line: u32) {
        let block = &mut self.blocks[self.current.index()];
        if block.term.is_none() {
            block.term = Some((term, line));
        }
    }

    fn switch_to(&mut self, bb: BlockId) {
        self.current = bb;
    }

    fn lookup_local(&self, name: &str) -> Option<Reg> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), Error> {
        self.scopes.push(HashMap::new());
        for stmt in stmts {
            self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), Error> {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::Let(name, value) => {
                let src = self.lower_expr(value, line)?;
                let dst = self.fresh();
                self.emit(Instr::Move { dst, src }, line);
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), dst);
            }
            StmtKind::Assign(lvalue, value) => match lvalue {
                LValue::Var(name) => {
                    if let Some(dst) = self.lookup_local(name) {
                        let src = self.lower_expr(value, line)?;
                        self.emit(Instr::Move { dst, src }, line);
                    } else if let Some(&global) = self.ctx.global_ids.get(name) {
                        let src = self.lower_expr(value, line)?;
                        self.emit(Instr::SetGlobal { global, value: src }, line);
                    } else {
                        return Err(err(line, format!("unknown variable `{name}`")));
                    }
                }
                LValue::Field(obj, field) => {
                    let obj = self.lower_expr(obj, line)?;
                    let value = self.lower_expr(value, line)?;
                    let field = self.field_id(field, line)?;
                    self.emit(Instr::SetField { obj, field, value }, line);
                }
                LValue::Elem(arr, idx) => {
                    let arr = self.lower_expr(arr, line)?;
                    let idx = self.lower_expr(idx, line)?;
                    let value = self.lower_expr(value, line)?;
                    self.emit(Instr::SetElem { arr, idx, value }, line);
                }
            },
            StmtKind::If(cond, then_body, else_body) => {
                let cond = self.lower_expr(cond, line)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let merge_bb = self.new_block();
                self.terminate(
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    },
                    line,
                );
                self.switch_to(then_bb);
                self.lower_stmts(then_body)?;
                self.terminate(Terminator::Jump(merge_bb), line);
                self.switch_to(else_bb);
                self.lower_stmts(else_body)?;
                self.terminate(Terminator::Jump(merge_bb), line);
                self.switch_to(merge_bb);
            }
            StmtKind::While(cond, body) => {
                let head = self.new_block();
                self.terminate(Terminator::Jump(head), line);
                self.switch_to(head);
                let cond = self.lower_expr(cond, line)?;
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(
                    Terminator::Branch {
                        cond,
                        then_bb: body_bb,
                        else_bb: exit_bb,
                    },
                    line,
                );
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    head,
                    exit: exit_bb,
                    sync_depth: self.syncs.len(),
                });
                self.lower_stmts(body)?;
                self.loops.pop();
                self.terminate(Terminator::Jump(head), line);
                self.switch_to(exit_bb);
            }
            StmtKind::Sync(monitor, body) => {
                let src = self.lower_expr(monitor, line)?;
                // Pin the monitor in a dedicated temp so reassignment of the
                // source variable inside the body cannot unbalance exits.
                let pinned = self.fresh();
                self.emit(Instr::Move { dst: pinned, src }, line);
                self.emit(
                    Instr::MonitorEnter {
                        obj: Operand::Reg(pinned),
                    },
                    line,
                );
                self.syncs.push(pinned);
                self.lower_stmts(body)?;
                self.syncs.pop();
                self.emit(
                    Instr::MonitorExit {
                        obj: Operand::Reg(pinned),
                    },
                    line,
                );
            }
            StmtKind::Join(handle) => {
                let handle = self.lower_expr(handle, line)?;
                self.emit(Instr::Join { handle }, line);
            }
            StmtKind::Wait(monitor) => {
                let obj = self.lower_expr(monitor, line)?;
                self.emit(Instr::Wait { obj }, line);
            }
            StmtKind::Notify(monitor) => {
                let obj = self.lower_expr(monitor, line)?;
                self.emit(Instr::Notify { obj, all: false }, line);
            }
            StmtKind::NotifyAll(monitor) => {
                let obj = self.lower_expr(monitor, line)?;
                self.emit(Instr::Notify { obj, all: true }, line);
            }
            StmtKind::Assert(cond) => {
                let cond = self.lower_expr(cond, line)?;
                self.emit(Instr::Assert { cond }, line);
            }
            StmtKind::Return(value) => {
                let value = match value {
                    Some(v) => Some(self.lower_expr(v, line)?),
                    None => None,
                };
                // Release every monitor held by enclosing sync blocks.
                for &monitor in self.syncs.clone().iter().rev() {
                    self.emit(
                        Instr::MonitorExit {
                            obj: Operand::Reg(monitor),
                        },
                        line,
                    );
                }
                self.terminate(Terminator::Ret(value), line);
                let dead = self.new_block();
                self.switch_to(dead);
            }
            StmtKind::Break | StmtKind::Continue => {
                let is_break = matches!(stmt.kind, StmtKind::Break);
                let Some(ctx) = self.loops.last() else {
                    return Err(err(
                        line,
                        format!(
                            "`{}` outside of a loop",
                            if is_break { "break" } else { "continue" }
                        ),
                    ));
                };
                let target = if is_break { ctx.exit } else { ctx.head };
                let depth = ctx.sync_depth;
                for &monitor in self.syncs.clone()[depth..].iter().rev() {
                    self.emit(
                        Instr::MonitorExit {
                            obj: Operand::Reg(monitor),
                        },
                        line,
                    );
                }
                self.terminate(Terminator::Jump(target), line);
                let dead = self.new_block();
                self.switch_to(dead);
            }
            StmtKind::Expr(expr) => {
                self.lower_expr_for_effect(expr, line)?;
            }
        }
        Ok(())
    }

    fn field_id(&self, name: &str, line: u32) -> Result<FieldId, Error> {
        self.ctx
            .field_ids
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown field `{name}` (no class declares it)")))
    }

    fn lower_expr_for_effect(&mut self, expr: &Expr, line: u32) -> Result<(), Error> {
        match expr {
            Expr::Call(name, args) => {
                self.lower_call(name, args, line, false)?;
            }
            Expr::Spawn(..) => {
                self.lower_expr(expr, line)?;
            }
            _ => {
                // Evaluate for possible faults (e.g. a null field read), then
                // discard the result.
                self.lower_expr(expr, line)?;
            }
        }
        Ok(())
    }

    fn lower_expr(&mut self, expr: &Expr, line: u32) -> Result<Operand, Error> {
        match expr {
            Expr::Int(v) => Ok(Operand::Const(*v)),
            Expr::Null => Ok(Operand::Null),
            Expr::Var(name) => {
                if let Some(reg) = self.lookup_local(name) {
                    Ok(Operand::Reg(reg))
                } else if let Some(&global) = self.ctx.global_ids.get(name) {
                    let dst = self.fresh();
                    self.emit(Instr::GetGlobal { dst, global }, line);
                    Ok(Operand::Reg(dst))
                } else {
                    Err(err(line, format!("unknown variable `{name}`")))
                }
            }
            Expr::Field(obj, field) => {
                let obj = self.lower_expr(obj, line)?;
                let field = self.field_id(field, line)?;
                let dst = self.fresh();
                self.emit(Instr::GetField { dst, obj, field }, line);
                Ok(Operand::Reg(dst))
            }
            Expr::Elem(arr, idx) => {
                let arr = self.lower_expr(arr, line)?;
                let idx = self.lower_expr(idx, line)?;
                let dst = self.fresh();
                self.emit(Instr::GetElem { dst, arr, idx }, line);
                Ok(Operand::Reg(dst))
            }
            Expr::Unary(op, inner) => {
                if let (ast::UnOp::Neg, Expr::Int(v)) = (op, inner.as_ref()) {
                    return Ok(Operand::Const(v.wrapping_neg()));
                }
                let src = self.lower_expr(inner, line)?;
                let dst = self.fresh();
                self.emit(Instr::Un { dst, op: *op, src }, line);
                Ok(Operand::Reg(dst))
            }
            Expr::Binary(op, lhs, rhs) => {
                let lhs = self.lower_expr(lhs, line)?;
                let rhs = self.lower_expr(rhs, line)?;
                let dst = self.fresh();
                self.emit(
                    Instr::Bin {
                        dst,
                        op: *op,
                        lhs,
                        rhs,
                    },
                    line,
                );
                Ok(Operand::Reg(dst))
            }
            Expr::And(lhs, rhs) | Expr::Or(lhs, rhs) => {
                let is_and = matches!(expr, Expr::And(..));
                let dst = self.fresh();
                let cond = self.lower_expr(lhs, line)?;
                let rhs_bb = self.new_block();
                let short_bb = self.new_block();
                let end_bb = self.new_block();
                let (then_bb, else_bb) = if is_and {
                    (rhs_bb, short_bb)
                } else {
                    (short_bb, rhs_bb)
                };
                self.terminate(
                    Terminator::Branch {
                        cond,
                        then_bb,
                        else_bb,
                    },
                    line,
                );
                self.switch_to(rhs_bb);
                let rhs_val = self.lower_expr(rhs, line)?;
                self.emit(
                    Instr::Bin {
                        dst,
                        op: ast::BinOp::Ne,
                        lhs: rhs_val,
                        rhs: Operand::Const(0),
                    },
                    line,
                );
                self.terminate(Terminator::Jump(end_bb), line);
                self.switch_to(short_bb);
                self.emit(
                    Instr::Move {
                        dst,
                        src: Operand::Const(if is_and { 0 } else { 1 }),
                    },
                    line,
                );
                self.terminate(Terminator::Jump(end_bb), line);
                self.switch_to(end_bb);
                Ok(Operand::Reg(dst))
            }
            Expr::Call(name, args) => {
                let result = self.lower_call(name, args, line, true)?;
                result.ok_or_else(|| {
                    err(line, format!("`{name}` does not produce a value"))
                })
            }
            Expr::Spawn(name, args) => {
                let func = self.resolve_func(name, args.len(), line)?;
                let args = self.lower_args(args, line)?;
                let dst = self.fresh();
                self.emit(Instr::Spawn { dst, func, args }, line);
                Ok(Operand::Reg(dst))
            }
            Expr::New(class) => {
                let class = self
                    .ctx
                    .class_ids
                    .get(class)
                    .copied()
                    .ok_or_else(|| err(line, format!("unknown class `{class}`")))?;
                let dst = self.fresh();
                self.emit(Instr::New { dst, class }, line);
                Ok(Operand::Reg(dst))
            }
            Expr::NewArray(len) => {
                let len = self.lower_expr(len, line)?;
                let dst = self.fresh();
                self.emit(Instr::NewArray { dst, len }, line);
                Ok(Operand::Reg(dst))
            }
        }
    }

    fn resolve_func(&self, name: &str, argc: usize, line: u32) -> Result<FuncId, Error> {
        let func = self
            .ctx
            .func_ids
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown function `{name}`")))?;
        let expected = self.ctx.func_sigs[func.index()];
        if expected != argc {
            return Err(err(
                line,
                format!("`{name}` expects {expected} argument(s), got {argc}"),
            ));
        }
        Ok(func)
    }

    fn lower_args(&mut self, args: &[Expr], line: u32) -> Result<Vec<Operand>, Error> {
        args.iter().map(|a| self.lower_expr(a, line)).collect()
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
        want_value: bool,
    ) -> Result<Option<Operand>, Error> {
        if let Some(intr) = Intrinsic::from_name(name) {
            if args.len() != intr.arg_count() {
                return Err(err(
                    line,
                    format!(
                        "intrinsic `{name}` expects {} argument(s), got {}",
                        intr.arg_count(),
                        args.len()
                    ),
                ));
            }
            let args = self.lower_args(args, line)?;
            let dst = if intr.has_result() {
                Some(self.fresh())
            } else {
                None
            };
            self.emit(Instr::Intrinsic { dst, intr, args }, line);
            return Ok(dst.map(Operand::Reg));
        }

        let func = self.resolve_func(name, args.len(), line)?;
        let args = self.lower_args(args, line)?;
        let dst = if want_value { Some(self.fresh()) } else { None };
        self.emit(Instr::Call { dst, func, args }, line);
        Ok(dst.map(Operand::Reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_items;

    fn lower_src(src: &str) -> Result<Program, Error> {
        lower(&parse_items(src).unwrap())
    }

    #[test]
    fn interns_fields_across_classes() {
        let p = lower_src("class A { field x; } class B { field x; field y; }").unwrap();
        assert_eq!(p.field_names, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(p.classes[0].fields, vec![FieldId(0)]);
        assert_eq!(p.classes[1].fields, vec![FieldId(0), FieldId(1)]);
    }

    #[test]
    fn resolves_entry_point() {
        let p = lower_src("fn helper() {} fn main() {}").unwrap();
        assert_eq!(p.entry, Some(FuncId(1)));
        assert_eq!(p.funcs[1].name, "main");
    }

    #[test]
    fn missing_main_is_allowed() {
        let p = lower_src("fn helper() {}").unwrap();
        assert_eq!(p.entry, None);
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = lower_src("fn main() { let x = y; }").unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Lower);
        assert!(e.message().contains('y'));
    }

    #[test]
    fn rejects_wrong_arity() {
        let e = lower_src("fn f(a) {} fn main() { f(); }").unwrap_err();
        assert!(e.message().contains("expects 1"));
    }

    #[test]
    fn rejects_wrong_intrinsic_arity() {
        let e = lower_src("fn main() { let x = rand(); }").unwrap_err();
        assert!(e.message().contains("rand"));
    }

    #[test]
    fn rejects_print_in_expression_position() {
        let e = lower_src("fn main() { let x = print(1); }").unwrap_err();
        assert!(e.message().contains("does not produce a value"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = lower_src("fn main() { break; }").unwrap_err();
        assert!(e.message().contains("break"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let e = lower_src("fn f() {} fn f() {}").unwrap_err();
        assert!(e.message().contains("duplicate function"));
    }

    #[test]
    fn rejects_shadowing_intrinsic() {
        let e = lower_src("fn hash(x) {}").unwrap_err();
        assert!(e.message().contains("intrinsic"));
    }

    #[test]
    fn globals_lower_to_global_instrs() {
        let p = lower_src("global g; fn main() { g = 1; let x = g; }").unwrap();
        let block = &p.funcs[0].blocks[0];
        assert!(block
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::SetGlobal { .. })));
        assert!(block
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::GetGlobal { .. })));
    }

    #[test]
    fn return_inside_sync_releases_monitor() {
        let p = lower_src(
            "global m; fn main() { sync (m) { return; } }",
        )
        .unwrap();
        // Find the block containing the Ret terminator and check a
        // MonitorExit precedes it.
        let func = &p.funcs[0];
        let ret_block = func
            .blocks
            .iter()
            .find(|b| matches!(b.term, Terminator::Ret(_)) && !b.instrs.is_empty())
            .expect("block with return");
        assert!(ret_block
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::MonitorExit { .. })));
    }

    #[test]
    fn break_inside_nested_sync_releases_inner_monitors_only() {
        let p = lower_src(
            "global m; global n;
             fn main() {
                 sync (m) {
                     while (1) {
                         sync (n) { break; }
                     }
                 }
             }",
        )
        .unwrap();
        // The block performing the break releases exactly one monitor (n).
        let func = &p.funcs[0];
        let mut found = false;
        for block in &func.blocks {
            let exits = block
                .instrs
                .iter()
                .filter(|i| matches!(i, Instr::MonitorExit { .. }))
                .count();
            if let Terminator::Jump(_) = block.term {
                if exits == 1
                    && block
                        .instrs
                        .iter()
                        .all(|i| !matches!(i, Instr::MonitorEnter { .. }))
                    && !block.instrs.is_empty()
                {
                    found = true;
                }
            }
        }
        assert!(found, "expected a break block releasing exactly one monitor");
    }

    #[test]
    fn short_circuit_and_produces_branch() {
        let p = lower_src("fn main() { let x = 1 && 2; }").unwrap();
        let has_branch = p.funcs[0]
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Branch { .. }));
        assert!(has_branch);
    }

    #[test]
    fn negative_literal_folds_to_constant() {
        let p = lower_src("fn main() { let x = -5; }").unwrap();
        let block = &p.funcs[0].blocks[0];
        assert!(block
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Move { src: Operand::Const(-5), .. })));
    }

    #[test]
    fn statement_level_call_has_no_destination() {
        let p = lower_src("fn f() {} fn main() { f(); }").unwrap();
        let block = &p.funcs[1].blocks[0];
        assert!(matches!(
            block.instrs[0],
            Instr::Call { dst: None, .. }
        ));
    }

    #[test]
    fn unreachable_code_after_return_is_dropped() {
        let p = lower_src("fn main() { return; let x = 1; }").unwrap();
        // The dead block exists but contains no Move for x=1... the Move is
        // emitted into the dead block, which is fine; the key invariant is
        // every block has a terminator.
        for b in &p.funcs[0].blocks {
            // Terminator exists by construction; validate() checks targets.
            let _ = &b.term;
        }
    }
}
