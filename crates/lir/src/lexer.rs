//! Hand-written lexer for LIR source text.

use crate::error::{Error, ErrorKind};
use crate::token::{Token, TokenKind};

/// Tokenizes `source`, returning tokens terminated by [`TokenKind::Eof`].
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1u32;

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                let start_line = line;
                pos += 2;
                loop {
                    if pos + 1 >= bytes.len() {
                        return Err(Error::new(
                            ErrorKind::Lex,
                            start_line,
                            "unterminated block comment",
                        ));
                    }
                    if bytes[pos] == b'*' && bytes[pos + 1] == b'/' {
                        pos += 2;
                        break;
                    }
                    if bytes[pos] == b'\n' {
                        line += 1;
                    }
                    pos += 1;
                }
            }
            b'0'..=b'9' => {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text = &source[start..pos];
                let value: i64 = text.parse().map_err(|_| {
                    Error::new(ErrorKind::Lex, line, format!("integer literal `{text}` overflows i64"))
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let text = &source[start..pos];
                let kind = TokenKind::keyword(text)
                    .unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
                tokens.push(Token { kind, line });
            }
            _ => {
                let (kind, width) = lex_punct(bytes, pos).ok_or_else(|| {
                    Error::new(
                        ErrorKind::Lex,
                        line,
                        format!("unexpected character `{}`", b as char),
                    )
                })?;
                tokens.push(Token { kind, line });
                pos += width;
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

fn lex_punct(bytes: &[u8], pos: usize) -> Option<(TokenKind, usize)> {
    let two = |a: u8, b: u8| bytes[pos] == a && bytes.get(pos + 1) == Some(&b);
    if two(b'<', b'<') {
        return Some((TokenKind::Shl, 2));
    }
    if two(b'>', b'>') {
        return Some((TokenKind::Shr, 2));
    }
    if two(b'<', b'=') {
        return Some((TokenKind::Le, 2));
    }
    if two(b'>', b'=') {
        return Some((TokenKind::Ge, 2));
    }
    if two(b'=', b'=') {
        return Some((TokenKind::EqEq, 2));
    }
    if two(b'!', b'=') {
        return Some((TokenKind::Ne, 2));
    }
    if two(b'&', b'&') {
        return Some((TokenKind::AndAnd, 2));
    }
    if two(b'|', b'|') {
        return Some((TokenKind::OrOr, 2));
    }
    let kind = match bytes[pos] {
        b'(' => TokenKind::LParen,
        b')' => TokenKind::RParen,
        b'{' => TokenKind::LBrace,
        b'}' => TokenKind::RBrace,
        b'[' => TokenKind::LBracket,
        b']' => TokenKind::RBracket,
        b',' => TokenKind::Comma,
        b';' => TokenKind::Semi,
        b'.' => TokenKind::Dot,
        b'=' => TokenKind::Assign,
        b'+' => TokenKind::Plus,
        b'-' => TokenKind::Minus,
        b'*' => TokenKind::Star,
        b'/' => TokenKind::Slash,
        b'%' => TokenKind::Percent,
        b'&' => TokenKind::Amp,
        b'|' => TokenKind::Pipe,
        b'^' => TokenKind::Caret,
        b'!' => TokenKind::Bang,
        b'<' => TokenKind::Lt,
        b'>' => TokenKind::Gt,
        _ => return None,
    };
    Some((kind, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                TokenKind::KwLet,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("<= >= == != && || << >>"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("1 // comment\n /* multi\nline */ 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("let x = @;").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Lex);
        assert!(err.message().contains('@'));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        let err = lex("/* never closed").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Lex);
    }

    #[test]
    fn rejects_overflowing_integer() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Lex);
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(
            kinds("while notify_all spawn"),
            vec![
                TokenKind::KwWhile,
                TokenKind::KwNotifyAll,
                TokenKind::KwSpawn,
                TokenKind::Eof,
            ]
        );
    }
}
