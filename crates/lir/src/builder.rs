//! Programmatic construction of IR programs.
//!
//! Most workloads in this repository are written in LIR surface syntax, but
//! generated programs (parameter sweeps, property tests) are easier to build
//! directly. The builder mirrors the IR one-to-one and performs the same
//! validation as [`crate::parse`] on [`ProgramBuilder::build`].
//!
//! ```
//! use lir::{ProgramBuilder, Operand, Terminator};
//! use lir::ast::BinOp;
//!
//! # fn main() -> Result<(), lir::Error> {
//! let mut pb = ProgramBuilder::new();
//! let g = pb.add_global("sum");
//! let mut f = pb.func("main", 0);
//! let tmp = f.fresh();
//! f.get_global(tmp, g);
//! let tmp2 = f.fresh();
//! f.bin(tmp2, BinOp::Add, tmp.into(), Operand::Const(1));
//! f.set_global(g, tmp2.into());
//! f.ret(None);
//! pb.finish_func(f);
//! let program = pb.build()?;
//! assert_eq!(program.entry, program.func_by_name("main"));
//! # Ok(())
//! # }
//! ```

use crate::ast::{BinOp, UnOp};
use crate::error::Error;
use crate::ir::*;
use crate::validate::validate;

/// Incrementally builds a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    field_names: Vec<String>,
    globals: Vec<String>,
    funcs: Vec<Func>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a class with the given field names, interning them.
    pub fn add_class(&mut self, name: &str, fields: &[&str]) -> ClassId {
        let field_ids = fields.iter().map(|f| self.intern_field(f)).collect();
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: name.to_owned(),
            fields: field_ids,
        });
        id
    }

    /// Interns a field name, returning its id.
    pub fn intern_field(&mut self, name: &str) -> FieldId {
        if let Some(i) = self.field_names.iter().position(|f| f == name) {
            return FieldId(i as u32);
        }
        let id = FieldId(self.field_names.len() as u32);
        self.field_names.push(name.to_owned());
        id
    }

    /// Declares a global cell.
    pub fn add_global(&mut self, name: &str) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(name.to_owned());
        id
    }

    /// Reserves a function slot so mutually recursive functions can refer to
    /// each other before their bodies are built. The returned [`FuncId`] is
    /// valid immediately; the body must later be supplied via a
    /// [`FuncBuilder`] created with [`ProgramBuilder::func`] using the same
    /// name and finished with [`ProgramBuilder::finish_func`].
    pub fn declare_func(&mut self, name: &str, params: u32) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Func {
            name: name.to_owned(),
            params,
            nregs: params,
            blocks: Vec::new(),
            line: 0,
        });
        id
    }

    /// Starts building a function body. If `name` was previously declared
    /// with [`ProgramBuilder::declare_func`], the body fills that slot;
    /// otherwise a new slot is appended.
    pub fn func(&mut self, name: &str, params: u32) -> FuncBuilder {
        let id = match self.funcs.iter().position(|f| f.name == name) {
            Some(i) => FuncId(i as u32),
            None => self.declare_func(name, params),
        };
        FuncBuilder::new(id, name, params)
    }

    /// Installs a finished function body.
    ///
    /// # Panics
    ///
    /// Panics if the builder's function slot no longer exists.
    pub fn finish_func(&mut self, fb: FuncBuilder) {
        let id = fb.id;
        let func = fb.into_func();
        self.funcs[id.index()] = func;
    }

    /// Finalizes and validates the program. `main`, if declared, becomes the
    /// entry point.
    ///
    /// # Errors
    ///
    /// Returns a validation error if the constructed IR is malformed.
    pub fn build(self) -> Result<Program, Error> {
        let entry = self
            .funcs
            .iter()
            .position(|f| f.name == "main")
            .map(|i| FuncId(i as u32));
        let program = Program {
            classes: self.classes,
            field_names: self.field_names,
            globals: self.globals,
            funcs: self.funcs,
            entry,
        };
        validate(&program)?;
        Ok(program)
    }
}

/// Builds one function's blocks and instructions.
#[derive(Debug)]
pub struct FuncBuilder {
    id: FuncId,
    name: String,
    params: u32,
    next_reg: u32,
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
    current: usize,
}

impl FuncBuilder {
    fn new(id: FuncId, name: &str, params: u32) -> Self {
        Self {
            id,
            name: name.to_owned(),
            params,
            next_reg: params,
            blocks: vec![(Vec::new(), None)],
            current: 0,
        }
    }

    /// The id this function will occupy in the final program.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.params, "param {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh register.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Creates a new (empty, unterminated) block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Makes `bb` the target of subsequent emissions.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.current = bb.index();
    }

    /// Appends a raw instruction to the current block.
    pub fn emit(&mut self, instr: Instr) {
        self.blocks[self.current].0.push(instr);
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Operand) {
        self.emit(Instr::Move { dst, src });
    }

    /// `dst = lhs <op> rhs`
    pub fn bin(&mut self, dst: Reg, op: BinOp, lhs: Operand, rhs: Operand) {
        self.emit(Instr::Bin { dst, op, lhs, rhs });
    }

    /// `dst = <op> src`
    pub fn un(&mut self, dst: Reg, op: UnOp, src: Operand) {
        self.emit(Instr::Un { dst, op, src });
    }

    /// `dst = new class`
    pub fn new_object(&mut self, dst: Reg, class: ClassId) {
        self.emit(Instr::New { dst, class });
    }

    /// `dst = new [len]`
    pub fn new_array(&mut self, dst: Reg, len: Operand) {
        self.emit(Instr::NewArray { dst, len });
    }

    /// `dst = obj.field`
    pub fn get_field(&mut self, dst: Reg, obj: Operand, field: FieldId) {
        self.emit(Instr::GetField { dst, obj, field });
    }

    /// `obj.field = value`
    pub fn set_field(&mut self, obj: Operand, field: FieldId, value: Operand) {
        self.emit(Instr::SetField { obj, field, value });
    }

    /// `dst = arr[idx]`
    pub fn get_elem(&mut self, dst: Reg, arr: Operand, idx: Operand) {
        self.emit(Instr::GetElem { dst, arr, idx });
    }

    /// `arr[idx] = value`
    pub fn set_elem(&mut self, arr: Operand, idx: Operand, value: Operand) {
        self.emit(Instr::SetElem { arr, idx, value });
    }

    /// `dst = @global`
    pub fn get_global(&mut self, dst: Reg, global: GlobalId) {
        self.emit(Instr::GetGlobal { dst, global });
    }

    /// `@global = value`
    pub fn set_global(&mut self, global: GlobalId, value: Operand) {
        self.emit(Instr::SetGlobal { global, value });
    }

    /// `dst = call func(args)`
    pub fn call(&mut self, dst: Option<Reg>, func: FuncId, args: Vec<Operand>) {
        self.emit(Instr::Call { dst, func, args });
    }

    /// `dst = intr(args)`
    pub fn intrinsic(&mut self, dst: Option<Reg>, intr: Intrinsic, args: Vec<Operand>) {
        self.emit(Instr::Intrinsic { dst, intr, args });
    }

    /// `dst = spawn func(args)`
    pub fn spawn(&mut self, dst: Reg, func: FuncId, args: Vec<Operand>) {
        self.emit(Instr::Spawn { dst, func, args });
    }

    /// `join handle`
    pub fn join(&mut self, handle: Operand) {
        self.emit(Instr::Join { handle });
    }

    /// `monitor_enter obj`
    pub fn monitor_enter(&mut self, obj: Operand) {
        self.emit(Instr::MonitorEnter { obj });
    }

    /// `monitor_exit obj`
    pub fn monitor_exit(&mut self, obj: Operand) {
        self.emit(Instr::MonitorExit { obj });
    }

    /// `assert cond`
    pub fn assert(&mut self, cond: Operand) {
        self.emit(Instr::Assert { cond });
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, bb: BlockId) {
        self.terminate(Terminator::Jump(bb));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    fn terminate(&mut self, term: Terminator) {
        let slot = &mut self.blocks[self.current].1;
        if slot.is_none() {
            *slot = Some(term);
        }
    }

    fn into_func(self) -> Func {
        let blocks = self
            .blocks
            .into_iter()
            .map(|(instrs, term)| {
                let n = instrs.len();
                Block {
                    instrs,
                    lines: vec![0; n],
                    term: term.unwrap_or(Terminator::Ret(None)),
                    term_line: 0,
                }
            })
            .collect();
        Func {
            name: self.name,
            params: self.params,
            nregs: self.next_reg,
            blocks,
            line: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_counter_loop() {
        let mut pb = ProgramBuilder::new();
        let g = pb.add_global("n");
        let mut f = pb.func("main", 0);
        let i = f.fresh();
        f.mov(i, Operand::Const(0));
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(head);
        f.switch_to(head);
        let c = f.fresh();
        f.bin(c, BinOp::Lt, i.into(), Operand::Const(10));
        f.branch(c.into(), body, exit);
        f.switch_to(body);
        let t = f.fresh();
        f.get_global(t, g);
        let t2 = f.fresh();
        f.bin(t2, BinOp::Add, t.into(), Operand::Const(1));
        f.set_global(g, t2.into());
        let i2 = f.fresh();
        f.bin(i2, BinOp::Add, i.into(), Operand::Const(1));
        f.mov(i, i2.into());
        f.jump(head);
        f.switch_to(exit);
        f.ret(None);
        pb.finish_func(f);
        let p = pb.build().unwrap();
        assert_eq!(p.funcs[0].blocks.len(), 4);
        assert!(p.entry.is_some());
    }

    #[test]
    fn mutual_recursion_via_declare() {
        let mut pb = ProgramBuilder::new();
        let even = pb.declare_func("even", 1);
        let odd = pb.declare_func("odd", 1);

        let mut f = pb.func("even", 1);
        let r = f.fresh();
        f.call(Some(r), odd, vec![f.param(0).into()]);
        f.ret(Some(r.into()));
        pb.finish_func(f);

        let mut f = pb.func("odd", 1);
        let r = f.fresh();
        f.call(Some(r), even, vec![f.param(0).into()]);
        f.ret(Some(r.into()));
        pb.finish_func(f);

        let p = pb.build().unwrap();
        assert_eq!(p.funcs.len(), 2);
    }

    #[test]
    fn build_rejects_invalid_ir() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.func("main", 0);
        // Register never allocated via fresh().
        f.mov(Reg(9), Operand::Const(1));
        f.ret(None);
        pb.finish_func(f);
        assert!(pb.build().is_err());
    }
}
