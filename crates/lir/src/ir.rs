//! Three-address IR with explicit basic blocks.
//!
//! Every shared-memory event the Light paper instruments is a distinct
//! instruction here: field/array/global accesses, monitor enter/exit,
//! `wait`/`notify`, and thread `spawn`/`join`. The interpreter in
//! `light-runtime` fires an instrumentation hook per such instruction.

use crate::ast::{BinOp, UnOp};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The underlying index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap().to_ascii_lowercase(), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual register local to one function.
    Reg
);
id_type!(
    /// An interned field name. Fields are interned at name granularity
    /// (Leap's static location abstraction), shared across classes.
    FieldId
);
id_type!(
    /// A named global heap cell.
    GlobalId
);
id_type!(
    /// A class (record type) declaration.
    ClassId
);
id_type!(
    /// A function.
    FuncId
);
id_type!(
    /// A basic block within a function.
    BlockId
);

/// A stable identifier for one static instruction: used by bug reports and
/// by the static analyses to name program points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId {
    pub func: FuncId,
    pub block: BlockId,
    /// Index into the block's instruction list; `u32::MAX` denotes the
    /// block terminator.
    pub idx: u32,
}

impl InstrId {
    /// The sentinel index used for a block terminator.
    pub const TERM_IDX: u32 = u32::MAX;

    /// Packs into one word (`func << 48 | block << 32 | idx`) for compact
    /// event records (the flight recorder's `site` field). Function and
    /// block ids are bounded to 16 bits — far beyond any program in this
    /// repository — and asserted in debug builds.
    pub fn pack(self) -> u64 {
        debug_assert!(self.func.0 < (1 << 16) && self.block.0 < (1 << 16));
        (u64::from(self.func.0) << 48) | (u64::from(self.block.0) << 32) | u64::from(self.idx)
    }

    /// Inverse of [`InstrId::pack`].
    pub fn unpack(word: u64) -> InstrId {
        InstrId {
            func: FuncId((word >> 48) as u32),
            block: BlockId(((word >> 32) & 0xffff) as u32),
            idx: (word & 0xffff_ffff) as u32,
        }
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.idx == Self::TERM_IDX {
            write!(f, "{}:{}:term", self.func, self.block)
        } else {
            write!(f, "{}:{}:{}", self.func, self.block, self.idx)
        }
    }
}

/// An instruction operand: a register, an integer constant, or `null`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    Reg(Reg),
    Const(i64),
    Null,
}

impl Operand {
    /// The register this operand reads, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the operand is a compile-time constant (including `null`).
    pub fn is_const(self) -> bool {
        !matches!(self, Operand::Reg(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Const(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(v) => write!(f, "{v}"),
            Operand::Null => write!(f, "null"),
        }
    }
}

/// Built-in operations that are not user functions.
///
/// The map operations model `java.util.HashMap`-style collections as a
/// single opaque heap location per map object — the construct the paper
/// identifies as defeating computation-based replay (CLAP), because solvers
/// cannot model the hash computation. [`Intrinsic::is_solver_opaque`]
/// reports exactly that set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Current time; nondeterministic. Recorded and substituted on replay.
    Time,
    /// `rand(bound)` — uniform in `[0, bound)`; nondeterministic, recorded.
    Rand,
    /// An opaque hash of its argument (deterministic but non-linear).
    Hash,
    /// Debug printing; evaluated for effect.
    Print,
    /// Allocates an empty map object.
    MapNew,
    /// `map_get(m, k)` — `null` when absent. Reads the map location.
    MapGet,
    /// `map_put(m, k, v)` — read-modify-write of the map location.
    MapPut,
    /// `map_remove(m, k)` — read-modify-write of the map location.
    MapRemove,
    /// `map_contains(m, k)` — 0/1. Reads the map location.
    MapContains,
    /// `map_size(m)` — reads the map location.
    MapSize,
    /// `len(a)` — array length (immutable; not a shared access).
    ArrayLen,
}

impl Intrinsic {
    /// Resolves a surface-syntax call name to an intrinsic.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "time" => Intrinsic::Time,
            "rand" => Intrinsic::Rand,
            "hash" => Intrinsic::Hash,
            "print" => Intrinsic::Print,
            "map_new" => Intrinsic::MapNew,
            "map_get" => Intrinsic::MapGet,
            "map_put" => Intrinsic::MapPut,
            "map_remove" => Intrinsic::MapRemove,
            "map_contains" => Intrinsic::MapContains,
            "map_size" => Intrinsic::MapSize,
            "len" => Intrinsic::ArrayLen,
            _ => return None,
        })
    }

    /// The exact number of arguments the intrinsic takes.
    pub fn arg_count(self) -> usize {
        match self {
            Intrinsic::Time | Intrinsic::MapNew => 0,
            Intrinsic::Rand
            | Intrinsic::Hash
            | Intrinsic::Print
            | Intrinsic::MapSize
            | Intrinsic::ArrayLen => 1,
            Intrinsic::MapGet | Intrinsic::MapRemove | Intrinsic::MapContains => 2,
            Intrinsic::MapPut => 3,
        }
    }

    /// Whether the intrinsic produces a value.
    pub fn has_result(self) -> bool {
        !matches!(self, Intrinsic::Print)
    }

    /// Whether an offline symbolic-value analysis (the CLAP-style baseline)
    /// lacks solver support for this operation. Matches the paper's
    /// observation that `HashMap`-style data types and hash computations are
    /// outside linear-arithmetic solver theories.
    pub fn is_solver_opaque(self) -> bool {
        matches!(
            self,
            Intrinsic::Hash
                | Intrinsic::MapNew
                | Intrinsic::MapGet
                | Intrinsic::MapPut
                | Intrinsic::MapRemove
                | Intrinsic::MapContains
                | Intrinsic::MapSize
        )
    }

    /// Whether the intrinsic reads nondeterministic input (recorded during
    /// the original run and substituted during replay — Section 3.2).
    pub fn is_nondeterministic(self) -> bool {
        matches!(self, Intrinsic::Time | Intrinsic::Rand)
    }

    /// The surface-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Time => "time",
            Intrinsic::Rand => "rand",
            Intrinsic::Hash => "hash",
            Intrinsic::Print => "print",
            Intrinsic::MapNew => "map_new",
            Intrinsic::MapGet => "map_get",
            Intrinsic::MapPut => "map_put",
            Intrinsic::MapRemove => "map_remove",
            Intrinsic::MapContains => "map_contains",
            Intrinsic::MapSize => "map_size",
            Intrinsic::ArrayLen => "len",
        }
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    Move {
        dst: Reg,
        src: Operand,
    },
    Un {
        dst: Reg,
        op: UnOp,
        src: Operand,
    },
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    New {
        dst: Reg,
        class: ClassId,
    },
    NewArray {
        dst: Reg,
        len: Operand,
    },
    GetField {
        dst: Reg,
        obj: Operand,
        field: FieldId,
    },
    SetField {
        obj: Operand,
        field: FieldId,
        value: Operand,
    },
    GetElem {
        dst: Reg,
        arr: Operand,
        idx: Operand,
    },
    SetElem {
        arr: Operand,
        idx: Operand,
        value: Operand,
    },
    GetGlobal {
        dst: Reg,
        global: GlobalId,
    },
    SetGlobal {
        global: GlobalId,
        value: Operand,
    },
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args: Vec<Operand>,
    },
    Intrinsic {
        dst: Option<Reg>,
        intr: Intrinsic,
        args: Vec<Operand>,
    },
    Spawn {
        dst: Reg,
        func: FuncId,
        args: Vec<Operand>,
    },
    Join {
        handle: Operand,
    },
    MonitorEnter {
        obj: Operand,
    },
    MonitorExit {
        obj: Operand,
    },
    Wait {
        obj: Operand,
    },
    Notify {
        obj: Operand,
        all: bool,
    },
    Assert {
        cond: Operand,
    },
}

impl Instr {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Instr::Move { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::New { dst, .. }
            | Instr::NewArray { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::GetElem { dst, .. }
            | Instr::GetGlobal { dst, .. }
            | Instr::Spawn { dst, .. } => Some(dst),
            Instr::Call { dst, .. } | Instr::Intrinsic { dst, .. } => dst,
            _ => None,
        }
    }

    /// All operands this instruction reads.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Instr::Move { src, .. } | Instr::Un { src, .. } => vec![*src],
            Instr::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::New { .. } | Instr::GetGlobal { .. } => vec![],
            Instr::NewArray { len, .. } => vec![*len],
            Instr::GetField { obj, .. } => vec![*obj],
            Instr::SetField { obj, value, .. } => vec![*obj, *value],
            Instr::GetElem { arr, idx, .. } => vec![*arr, *idx],
            Instr::SetElem { arr, idx, value } => vec![*arr, *idx, *value],
            Instr::SetGlobal { value, .. } => vec![*value],
            Instr::Call { args, .. }
            | Instr::Intrinsic { args, .. }
            | Instr::Spawn { args, .. } => args.clone(),
            Instr::Join { handle } => vec![*handle],
            Instr::MonitorEnter { obj }
            | Instr::MonitorExit { obj }
            | Instr::Wait { obj }
            | Instr::Notify { obj, .. } => vec![*obj],
            Instr::Assert { cond } => vec![*cond],
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    Jump(BlockId),
    Branch {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    Ret(Option<Operand>),
}

impl Terminator {
    /// The blocks this terminator may transfer control to.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(bb) => vec![bb],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb, else_bb],
            Terminator::Ret(_) => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
///
/// `lines` holds the 1-based source line of each instruction (0 for
/// builder-constructed code) and is kept parallel to `instrs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub instrs: Vec<Instr>,
    pub lines: Vec<u32>,
    pub term: Terminator,
    pub term_line: u32,
}

/// A function body in three-address form. Parameters occupy registers
/// `0..params`.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    pub name: String,
    pub params: u32,
    pub nregs: u32,
    pub blocks: Vec<Block>,
    pub line: u32,
}

impl Func {
    /// The entry block (always block 0).
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterates over `(InstrId, &Instr)` for every instruction in the
    /// function, in block order.
    pub fn instr_ids<'a>(
        &'a self,
        func_id: FuncId,
    ) -> impl Iterator<Item = (InstrId, &'a Instr)> + 'a {
        self.blocks.iter().enumerate().flat_map(move |(b, block)| {
            block.instrs.iter().enumerate().map(move |(i, instr)| {
                (
                    InstrId {
                        func: func_id,
                        block: BlockId(b as u32),
                        idx: i as u32,
                    },
                    instr,
                )
            })
        })
    }
}

/// A class declaration: an ordered list of interned field names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    pub name: String,
    pub fields: Vec<FieldId>,
}

impl Class {
    /// The slot (storage offset) of `field` within instances of this class.
    pub fn slot_of(&self, field: FieldId) -> Option<usize> {
        self.fields.iter().position(|&f| f == field)
    }
}

/// A complete lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub classes: Vec<Class>,
    /// `FieldId` → field name.
    pub field_names: Vec<String>,
    /// `GlobalId` → global name.
    pub globals: Vec<String>,
    pub funcs: Vec<Func>,
    /// The `main` function, if declared.
    pub entry: Option<FuncId>,
}

impl Program {
    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Looks up an interned field name.
    pub fn field_by_name(&self, name: &str) -> Option<FieldId> {
        self.field_names
            .iter()
            .position(|f| f == name)
            .map(|i| FieldId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The function record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.index()]
    }

    /// The class record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// The instruction named by `id`, or `None` for a terminator id or an
    /// out-of-range id.
    pub fn instr(&self, id: InstrId) -> Option<&Instr> {
        self.funcs
            .get(id.func.index())?
            .blocks
            .get(id.block.index())?
            .instrs
            .get(id.idx as usize)
    }

    /// The source line of the instruction named by `id` (0 if unknown).
    pub fn line_of(&self, id: InstrId) -> u32 {
        self.funcs
            .get(id.func.index())
            .and_then(|f| f.blocks.get(id.block.index()))
            .map(|b| {
                if id.idx == InstrId::TERM_IDX {
                    b.term_line
                } else {
                    b.lines.get(id.idx as usize).copied().unwrap_or(0)
                }
            })
            .unwrap_or(0)
    }

    /// Total instruction count across all functions (terminators excluded).
    pub fn instr_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.instrs.len())
            .sum()
    }
}
