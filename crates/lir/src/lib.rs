//! LIR — a small concurrent imperative language used as the execution
//! substrate for the Light record/replay reproduction.
//!
//! The Light paper (PLDI'15) instruments Java bytecode. This crate provides
//! the analogous substrate in Rust: a textual language with Java-like
//! concurrency primitives (`sync` blocks, `wait`/`notify`, `spawn`/`join`),
//! a hand-written lexer and recursive-descent parser, and a lowering pass to
//! a three-address IR with explicit basic blocks. Field reads/writes, array
//! accesses, monitor operations and thread operations are all first-class IR
//! instructions, which is exactly the event granularity Light records.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), lir::Error> {
//! let program = lir::parse(
//!     r#"
//!     global counter;
//!
//!     fn worker(n) {
//!         let i = 0;
//!         while (i < n) {
//!             counter = counter + 1;
//!             i = i + 1;
//!         }
//!     }
//!
//!     fn main(n) {
//!         counter = 0;
//!         let t1 = spawn worker(n);
//!         let t2 = spawn worker(n);
//!         join t1;
//!         join t2;
//!     }
//!     "#,
//! )?;
//! assert_eq!(program.funcs.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod builder;
mod error;
pub mod ir;
mod lexer;
mod lower;
mod parser;
pub mod pretty;
mod token;
mod validate;

pub use ast::{BinOp, UnOp};
pub use builder::{FuncBuilder, ProgramBuilder};
pub use error::{Error, ErrorKind};
pub use ir::{
    BlockId, ClassId, FieldId, FuncId, GlobalId, Instr, InstrId, Intrinsic, Operand, Program,
    Reg, Terminator,
};
pub use validate::validate;

/// Parses LIR source text into a validated IR [`Program`].
///
/// This runs the full front-end: lexing, parsing, lowering to three-address
/// IR, and validation.
///
/// # Errors
///
/// Returns an [`Error`] describing the first lexical, syntactic, semantic
/// (e.g. unknown variable) or validation problem encountered, with the
/// source line on which it occurred.
pub fn parse(source: &str) -> Result<Program, Error> {
    let items = parser::parse_items(source)?;
    let program = lower::lower(&items)?;
    validate::validate(&program)?;
    Ok(program)
}

/// Parses LIR source text into an AST without lowering.
///
/// Useful for tooling that wants to inspect or transform the surface syntax.
///
/// # Errors
///
/// Returns an [`Error`] on lexical or syntactic problems.
pub fn parse_ast(source: &str) -> Result<Vec<ast::Item>, Error> {
    parser::parse_items(source)
}
