//! Property tests for the LIR front-end: arbitrary inputs never panic the
//! lexer/parser, and structured random programs survive the full pipeline.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The front end must never panic, whatever bytes arrive: it returns
    /// a program or an error.
    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = lir::parse(&src);
    }

    /// ...including inputs built from the language's own token vocabulary,
    /// which exercise deeper parser paths than random unicode.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("fn"), Just("let"), Just("while"), Just("if"), Just("else"),
                Just("sync"), Just("spawn"), Just("join"), Just("wait"),
                Just("global"), Just("class"), Just("field"), Just("return"),
                Just("x"), Just("y"), Just("main"), Just("("), Just(")"),
                Just("{"), Just("}"), Just(";"), Just("="), Just("=="),
                Just("+"), Just("*"), Just("<"), Just("1"), Just("42"),
                Just(","), Just("."), Just("["), Just("]"), Just("&&"),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = lir::parse(&src);
    }

    /// Structured straight-line arithmetic: parse, validate, and check the
    /// interpreter agrees with a reference evaluation.
    #[test]
    fn straight_line_arithmetic_matches_reference(
        ops in proptest::collection::vec((0usize..3, 0usize..3, -50i64..50), 1..20)
    ) {
        // Three locals; each op: a = b <op+const> pattern.
        let mut src = String::from("fn main() {\n let v0 = 1; let v1 = 2; let v2 = 3;\n");
        let mut model = [1i64, 2, 3];
        for (i, (dst, srcv, k)) in ops.iter().enumerate() {
            let line = format!(" v{dst} = v{srcv} + {k};\n");
            src.push_str(&line);
            model[*dst] = model[*srcv] + k;
            let _ = i;
        }
        src.push_str(&format!(" assert(v0 == {});\n", model[0]));
        src.push_str(&format!(" assert(v1 == {});\n", model[1]));
        src.push_str(&format!(" assert(v2 == {});\n", model[2]));
        src.push_str("}\n");
        let program = std::sync::Arc::new(lir::parse(&src).expect("generated program parses"));
        let out = light_runtime::run(&program, &[], light_runtime::ExecConfig::default())
            .expect("setup");
        prop_assert!(out.completed(), "fault {:?} in\n{src}", out.fault);
    }
}
