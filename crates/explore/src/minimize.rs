//! Delta-debugging minimization of schedule decision traces.
//!
//! The repro of a found bug is a [`DecisionTrace`] — a run-length-encoded
//! sequence of scheduling decisions whose segment boundaries are exactly
//! the context switches. Removing a segment removes a preemption point
//! (playback merges the neighbours), so the classic ddmin loop over
//! segments shrinks the repro to a near-minimal set of context switches
//! while a caller-supplied probe re-checks that the bug still manifests.

use light_runtime::{DecisionTrace, Segment};

/// The result of one minimization.
#[derive(Debug, Clone)]
pub struct MinimizeResult {
    /// The smallest failing trace found.
    pub trace: DecisionTrace,
    /// Probe runs spent.
    pub iterations: u64,
}

/// Re-normalizes a segment list after deletions: adjacent segments of the
/// same thread merge into one (their boundary was a removed preemption).
fn normalize(segments: &[Segment]) -> DecisionTrace {
    let mut trace = DecisionTrace::new();
    for s in segments {
        for _ in 0..s.picks {
            trace.push(s.tid);
        }
    }
    trace
}

/// ddmin over the segments of `trace`. `probe` must run the candidate
/// schedule and report whether the bug still manifests; it is called at
/// most `budget` times. The returned trace always fails (it is either the
/// input or a probed candidate).
///
/// The caller should verify `probe(trace)` holds before minimizing; this
/// function assumes it.
pub fn minimize(
    trace: &DecisionTrace,
    budget: u64,
    mut probe: impl FnMut(&DecisionTrace) -> bool,
) -> MinimizeResult {
    let mut current: Vec<Segment> = trace.segments.clone();
    let mut iterations = 0u64;
    let mut chunks = 2usize;

    while current.len() >= 2 && iterations < budget {
        let chunk_len = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() && iterations < budget {
            let end = (start + chunk_len).min(current.len());
            // Candidate: the trace with segments [start, end) removed.
            let mut kept: Vec<Segment> = Vec::with_capacity(current.len() - (end - start));
            kept.extend_from_slice(&current[..start]);
            kept.extend_from_slice(&current[end..]);
            let candidate = normalize(&kept);
            iterations += 1;
            if !candidate.is_empty() && probe(&candidate) {
                current = candidate.segments;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunks >= current.len() {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }

    MinimizeResult {
        trace: normalize(&current),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::Tid;

    fn trace_of(tids: &[u32]) -> DecisionTrace {
        // 0 encodes ROOT; k>0 encodes ROOT.child(k-1).
        let mut t = DecisionTrace::new();
        for &k in tids {
            let tid = if k == 0 {
                Tid::ROOT
            } else {
                Tid::ROOT.child(k - 1)
            };
            t.push(tid);
        }
        t
    }

    #[test]
    fn normalize_merges_adjacent_segments() {
        let t = trace_of(&[1, 1, 2, 2, 1]);
        assert_eq!(t.len(), 3);
        let mut segs = t.segments.clone();
        segs.remove(1); // drop the middle thread-2 segment
        let merged = normalize(&segs);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.total_picks(), 3);
    }

    #[test]
    fn minimize_keeps_needed_segment() {
        // The "bug" manifests iff thread 3 is ever scheduled.
        let t = trace_of(&[1, 1, 2, 3, 1, 2, 2, 1, 2]);
        let needs_t3 = Tid::ROOT.child(2);
        let result = minimize(&t, 1000, |cand| {
            cand.segments.iter().any(|s| s.tid == needs_t3)
        });
        assert!(result.trace.segments.iter().any(|s| s.tid == needs_t3));
        assert!(result.trace.len() < t.len());
        assert!(result.iterations > 0);
    }

    #[test]
    fn minimize_finds_two_segment_core() {
        // Bug requires a 2→1 ordering somewhere in the trace.
        let t = trace_of(&[1, 2, 1, 2, 1, 2, 1]);
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        let result = minimize(&t, 1000, |cand| {
            let pos2 = cand.segments.iter().position(|s| s.tid == t2);
            match pos2 {
                Some(p) => cand.segments[p..].iter().any(|s| s.tid == t1),
                None => false,
            }
        });
        assert_eq!(result.trace.len(), 2);
        assert_eq!(result.trace.segments[0].tid, t2);
        assert_eq!(result.trace.segments[1].tid, t1);
    }

    #[test]
    fn minimize_respects_budget() {
        let t = trace_of(&[1, 2, 1, 2, 1, 2, 1, 2, 1, 2]);
        let result = minimize(&t, 3, |_| false);
        assert_eq!(result.iterations, 3);
        assert_eq!(result.trace, t);
    }

    #[test]
    fn irreducible_trace_survives() {
        let t = trace_of(&[1, 2]);
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        let result = minimize(&t, 1000, |cand| {
            cand.segments.iter().any(|s| s.tid == t1)
                && cand.segments.iter().any(|s| s.tid == t2)
        });
        assert_eq!(result.trace, t);
    }
}
