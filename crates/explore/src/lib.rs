//! Systematic schedule exploration for Light.
//!
//! The Light pipeline (record → constraint build → IDL solve → controlled
//! replay) presumes a buggy *original run* exists. This crate finds those
//! runs: an [`Explorer`] drives the interpreter under a pluggable search
//! [`StrategyKind`] — chaos random walk, PCT-style randomized priorities,
//! or race-directed preemption — across a worker pool until a schedule
//! surfaces a program bug. The failing schedule is deterministic in its
//! seed, so the engine then:
//!
//! 1. **captures** it by re-running the exact seed with the Light recorder
//!    attached, producing a [`Recording`];
//! 2. **minimizes** the repro by delta-debugging the schedule's
//!    [`DecisionTrace`] (dropping context switches while the bug still
//!    manifests, see [`minimize`]);
//! 3. **validates** the minimized recording end-to-end through constraint
//!    build → solve → controlled replay, checking Theorem 1 correlation.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use light_explore::{ExploreConfig, Explorer, StrategyKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(lir::parse(
//!     "global x; global y;
//!      fn writer() { x = null; y = 1; x = 5; }
//!      fn reader() { if (y == 1) { let v = 1 / x; } }
//!      fn main() {
//!          x = 1;
//!          let t1 = spawn writer();
//!          let t2 = spawn reader();
//!          join t1; join t2;
//!      }",
//! )?);
//! let config = ExploreConfig {
//!     strategy: StrategyKind::Chaos,
//!     max_schedules: 500,
//!     ..ExploreConfig::default()
//! };
//! let outcome = Explorer::new(program).run(&[], &config);
//! let bug = outcome.found.expect("the race is found within the budget");
//! assert!(bug.recording.fault.is_some());
//! # Ok(())
//! # }
//! ```

mod minimize;
mod strategy;

pub use minimize::{minimize, MinimizeResult};
pub use strategy::{PctStrategy, RaceDirectedStrategy, StrategyKind};

use light_analysis::{change_point_candidates, RacyLocations};
use light_core::{ExploreProvenance, Light, Recording};
use light_obs::ExploreMetrics;
use light_runtime::{
    run, DecisionTrace, ExecConfig, ExploreScheduler, FaultReport, NondetMode, NullRecorder,
    RunOutcome, SchedulerSpec, ScriptedStrategy, Strategy,
};
use lir::Program;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of one exploration campaign.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    pub strategy: StrategyKind,
    /// Maximum schedules to try before giving up.
    pub max_schedules: u64,
    /// Concurrent search workers.
    pub workers: usize,
    /// First seed; schedule `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Wall-clock budget for the search phase.
    pub wall_limit: Duration,
    /// Whether to delta-debug the failing schedule before capture.
    pub minimize: bool,
    /// Probe-run budget for minimization.
    pub minimize_budget: u64,
    /// Validation replays of the captured recording (each runs the full
    /// solve → controlled-replay pipeline and checks correlation).
    pub replay_checks: u32,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            strategy: StrategyKind::Chaos,
            max_schedules: 2000,
            workers: 4,
            base_seed: 0,
            wall_limit: Duration::from_secs(120),
            minimize: true,
            minimize_budget: 400,
            replay_checks: 3,
        }
    }
}

/// A bug found by exploration, with its deterministic repro.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// The seed whose schedule surfaced the failure.
    pub seed: u64,
    /// The fault of the original (unminimized) failing run.
    pub fault: FaultReport,
    /// The failing schedule's decision trace as found.
    pub trace: DecisionTrace,
    /// The delta-debugged trace, when minimization ran and shrank it.
    pub minimized_trace: Option<DecisionTrace>,
    /// The captured recording (of the minimized schedule when available),
    /// with [`Recording::provenance`] stamped.
    pub recording: Recording,
    /// Validation outcomes: how many of the requested replay checks
    /// correlated per Theorem 1.
    pub replays_correlated: u32,
    pub replays_attempted: u32,
}

/// The result of one campaign.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The first failure found, if any surfaced within the budget.
    pub found: Option<FoundBug>,
    /// Campaign counters (schedules, failures, minimization effort, wall
    /// time) in the unified observability section.
    pub metrics: ExploreMetrics,
}

/// The exploration engine for one program.
pub struct Explorer {
    light: Light,
    racy: RacyLocations,
}

impl Explorer {
    /// Builds an explorer, running the static analyses once (the race
    /// pairs feed the race-directed strategy's preemption points).
    pub fn new(program: Arc<Program>) -> Self {
        let light = Light::new(program);
        let racy = change_point_candidates(&light.analysis().races);
        Self { light, racy }
    }

    /// The underlying Light instance (for custom replay options).
    pub fn light(&self) -> &Light {
        &self.light
    }

    /// Runs one probe schedule: strategy-driven serialized execution with
    /// no recorder attached. Returns the outcome and the decision trace.
    fn probe(&self, args: &[i64], seed: u64, strat: Box<dyn Strategy>) -> (Option<RunOutcome>, DecisionTrace) {
        let sched = Arc::new(ExploreScheduler::with_strategy(
            strat,
            light_runtime::HaltFlag::new(),
        ));
        let config = ExecConfig {
            recorder: Arc::new(NullRecorder),
            scheduler: SchedulerSpec::Explore(sched.clone()),
            policy: self.light.analysis().policy.clone(),
            nondet: NondetMode::Real { seed },
            ..ExecConfig::default()
        };
        let outcome = run(self.light.program(), args, config).ok();
        (outcome, sched.trace())
    }

    /// Whether a probe fault is "the same bug" as the reference fault for
    /// minimization purposes. Counters and values may shift when the
    /// schedule changes, but the kind and the faulting statement pin the
    /// bug down; deadlocks have no single statement and compare by kind.
    fn same_bug(reference: &FaultReport, candidate: &FaultReport) -> bool {
        candidate.kind == reference.kind
            && (reference.kind == light_runtime::FaultKind::Deadlock
                || candidate.instr == reference.instr)
    }

    /// Runs a full campaign: parallel search, first-failure capture,
    /// minimization, validation.
    pub fn run(&self, args: &[i64], config: &ExploreConfig) -> ExploreOutcome {
        let start = Instant::now();
        let mut metrics = ExploreMetrics::default();

        // --- Phase 1: parallel strategy-driven search ------------------
        let next = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let schedules_run = AtomicU64::new(0);
        let failures = AtomicU64::new(0);
        // (schedule index, seed, fault, trace) of the earliest failure.
        let first: Mutex<Option<(u64, u64, FaultReport, DecisionTrace)>> = Mutex::new(None);

        let workers = config.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Acquire) || start.elapsed() > config.wall_limit {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.max_schedules {
                        return;
                    }
                    let seed = config.base_seed + i;
                    let strat = config.strategy.build(seed, &self.racy);
                    let (outcome, trace) = self.probe(args, seed, strat);
                    schedules_run.fetch_add(1, Ordering::Relaxed);
                    let Some(outcome) = outcome else { return };
                    if let Some(fault) = outcome.program_bug() {
                        failures.fetch_add(1, Ordering::Relaxed);
                        let mut slot = first.lock().unwrap();
                        // Keep the earliest schedule index for determinism
                        // across worker interleavings.
                        if slot.as_ref().is_none_or(|(j, ..)| i < *j) {
                            *slot = Some((i, seed, fault.clone(), trace));
                        }
                        stop.store(true, Ordering::Release);
                    }
                });
            }
        });

        metrics.schedules = schedules_run.load(Ordering::Relaxed);
        metrics.failures = failures.load(Ordering::Relaxed);

        let Some((_, seed, fault, trace)) = first.into_inner().unwrap() else {
            metrics.wall_ns = start.elapsed().as_nanos() as u64;
            return ExploreOutcome {
                found: None,
                metrics,
            };
        };
        metrics.trace_segments = trace.len() as u64;

        // --- Phase 2: minimize the decision trace ----------------------
        let minimized_trace = if config.minimize {
            let result = minimize(&trace, config.minimize_budget, |cand| {
                let strat = Box::new(ScriptedStrategy::new(cand));
                let (outcome, _) = self.probe(args, seed, strat);
                outcome
                    .as_ref()
                    .and_then(|o| o.program_bug())
                    .is_some_and(|f| Self::same_bug(&fault, f))
            });
            metrics.minimize_iterations = result.iterations;
            if result.trace.len() < trace.len() {
                Some(result.trace)
            } else {
                None
            }
        } else {
            None
        };
        let capture_trace = minimized_trace.as_ref().unwrap_or(&trace);
        metrics.minimized_segments = capture_trace.len() as u64;

        // --- Phase 3: capture with the Light recorder attached ---------
        // Replaying the scripted trace is recorder-independent: gates fire
        // whether or not a recorder observes them, so the decisions — and
        // the fault — are those of the probe run.
        let sched = Arc::new(ExploreScheduler::with_strategy(
            Box::new(ScriptedStrategy::new(capture_trace)),
            light_runtime::HaltFlag::new(),
        ));
        let captured = self
            .light
            .record_with(args, SchedulerSpec::Explore(sched), seed);
        let (mut recording, capture_outcome) = match captured {
            Ok(pair) => pair,
            Err(_) => {
                // Setup errors cannot happen after successful probes
                // (same program, same args); treat as not found.
                metrics.wall_ns = start.elapsed().as_nanos() as u64;
                return ExploreOutcome {
                    found: None,
                    metrics,
                };
            }
        };
        let captured_fault = capture_outcome
            .program_bug()
            .cloned()
            .unwrap_or_else(|| fault.clone());
        recording.provenance = Some(ExploreProvenance {
            strategy: config.strategy.name().to_string(),
            seed,
            schedules: metrics.schedules,
            minimized: minimized_trace.is_some(),
            trace_segments: capture_trace.len() as u64,
        });

        // --- Phase 4: validate through solve → controlled replay -------
        let mut correlated = 0u32;
        for _ in 0..config.replay_checks {
            match self.light.replay(&recording) {
                Ok(report) if report.correlated => correlated += 1,
                _ => {}
            }
        }

        metrics.wall_ns = start.elapsed().as_nanos() as u64;
        ExploreOutcome {
            found: Some(FoundBug {
                seed,
                fault: captured_fault,
                trace,
                minimized_trace,
                recording,
                replays_correlated: correlated,
                replays_attempted: config.replay_checks,
            }),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn racy_program() -> Arc<Program> {
        Arc::new(
            lir::parse(
                "global x; global y;
                 fn writer() { x = null; y = 1; x = 5; }
                 fn reader() { if (y == 1) { let v = 1 / x; } }
                 fn main() {
                     x = 1;
                     let t1 = spawn writer();
                     let t2 = spawn reader();
                     join t1; join t2;
                 }",
            )
            .unwrap(),
        )
    }

    #[test]
    fn explorer_finds_and_validates_a_bug() {
        let explorer = Explorer::new(racy_program());
        let config = ExploreConfig {
            max_schedules: 500,
            workers: 2,
            replay_checks: 2,
            ..ExploreConfig::default()
        };
        let outcome = explorer.run(&[], &config);
        let bug = outcome.found.expect("bug surfaces within 500 schedules");
        assert!(bug.recording.fault.is_some());
        let prov = bug.recording.provenance.as_ref().unwrap();
        assert_eq!(prov.strategy, "chaos");
        assert_eq!(prov.seed, bug.seed);
        assert_eq!(bug.replays_correlated, 2);
        assert!(outcome.metrics.schedules > 0);
        if let Some(min) = &bug.minimized_trace {
            assert!(min.len() < bug.trace.len());
        }
    }

    #[test]
    fn campaign_without_bug_reports_none() {
        let program = Arc::new(
            lir::parse("fn main() { let a = 1 + 2; print(a); }").unwrap(),
        );
        let explorer = Explorer::new(program);
        let config = ExploreConfig {
            max_schedules: 5,
            workers: 1,
            ..ExploreConfig::default()
        };
        let outcome = explorer.run(&[], &config);
        assert!(outcome.found.is_none());
        assert_eq!(outcome.metrics.schedules, 5);
        assert_eq!(outcome.metrics.failures, 0);
    }
}
