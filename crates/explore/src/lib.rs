//! Systematic schedule exploration for Light.
//!
//! The Light pipeline (record → constraint build → IDL solve → controlled
//! replay) presumes a buggy *original run* exists. This crate finds those
//! runs: an [`Explorer`] drives the interpreter under a pluggable search
//! [`StrategyKind`] — chaos random walk, PCT-style randomized priorities,
//! or race-directed preemption — across a worker pool until a schedule
//! surfaces a program bug. The failing schedule is deterministic in its
//! seed, so the engine then:
//!
//! 1. **captures** it by re-running the exact seed with the Light recorder
//!    attached, producing a [`Recording`];
//! 2. **minimizes** the repro by delta-debugging the schedule's
//!    [`DecisionTrace`] (dropping context switches while the bug still
//!    manifests, see [`minimize`]);
//! 3. **validates** the minimized recording end-to-end through constraint
//!    build → solve → controlled replay, checking Theorem 1 correlation.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use light_explore::{ExploreConfig, Explorer, StrategyKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(lir::parse(
//!     "global x; global y;
//!      fn writer() { x = null; y = 1; x = 5; }
//!      fn reader() { if (y == 1) { let v = 1 / x; } }
//!      fn main() {
//!          x = 1;
//!          let t1 = spawn writer();
//!          let t2 = spawn reader();
//!          join t1; join t2;
//!      }",
//! )?);
//! let config = ExploreConfig {
//!     strategy: StrategyKind::Chaos,
//!     max_schedules: 500,
//!     ..ExploreConfig::default()
//! };
//! let outcome = Explorer::new(program).run(&[], &config);
//! let bug = outcome.found.expect("the race is found within the budget");
//! assert!(bug.recording.fault.is_some());
//! # Ok(())
//! # }
//! ```

mod minimize;
mod strategy;

pub use minimize::{minimize, MinimizeResult};
pub use strategy::{PctStrategy, RaceDirectedStrategy, StrategyKind};

use light_analysis::{change_point_candidates, RacyLocations};
use light_core::{ExploreProvenance, Light, Recording};
use light_obs::{ExploreMetrics, Progress, ProgressRecord};
use light_runtime::{
    run, DecisionTrace, ExecConfig, ExploreScheduler, FaultReport, NondetMode, NullRecorder,
    RunOutcome, SchedulerSpec, ScriptedStrategy, Strategy,
};
use lir::Program;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of one exploration campaign.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    pub strategy: StrategyKind,
    /// Maximum schedules to try before giving up.
    pub max_schedules: u64,
    /// Concurrent search workers.
    pub workers: usize,
    /// First seed; schedule `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Wall-clock budget for the search phase.
    pub wall_limit: Duration,
    /// Whether to delta-debug the failing schedule before capture.
    pub minimize: bool,
    /// Probe-run budget for minimization.
    pub minimize_budget: u64,
    /// Validation replays of the captured recording (each runs the full
    /// solve → controlled-replay pipeline and checks correlation).
    pub replay_checks: u32,
    /// Live telemetry: when enabled, a sampler thread emits one
    /// [`ProgressRecord`] per [`Progress::interval`] plus one per phase
    /// transition, for the whole campaign. Disabled by default.
    pub progress: Progress,
    /// Name of the target in progress records (program or corpus bug).
    pub label: String,
    /// Causal run id stamped into every progress record, joining the
    /// campaign's telemetry to the invocation's registry entry. Additive:
    /// records omit the key when unset.
    pub run_id: Option<String>,
    /// Soft memory-budget watchdog, in bytes (0 = disabled). When the
    /// process-wide [`light_obs::mem`] total crosses the budget, the
    /// progress sampler emits one `budget-exceeded` record carrying a
    /// per-subsystem breakdown in `detail`, then re-arms once usage
    /// drops below 90% of the budget. Observational only — the campaign
    /// is never aborted. Requires `progress` to be enabled (the sampler
    /// thread is the watchdog).
    pub memory_budget_bytes: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            strategy: StrategyKind::Chaos,
            max_schedules: 2000,
            workers: 4,
            base_seed: 0,
            wall_limit: Duration::from_secs(120),
            minimize: true,
            minimize_budget: 400,
            replay_checks: 3,
            progress: Progress::disabled(),
            label: String::new(),
            run_id: None,
            memory_budget_bytes: 0,
        }
    }
}

/// Campaign phases, in order, as reported in progress records.
const PHASES: [&str; 5] = ["search", "minimize", "capture", "validate", "done"];

/// Shared live counters the progress sampler reads while the campaign's
/// phases advance them.
struct CampaignPulse {
    start: Instant,
    /// Schedules executed so far, search probes plus minimization probes.
    schedules: AtomicU64,
    failures: AtomicU64,
    /// Index into [`PHASES`].
    phase: AtomicUsize,
    /// Hashes of distinct decision traces seen during search.
    distinct: Mutex<HashSet<u64>>,
    budget_schedules: u64,
    strategy: &'static str,
    label: String,
    run_id: Option<String>,
}

impl CampaignPulse {
    fn sample(&self) -> ProgressRecord {
        let elapsed = self.start.elapsed();
        let schedules = self.schedules.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        let rate = if secs > 0.0 {
            schedules as f64 / secs
        } else {
            0.0
        };
        let phase = PHASES[self.phase.load(Ordering::Relaxed).min(PHASES.len() - 1)];
        // ETA only makes sense while the schedule budget is being burned.
        let eta_ms = (phase == "search" && rate > 0.0).then(|| {
            let left = self.budget_schedules.saturating_sub(schedules);
            (left as f64 / rate * 1000.0) as u64
        });
        ProgressRecord {
            target: self.label.clone(),
            strategy: self.strategy.to_string(),
            phase: phase.to_string(),
            elapsed_ms: elapsed.as_millis() as u64,
            schedules,
            schedules_per_sec: rate,
            distinct_traces: self.distinct.lock().unwrap().len() as u64,
            failures: self.failures.load(Ordering::Relaxed),
            budget_schedules: self.budget_schedules,
            eta_ms,
            run_id: self.run_id.clone(),
            detail: None,
        }
    }

    fn enter_phase(&self, idx: usize, progress: &Progress) {
        self.phase.store(idx, Ordering::Relaxed);
        if progress.enabled() {
            progress.emit(&self.sample());
        }
    }
}

fn trace_hash(trace: &DecisionTrace) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for seg in &trace.segments {
        seg.tid.raw().hash(&mut h);
        seg.picks.hash(&mut h);
    }
    h.finish()
}

/// A bug found by exploration, with its deterministic repro.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// The seed whose schedule surfaced the failure.
    pub seed: u64,
    /// The fault of the original (unminimized) failing run.
    pub fault: FaultReport,
    /// The failing schedule's decision trace as found.
    pub trace: DecisionTrace,
    /// The delta-debugged trace, when minimization ran and shrank it.
    pub minimized_trace: Option<DecisionTrace>,
    /// The captured recording (of the minimized schedule when available),
    /// with [`Recording::provenance`] stamped.
    pub recording: Recording,
    /// Validation outcomes: how many of the requested replay checks
    /// correlated per Theorem 1.
    pub replays_correlated: u32,
    pub replays_attempted: u32,
}

/// The result of one campaign.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The first failure found, if any surfaced within the budget.
    pub found: Option<FoundBug>,
    /// Campaign counters (schedules, failures, minimization effort, wall
    /// time) in the unified observability section.
    pub metrics: ExploreMetrics,
}

/// The exploration engine for one program.
pub struct Explorer {
    light: Light,
    racy: RacyLocations,
}

impl Explorer {
    /// Builds an explorer, running the static analyses once (the race
    /// pairs feed the race-directed strategy's preemption points).
    ///
    /// The explorer's replay pipeline runs with turbo solving and a
    /// campaign-wide [`light_core::ComponentCache`]: the repeated
    /// validation replays (and the doctor's probe solves, when driven
    /// through this instance) re-solve only the components that changed
    /// between candidate recordings.
    pub fn new(program: Arc<Program>) -> Self {
        let mut light = Light::new(program);
        if let Some(turbo) = &mut light.replay_options_mut().turbo {
            turbo.cache = Some(light_core::ComponentCache::new());
        }
        let racy = change_point_candidates(&light.analysis().races);
        Self { light, racy }
    }

    /// The underlying Light instance (for custom replay options).
    pub fn light(&self) -> &Light {
        &self.light
    }

    /// Mutable access to the underlying Light instance — used by drivers
    /// to tune replay options (turbo workers, timeouts) for a campaign.
    pub fn light_mut(&mut self) -> &mut Light {
        &mut self.light
    }

    /// Runs one probe schedule: strategy-driven serialized execution with
    /// no recorder attached. Returns the outcome and the decision trace.
    fn probe(&self, args: &[i64], seed: u64, strat: Box<dyn Strategy>) -> (Option<RunOutcome>, DecisionTrace) {
        let sched = Arc::new(ExploreScheduler::with_strategy(
            strat,
            light_runtime::HaltFlag::new(),
        ));
        let config = ExecConfig {
            recorder: Arc::new(NullRecorder),
            scheduler: SchedulerSpec::Explore(sched.clone()),
            policy: self.light.analysis().policy.clone(),
            nondet: NondetMode::Real { seed },
            ..ExecConfig::default()
        };
        let outcome = run(self.light.program(), args, config).ok();
        (outcome, sched.trace())
    }

    /// Whether a probe fault is "the same bug" as the reference fault for
    /// minimization purposes. Counters and values may shift when the
    /// schedule changes, but the kind and the faulting statement pin the
    /// bug down; deadlocks have no single statement and compare by kind.
    fn same_bug(reference: &FaultReport, candidate: &FaultReport) -> bool {
        candidate.kind == reference.kind
            && (reference.kind == light_runtime::FaultKind::Deadlock
                || candidate.instr == reference.instr)
    }

    /// Runs a full campaign: parallel search, first-failure capture,
    /// minimization, validation.
    pub fn run(&self, args: &[i64], config: &ExploreConfig) -> ExploreOutcome {
        let start = Instant::now();
        let mut metrics = ExploreMetrics::default();

        // Live-telemetry state plus its sampler thread. The pulse is
        // plain shared state; with progress disabled nothing reads it
        // periodically and the only cost is a few relaxed increments.
        let pulse = Arc::new(CampaignPulse {
            start,
            schedules: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            phase: AtomicUsize::new(0),
            distinct: Mutex::new(HashSet::new()),
            budget_schedules: config.max_schedules,
            strategy: config.strategy.name(),
            label: config.label.clone(),
            run_id: config.run_id.clone(),
        });
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let sampler = config.progress.enabled().then(|| {
            let pulse = pulse.clone();
            let progress = config.progress.clone();
            let stop = sampler_stop.clone();
            let budget = config.memory_budget_bytes;
            std::thread::spawn(move || {
                let tick = progress.interval().max(Duration::from_millis(10));
                // Soft memory watchdog: edge-triggered so a long breach
                // emits one record, re-arming below 90% of the budget.
                let rearm = budget - budget / 10;
                let mut armed = true;
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    progress.emit(&pulse.sample());
                    if budget == 0 {
                        continue;
                    }
                    let total = light_obs::mem::global().total_bytes();
                    if armed && total > budget {
                        armed = false;
                        let snap = light_obs::mem::global().snapshot();
                        let breakdown: Vec<String> = snap
                            .subsystems
                            .iter()
                            .filter(|(_, s)| s.bytes > 0)
                            .map(|(name, s)| format!("{name}={}", s.bytes))
                            .collect();
                        let mut rec = pulse.sample();
                        rec.phase = "budget-exceeded".into();
                        rec.detail = Some(format!(
                            "total={total} budget={budget} breakdown: {}",
                            breakdown.join(" ")
                        ));
                        progress.emit(&rec);
                    } else if !armed && total < rearm {
                        armed = true;
                    }
                }
            })
        });
        // Every exit path must stop the sampler and stamp "done".
        let finish = |pulse: &CampaignPulse| {
            pulse.enter_phase(PHASES.len() - 1, &config.progress);
            sampler_stop.store(true, Ordering::Release);
            if let Some(h) = sampler {
                let _ = h.join();
            }
        };

        // --- Phase 1: parallel strategy-driven search ------------------
        let next = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let schedules_run = AtomicU64::new(0);
        let failures = AtomicU64::new(0);
        // (schedule index, seed, fault, trace) of the earliest failure.
        let first: Mutex<Option<(u64, u64, FaultReport, DecisionTrace)>> = Mutex::new(None);

        let workers = config.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Acquire) || start.elapsed() > config.wall_limit {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= config.max_schedules {
                        return;
                    }
                    let seed = config.base_seed + i;
                    let strat = config.strategy.build(seed, &self.racy);
                    let (outcome, trace) = self.probe(args, seed, strat);
                    schedules_run.fetch_add(1, Ordering::Relaxed);
                    pulse.schedules.fetch_add(1, Ordering::Relaxed);
                    pulse.distinct.lock().unwrap().insert(trace_hash(&trace));
                    let Some(outcome) = outcome else { return };
                    if let Some(fault) = outcome.program_bug() {
                        failures.fetch_add(1, Ordering::Relaxed);
                        pulse.failures.fetch_add(1, Ordering::Relaxed);
                        let mut slot = first.lock().unwrap();
                        // Keep the earliest schedule index for determinism
                        // across worker interleavings.
                        if slot.as_ref().is_none_or(|(j, ..)| i < *j) {
                            *slot = Some((i, seed, fault.clone(), trace));
                        }
                        stop.store(true, Ordering::Release);
                    }
                });
            }
        });

        metrics.schedules = schedules_run.load(Ordering::Relaxed);
        metrics.failures = failures.load(Ordering::Relaxed);

        let Some((_, seed, fault, trace)) = first.into_inner().unwrap() else {
            metrics.wall_ns = start.elapsed().as_nanos() as u64;
            finish(&pulse);
            return ExploreOutcome {
                found: None,
                metrics,
            };
        };
        metrics.trace_segments = trace.len() as u64;

        // --- Phase 2: minimize the decision trace ----------------------
        pulse.enter_phase(1, &config.progress);
        let minimized_trace = if config.minimize {
            let result = minimize(&trace, config.minimize_budget, |cand| {
                let strat = Box::new(ScriptedStrategy::new(cand));
                let (outcome, _) = self.probe(args, seed, strat);
                pulse.schedules.fetch_add(1, Ordering::Relaxed);
                outcome
                    .as_ref()
                    .and_then(|o| o.program_bug())
                    .is_some_and(|f| Self::same_bug(&fault, f))
            });
            metrics.minimize_iterations = result.iterations;
            if result.trace.len() < trace.len() {
                Some(result.trace)
            } else {
                None
            }
        } else {
            None
        };
        let capture_trace = minimized_trace.as_ref().unwrap_or(&trace);
        metrics.minimized_segments = capture_trace.len() as u64;

        // --- Phase 3: capture with the Light recorder attached ---------
        // Replaying the scripted trace is recorder-independent: gates fire
        // whether or not a recorder observes them, so the decisions — and
        // the fault — are those of the probe run.
        pulse.enter_phase(2, &config.progress);
        let sched = Arc::new(ExploreScheduler::with_strategy(
            Box::new(ScriptedStrategy::new(capture_trace)),
            light_runtime::HaltFlag::new(),
        ));
        let captured = self
            .light
            .record_with(args, SchedulerSpec::Explore(sched), seed);
        let (mut recording, capture_outcome) = match captured {
            Ok(pair) => pair,
            Err(_) => {
                // Setup errors cannot happen after successful probes
                // (same program, same args); treat as not found.
                metrics.wall_ns = start.elapsed().as_nanos() as u64;
                finish(&pulse);
                return ExploreOutcome {
                    found: None,
                    metrics,
                };
            }
        };
        let captured_fault = capture_outcome
            .program_bug()
            .cloned()
            .unwrap_or_else(|| fault.clone());
        recording.provenance = Some(ExploreProvenance {
            strategy: config.strategy.name().to_string(),
            seed,
            schedules: metrics.schedules,
            minimized: minimized_trace.is_some(),
            trace_segments: capture_trace.len() as u64,
        });

        // --- Phase 4: validate through solve → controlled replay -------
        pulse.enter_phase(3, &config.progress);
        let mut correlated = 0u32;
        for _ in 0..config.replay_checks {
            match self.light.replay(&recording) {
                Ok(report) if report.correlated => correlated += 1,
                _ => {}
            }
        }

        metrics.wall_ns = start.elapsed().as_nanos() as u64;
        finish(&pulse);
        ExploreOutcome {
            found: Some(FoundBug {
                seed,
                fault: captured_fault,
                trace,
                minimized_trace,
                recording,
                replays_correlated: correlated,
                replays_attempted: config.replay_checks,
            }),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn racy_program() -> Arc<Program> {
        Arc::new(
            lir::parse(
                "global x; global y;
                 fn writer() { x = null; y = 1; x = 5; }
                 fn reader() { if (y == 1) { let v = 1 / x; } }
                 fn main() {
                     x = 1;
                     let t1 = spawn writer();
                     let t2 = spawn reader();
                     join t1; join t2;
                 }",
            )
            .unwrap(),
        )
    }

    #[test]
    fn explorer_finds_and_validates_a_bug() {
        let explorer = Explorer::new(racy_program());
        let config = ExploreConfig {
            max_schedules: 500,
            workers: 2,
            replay_checks: 2,
            ..ExploreConfig::default()
        };
        let outcome = explorer.run(&[], &config);
        let bug = outcome.found.expect("bug surfaces within 500 schedules");
        assert!(bug.recording.fault.is_some());
        let prov = bug.recording.provenance.as_ref().unwrap();
        assert_eq!(prov.strategy, "chaos");
        assert_eq!(prov.seed, bug.seed);
        assert_eq!(bug.replays_correlated, 2);
        assert!(outcome.metrics.schedules > 0);
        if let Some(min) = &bug.minimized_trace {
            assert!(min.len() < bug.trace.len());
        }
    }

    #[test]
    fn progress_reports_phases_and_distinct_traces() {
        let sink = Arc::new(light_obs::CollectingProgress::new());
        let explorer = Explorer::new(racy_program());
        let config = ExploreConfig {
            max_schedules: 500,
            workers: 2,
            replay_checks: 1,
            progress: Progress::new(sink.clone(), Duration::from_millis(50)),
            label: "racy_program".into(),
            ..ExploreConfig::default()
        };
        let outcome = explorer.run(&[], &config);
        assert!(outcome.found.is_some());
        let records = sink.records();
        // At least the phase-transition records (minimize, capture,
        // validate, done) fire even on a fast campaign.
        assert!(records.len() >= 4, "got {} records", records.len());
        let phases: Vec<&str> = records.iter().map(|r| r.phase.as_str()).collect();
        assert!(phases.contains(&"minimize"));
        assert!(phases.contains(&"done"));
        let last = records.last().unwrap();
        assert_eq!(last.phase, "done");
        assert_eq!(last.target, "racy_program");
        assert_eq!(last.strategy, "chaos");
        assert!(last.schedules > 0);
        assert!(last.distinct_traces > 0);
        assert!(last.failures > 0);
        assert_eq!(last.budget_schedules, 500);
        assert!(last.eta_ms.is_none(), "no ETA once done");
        // Monotone progress counters.
        for pair in records.windows(2) {
            assert!(pair[1].schedules >= pair[0].schedules);
            assert!(pair[1].elapsed_ms >= pair[0].elapsed_ms);
        }
    }

    /// The soft memory watchdog is edge-triggered: with the tracked
    /// total pinned above a 1-byte budget by a ballast gauge, exactly
    /// one `budget-exceeded` record fires (no re-arm while the ballast
    /// holds), carrying the per-subsystem breakdown in `detail`.
    #[test]
    fn memory_watchdog_emits_one_budget_exceeded_record() {
        let ballast = light_obs::mem::handle("test-explore-ballast");
        ballast.add(1 << 20);
        let sink = Arc::new(light_obs::CollectingProgress::new());
        let explorer = Explorer::new(racy_program());
        let config = ExploreConfig {
            max_schedules: 500,
            workers: 2,
            replay_checks: 1,
            progress: Progress::new(sink.clone(), Duration::from_millis(10)),
            label: "racy_program".into(),
            memory_budget_bytes: 1,
            ..ExploreConfig::default()
        };
        let outcome = explorer.run(&[], &config);
        ballast.sub(1 << 20);
        assert!(outcome.found.is_some());
        let breaches: Vec<_> = sink
            .records()
            .into_iter()
            .filter(|r| r.phase == "budget-exceeded")
            .collect();
        assert_eq!(breaches.len(), 1, "edge-triggered: exactly one breach");
        let detail = breaches[0].detail.as_deref().unwrap();
        assert!(detail.contains("budget=1"), "detail: {detail}");
        assert!(detail.contains("test-explore-ballast="), "detail: {detail}");
    }

    #[test]
    fn campaign_without_bug_reports_none() {
        let program = Arc::new(
            lir::parse("fn main() { let a = 1 + 2; print(a); }").unwrap(),
        );
        let explorer = Explorer::new(program);
        let config = ExploreConfig {
            max_schedules: 5,
            workers: 1,
            ..ExploreConfig::default()
        };
        let outcome = explorer.run(&[], &config);
        assert!(outcome.found.is_none());
        assert_eq!(outcome.metrics.schedules, 5);
        assert_eq!(outcome.metrics.failures, 0);
    }
}
