//! `light-explore` — schedule exploration over the bug corpus (or any
//! LIR file): search for a failing schedule, capture it as a Light
//! recording, minimize the repro, and validate it through the replay
//! pipeline.
//!
//! ```text
//! light-explore --all                         # explore every corpus bug
//! light-explore cache4j weblech               # specific corpus bugs
//! light-explore --file prog.lir --args 3,4    # a program from disk
//! light-explore --all --strategy pct --budget 1000
//! light-explore cache4j --out repro.lrec      # save the minimized repro
//! ```

use light_core::{save_recording, write_recording};
use light_explore::{ExploreConfig, ExploreOutcome, Explorer, StrategyKind};
use light_obs::RunId;
use light_telemetry::{auto_ingest, RunKind, RunRecord, RunStatus};
use light_workloads::bugs;
use lir::Program;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: light-explore [targets] [options]

targets:
  <name>...            corpus bug names (see light-workloads::bugs)
  --all                every bug in the corpus
  --file <prog.lir>    explore a program from disk instead

options:
  --strategy <s>       chaos | pct | race | all     (default chaos)
  --pct-depth <d>      PCT priority-change points   (default 3)
  --budget <n>         max schedules per strategy   (default 2000)
  --workers <n>        search workers               (default 4)
  --solver-workers <n> turbo solver component workers for the validation
                       replays (0 = one per core, default)
  --seed <n>           base seed                    (default 0)
  --wall-secs <n>      wall-clock limit per search  (default 120)
  --no-minimize        skip delta-debugging the repro
  --replays <n>        validation replays           (default 3)
  --args <a,b,..>      program arguments (with --file)
  --out <file.lrec>    save the captured recording (single target only)
  --json               machine-readable metrics per campaign
  --progress           stream live JSONL progress records to stderr
  --progress-interval-ms <n>
                       progress sampling interval     (default 250)
  --memory-budget <MiB>
                       soft memory watchdog: emit a budget-exceeded
                       progress record with a per-subsystem breakdown
                       when tracked bytes cross the budget (needs
                       --progress; never aborts the campaign)";

struct Cli {
    names: Vec<String>,
    all: bool,
    file: Option<String>,
    strategies: Vec<StrategyKind>,
    config: ExploreConfig,
    args: Vec<i64>,
    out: Option<String>,
    json: bool,
    progress: bool,
    progress_interval: Duration,
    solver_workers: Option<usize>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        names: Vec::new(),
        all: false,
        file: None,
        strategies: vec![StrategyKind::Chaos],
        config: ExploreConfig::default(),
        args: Vec::new(),
        out: None,
        json: false,
        progress: false,
        progress_interval: Duration::from_millis(250),
        solver_workers: None,
    };
    let mut pct_depth = 3u32;
    let mut strategy_arg = String::from("chaos");
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => cli.all = true,
            "--file" => cli.file = Some(next_val(&mut it, "--file")?),
            "--strategy" => strategy_arg = next_val(&mut it, "--strategy")?,
            "--pct-depth" => {
                pct_depth = next_val(&mut it, "--pct-depth")?
                    .parse()
                    .map_err(|e| format!("--pct-depth: {e}"))?;
            }
            "--budget" => {
                cli.config.max_schedules = next_val(&mut it, "--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--workers" => {
                cli.config.workers = next_val(&mut it, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--solver-workers" => {
                cli.solver_workers = Some(
                    next_val(&mut it, "--solver-workers")?
                        .parse()
                        .map_err(|e| format!("--solver-workers: {e}"))?,
                );
            }
            "--seed" => {
                cli.config.base_seed = next_val(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--wall-secs" => {
                let secs: u64 = next_val(&mut it, "--wall-secs")?
                    .parse()
                    .map_err(|e| format!("--wall-secs: {e}"))?;
                cli.config.wall_limit = Duration::from_secs(secs);
            }
            "--no-minimize" => cli.config.minimize = false,
            "--replays" => {
                cli.config.replay_checks = next_val(&mut it, "--replays")?
                    .parse()
                    .map_err(|e| format!("--replays: {e}"))?;
            }
            "--args" => {
                let raw = next_val(&mut it, "--args")?;
                cli.args = raw
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|e| format!("--args: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => cli.out = Some(next_val(&mut it, "--out")?),
            "--json" => cli.json = true,
            "--progress" => cli.progress = true,
            "--memory-budget" => {
                let mib: u64 = next_val(&mut it, "--memory-budget")?
                    .parse()
                    .map_err(|e| format!("--memory-budget: {e}"))?;
                cli.config.memory_budget_bytes = mib.saturating_mul(1 << 20);
            }
            "--progress-interval-ms" => {
                let ms: u64 = next_val(&mut it, "--progress-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--progress-interval-ms: {e}"))?;
                cli.progress_interval = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => cli.names.push(arg),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    cli.strategies = match strategy_arg.as_str() {
        "all" => vec![
            StrategyKind::Chaos,
            StrategyKind::Pct { depth: pct_depth },
            StrategyKind::RaceDirected,
        ],
        s => match StrategyKind::parse(s) {
            Some(StrategyKind::Pct { .. }) => vec![StrategyKind::Pct { depth: pct_depth }],
            Some(k) => vec![k],
            None => return Err(format!("unknown strategy {s:?}")),
        },
    };
    if cli.file.is_none() && !cli.all && cli.names.is_empty() {
        return Err("no targets: give bug names, --all, or --file".into());
    }
    Ok(cli)
}

/// A program to explore: label, parsed program, entry arguments.
type Target = (String, Arc<Program>, Vec<i64>);

fn targets(cli: &Cli) -> Result<Vec<Target>, String> {
    if let Some(path) = &cli.file {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = lir::parse(&src).map_err(|e| format!("cannot parse {path}: {e}"))?;
        return Ok(vec![(path.clone(), Arc::new(program), cli.args.clone())]);
    }
    let corpus = bugs();
    if cli.all {
        return Ok(corpus
            .iter()
            .map(|b| (b.name.to_string(), b.program(), b.args.clone()))
            .collect());
    }
    let mut picked = Vec::new();
    for name in &cli.names {
        let case = corpus
            .iter()
            .find(|b| b.name == name)
            .ok_or_else(|| format!("unknown bug {name:?} (try --all to list by running all)"))?;
        picked.push((case.name.to_string(), case.program(), case.args.clone()));
    }
    Ok(picked)
}

fn report_text(label: &str, strategy: StrategyKind, outcome: &ExploreOutcome) {
    let m = &outcome.metrics;
    match &outcome.found {
        Some(bug) => {
            println!(
                "[{label}] {}: FOUND {:?} at line {} (seed {}, {} schedules, {:.2}s)",
                strategy.name(),
                bug.fault.kind,
                bug.fault.line,
                bug.seed,
                m.schedules,
                m.wall_ns as f64 / 1e9,
            );
            let min = bug
                .minimized_trace
                .as_ref()
                .map(|t| t.len())
                .unwrap_or(bug.trace.len());
            println!(
                "         repro: {} -> {} context switches ({} probe runs), replay {}/{} correlated",
                bug.trace.len(),
                min,
                m.minimize_iterations,
                bug.replays_correlated,
                bug.replays_attempted,
            );
        }
        None => println!(
            "[{label}] {}: no failure in {} schedules ({:.2}s)",
            strategy.name(),
            m.schedules,
            m.wall_ns as f64 / 1e9,
        ),
    }
}

fn report_json(label: &str, strategy: StrategyKind, outcome: &ExploreOutcome, run: RunId) {
    let m = &outcome.metrics;
    let found = outcome
        .found
        .as_ref()
        .map(|b| {
            format!(
                "{{\"seed\":{},\"kind\":\"{:?}\",\"line\":{},\"trace_segments\":{},\"minimized_segments\":{},\"replays_correlated\":{},\"replays_attempted\":{}}}",
                b.seed,
                b.fault.kind,
                b.fault.line,
                b.trace.len(),
                b.minimized_trace.as_ref().map(|t| t.len()).unwrap_or(b.trace.len()),
                b.replays_correlated,
                b.replays_attempted,
            )
        })
        .unwrap_or_else(|| "null".into());
    // run_id is additive: consumers keying on the existing fields are
    // unaffected; it joins the report to progress records and the registry.
    println!(
        "{{\"target\":\"{label}\",\"strategy\":\"{}\",\"run_id\":\"{run}\",\"found\":{found},\"metrics\":{}}}",
        strategy.name(),
        m.to_json().to_json(),
    );
}

/// Best-effort registry ingest per campaign: a no-op unless
/// `LIGHT_REGISTRY` is set. A found bug ships its minimized repro
/// recording as the content-addressed blob.
fn ingest_campaign(label: &str, strategy: StrategyKind, outcome: &ExploreOutcome, run: RunId) {
    let m = &outcome.metrics;
    let mut rec = RunRecord::new(label, RunKind::Explore, RunStatus::Ok);
    rec.run_id = Some(run.to_string());
    rec.provenance = Some(strategy.name().to_string());
    rec.wall_ms = Some(m.wall_ns / 1_000_000);
    rec.headline.insert("schedules".into(), m.schedules as f64);
    rec.headline.insert(
        "found".into(),
        if outcome.found.is_some() { 1.0 } else { 0.0 },
    );
    rec.metrics = Some(light_obs::MetricsSnapshot {
        explore: Some(*m),
        ..Default::default()
    });
    let blob = outcome.found.as_ref().map(|b| {
        rec.bug_signature = Some(format!("{:?}@{}", b.fault.kind, b.fault.line));
        write_recording(&b.recording).to_vec()
    });
    auto_ingest(rec, blob.as_deref());
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("light-explore: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let targets = match targets(&cli) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("light-explore: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.out.is_some() && (targets.len() != 1 || cli.strategies.len() != 1) {
        eprintln!("light-explore: --out needs exactly one target and one strategy");
        return ExitCode::FAILURE;
    }

    // Progress streams to stderr so stdout stays clean for reports.
    let progress_sink: Option<Arc<dyn light_obs::ProgressSink>> = cli
        .progress
        .then(|| Arc::new(light_obs::JsonlProgress::stderr()) as Arc<dyn light_obs::ProgressSink>);

    let mut missed = 0usize;
    for (label, program, args) in &targets {
        let mut explorer = Explorer::new(program.clone());
        if let Some(n) = cli.solver_workers {
            if let Some(turbo) = &mut explorer.light_mut().replay_options_mut().turbo {
                turbo.workers = n;
            }
        }
        for &strategy in &cli.strategies {
            // One causal id per campaign: trace spans, progress records,
            // the JSON report, and the registry entry all share it.
            let run = RunId::fresh();
            explorer.light_mut().set_run_id(run);
            let config = ExploreConfig {
                strategy,
                progress: match &progress_sink {
                    Some(sink) => light_obs::Progress::new(sink.clone(), cli.progress_interval),
                    None => light_obs::Progress::disabled(),
                },
                label: label.clone(),
                run_id: Some(run.to_string()),
                ..cli.config.clone()
            };
            let outcome = explorer.run(args, &config);
            ingest_campaign(label, strategy, &outcome, run);
            if cli.json {
                report_json(label, strategy, &outcome, run);
            } else {
                report_text(label, strategy, &outcome);
            }
            match &outcome.found {
                Some(bug) => {
                    if let Some(out) = &cli.out {
                        if let Err(e) = save_recording(&bug.recording, out) {
                            eprintln!("light-explore: cannot save {out}: {e}");
                            return ExitCode::FAILURE;
                        }
                        if !cli.json {
                            println!("         saved repro to {out}");
                        }
                    }
                }
                None => missed += 1,
            }
        }
    }
    if missed > 0 {
        eprintln!("light-explore: {missed} campaign(s) found no failure");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
