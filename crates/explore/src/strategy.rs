//! The search strategies: chaos (random walk), PCT-style randomized
//! priorities, and race-directed preemption.
//!
//! Each strategy is a deterministic function of `(seed, candidate
//! sequence)`, so any schedule it chooses can be re-run exactly by
//! rebuilding the strategy with the same seed — the property first-failure
//! capture relies on.

use light_analysis::RacyLocations;
use light_runtime::{Candidate, EventClass, Loc, RandomWalkStrategy, Strategy, ThreadRng, Tid};
use std::collections::HashMap;

/// Which search strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Uniform random walk over enabled threads (the classic chaos
    /// scheduler).
    Chaos,
    /// PCT-style randomized priorities with `depth` priority-change
    /// points (Burckhardt et al., ASPLOS'10): always run the
    /// highest-priority enabled thread; at `depth` random decision
    /// indices, demote the running thread below every initial priority.
    Pct { depth: u32 },
    /// Race-directed search: run one thread until it is about to touch a
    /// statically racy location, then consider preempting to another
    /// thread — preferentially one also at a racy access.
    RaceDirected,
}

impl StrategyKind {
    /// The provenance / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Chaos => "chaos",
            StrategyKind::Pct { .. } => "pct",
            StrategyKind::RaceDirected => "race",
        }
    }

    /// Parses a CLI name. `pct` uses the default depth of 3.
    pub fn parse(s: &str) -> Option<StrategyKind> {
        match s {
            "chaos" => Some(StrategyKind::Chaos),
            "pct" => Some(StrategyKind::Pct { depth: 3 }),
            "race" => Some(StrategyKind::RaceDirected),
            _ => None,
        }
    }

    /// Builds a fresh strategy instance for one schedule. `racy` feeds the
    /// race-directed strategy's preemption points and is ignored by the
    /// others.
    pub fn build(self, seed: u64, racy: &RacyLocations) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Chaos => Box::new(RandomWalkStrategy::new(seed)),
            StrategyKind::Pct { depth } => Box::new(PctStrategy::new(seed, depth)),
            StrategyKind::RaceDirected => Box::new(RaceDirectedStrategy::new(seed, racy.clone())),
        }
    }
}

/// PCT decisions happen at scheduler picks; change points are sampled
/// uniformly below this horizon (ample for the workload corpus, whose
/// runs take tens to a few hundred picks).
const PCT_HORIZON: i64 = 512;

/// High bit marking initial (never-demoted) priorities: any initial
/// priority outranks every demoted one.
const PCT_HIGH: u64 = 1 << 63;

/// PCT-style randomized-priority strategy.
pub struct PctStrategy {
    rng: ThreadRng,
    /// Current priority per thread; larger runs first.
    priorities: HashMap<Tid, u64>,
    /// Decision indices at which the running thread is demoted.
    change_points: Vec<u64>,
    /// Decisions made so far.
    decisions: u64,
    /// The thread picked by the previous decision.
    last: Option<Tid>,
    /// Next demotion value; decreases so later demotions sink lower.
    next_demotion: u64,
}

impl PctStrategy {
    pub fn new(seed: u64, depth: u32) -> Self {
        let mut rng = ThreadRng::new(seed, Tid::ROOT);
        let change_points = (0..depth).map(|_| rng.below(PCT_HORIZON) as u64).collect();
        Self {
            rng,
            priorities: HashMap::new(),
            change_points,
            decisions: 0,
            last: None,
            next_demotion: PCT_HIGH - 1,
        }
    }
}

impl Strategy for PctStrategy {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        // At a change point, the thread that was running sinks below the
        // initial priority band (and below every earlier demotion).
        if self.change_points.contains(&self.decisions) {
            if let Some(last) = self.last {
                self.priorities.insert(last, self.next_demotion);
                self.next_demotion = self.next_demotion.saturating_sub(1);
            }
        }
        self.decisions += 1;
        // New threads draw a random priority in the high band. Candidates
        // arrive sorted by tid, so assignment order is deterministic.
        for c in candidates {
            self.priorities
                .entry(c.tid)
                .or_insert_with(|| PCT_HIGH | self.rng.next_u64());
        }
        let (i, c) = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| self.priorities[&c.tid])
            .expect("candidates are non-empty");
        self.last = Some(c.tid);
        i
    }
}

/// Race-directed strategy: preemption points at statically racy accesses.
pub struct RaceDirectedStrategy {
    rng: ThreadRng,
    racy: RacyLocations,
    last: Option<Tid>,
}

impl RaceDirectedStrategy {
    pub fn new(seed: u64, racy: RacyLocations) -> Self {
        Self {
            rng: ThreadRng::new(seed, Tid::ROOT),
            racy,
            last: None,
        }
    }

    /// Whether the candidate's pending event touches a statically racy
    /// location.
    fn at_racy_event(&self, c: &Candidate) -> bool {
        match c.event {
            Some(EventClass::Access { loc, .. }) => match loc {
                Loc::Field(_, f) => self.racy.fields.contains(&f.0),
                Loc::Global(g) => self.racy.globals.contains(&g.0),
                Loc::Elem(..) | Loc::MapState(_) => self.racy.bulk,
                _ => false,
            },
            _ => false,
        }
    }

    fn choose(&mut self, indices: &[usize]) -> usize {
        indices[self.rng.below(indices.len() as i64) as usize]
    }
}

impl Strategy for RaceDirectedStrategy {
    fn pick(&mut self, candidates: &[Candidate]) -> usize {
        // Keep the current thread running until it reaches a racy access:
        // preemptions anywhere else cannot flip a race.
        if let Some(last) = self.last {
            if let Some(i) = candidates.iter().position(|c| c.tid == last) {
                if !self.at_racy_event(&candidates[i]) || self.rng.below(2) == 0 {
                    return i;
                }
            }
        }
        // Preempt. Prefer threads themselves parked at racy accesses (the
        // other side of a potential race), falling back to any thread.
        let racy_idx: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| Some(c.tid) != self.last && self.at_racy_event(c))
            .map(|(i, _)| i)
            .collect();
        let i = if racy_idx.is_empty() {
            let all: Vec<usize> = (0..candidates.len()).collect();
            self.choose(&all)
        } else {
            self.choose(&racy_idx)
        };
        self.last = Some(candidates[i].tid);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(tids: &[Tid]) -> Vec<Candidate> {
        tids.iter()
            .map(|&tid| Candidate { tid, event: None })
            .collect()
    }

    #[test]
    fn strategy_kind_parses_names() {
        assert_eq!(StrategyKind::parse("chaos"), Some(StrategyKind::Chaos));
        assert_eq!(StrategyKind::parse("pct"), Some(StrategyKind::Pct { depth: 3 }));
        assert_eq!(StrategyKind::parse("race"), Some(StrategyKind::RaceDirected));
        assert_eq!(StrategyKind::parse("zen"), None);
        assert_eq!(StrategyKind::Pct { depth: 5 }.name(), "pct");
    }

    #[test]
    fn pct_is_deterministic_per_seed() {
        let ts = [Tid::ROOT, Tid::ROOT.child(0), Tid::ROOT.child(1)];
        let mut a = PctStrategy::new(11, 3);
        let mut b = PctStrategy::new(11, 3);
        let mut c = PctStrategy::new(12, 3);
        let xs: Vec<usize> = (0..128).map(|_| a.pick(&cands(&ts))).collect();
        let ys: Vec<usize> = (0..128).map(|_| b.pick(&cands(&ts))).collect();
        let zs: Vec<usize> = (0..128).map(|_| c.pick(&cands(&ts))).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn pct_runs_highest_priority_thread_until_demoted() {
        // With all threads always enabled, PCT keeps picking one thread
        // except across change points: the set of distinct picks is small.
        let ts = [Tid::ROOT, Tid::ROOT.child(0), Tid::ROOT.child(1)];
        let mut s = PctStrategy::new(7, 2);
        let picks: Vec<usize> = (0..600).map(|_| s.pick(&cands(&ts))).collect();
        let mut distinct_runs = 1;
        for w in picks.windows(2) {
            if w[0] != w[1] {
                distinct_runs += 1;
            }
        }
        // depth-2 PCT switches at most twice once every thread is known.
        assert!(distinct_runs <= 4, "saw {distinct_runs} runs");
    }

    #[test]
    fn race_directed_sticks_to_thread_without_races() {
        let ts = [Tid::ROOT, Tid::ROOT.child(0)];
        let mut s = RaceDirectedStrategy::new(3, RacyLocations::default());
        let first = s.pick(&cands(&ts));
        for _ in 0..50 {
            assert_eq!(s.pick(&cands(&ts)), first);
        }
    }
}
