//! Determinism regression: the chaos scheduler with a fixed seed is a
//! pure function of that seed. Two runs must produce byte-identical
//! decision traces, and two recorder-attached captures must produce
//! byte-identical recordings — the property first-failure capture and
//! trace minimization both stand on.

use light_core::{write_recording, Light};
use light_runtime::{
    run, DecisionTrace, ExecConfig, ExploreScheduler, HaltFlag, NondetMode, NullRecorder,
    SchedulerSpec,
};
use lir::Program;
use std::sync::Arc;

fn racy_program() -> Arc<Program> {
    Arc::new(
        lir::parse(
            "global x; global y;
             fn writer() { x = null; y = 1; x = 5; }
             fn reader() { if (y == 1) { let v = 1 / x; } }
             fn main() {
                 x = 1;
                 let t1 = spawn writer();
                 let t2 = spawn reader();
                 join t1; join t2;
             }",
        )
        .unwrap(),
    )
}

/// One chaos probe run; returns the decision trace.
fn probe(program: &Arc<Program>, light: &Light, seed: u64) -> DecisionTrace {
    let sched = Arc::new(ExploreScheduler::new(seed, HaltFlag::new()));
    let config = ExecConfig {
        recorder: Arc::new(NullRecorder),
        scheduler: SchedulerSpec::Explore(sched.clone()),
        policy: light.analysis().policy.clone(),
        nondet: NondetMode::Real { seed },
        ..ExecConfig::default()
    };
    run(program, &[], config).expect("probe runs");
    sched.trace()
}

#[test]
fn chaos_decision_trace_is_byte_identical_across_runs() {
    let program = racy_program();
    let light = Light::new(program.clone());
    for seed in [0u64, 7, 1234] {
        let a = probe(&program, &light, seed);
        let b = probe(&program, &light, seed);
        assert!(!a.is_empty(), "seed {seed} made decisions");
        assert_eq!(a, b, "seed {seed} traces diverge");
        assert_eq!(a.encode(), b.encode(), "seed {seed} encodings diverge");
    }
}

#[test]
fn chaos_capture_yields_identical_recording_bytes() {
    let program = racy_program();
    let light = Light::new(program.clone());
    let capture = |seed: u64| {
        let sched = Arc::new(ExploreScheduler::new(seed, HaltFlag::new()));
        let (recording, _) = light
            .record_with(&[], SchedulerSpec::Explore(sched.clone()), seed)
            .expect("capture runs");
        (write_recording(&recording), sched.trace())
    };
    for seed in [3u64, 42] {
        let (bytes_a, trace_a) = capture(seed);
        let (bytes_b, trace_b) = capture(seed);
        assert_eq!(trace_a, trace_b, "seed {seed} capture traces diverge");
        assert_eq!(bytes_a, bytes_b, "seed {seed} recordings diverge");
    }
}

#[test]
fn recorder_attachment_does_not_perturb_decisions() {
    // The schedule gates fire whether or not a recorder observes the run,
    // so a NullRecorder probe and a full capture at the same seed must
    // make the same decisions — the assumption first-failure capture
    // relies on.
    let program = racy_program();
    let light = Light::new(program.clone());
    for seed in [5u64, 99] {
        let probe_trace = probe(&program, &light, seed);
        let sched = Arc::new(ExploreScheduler::new(seed, HaltFlag::new()));
        light
            .record_with(&[], SchedulerSpec::Explore(sched.clone()), seed)
            .expect("capture runs");
        assert_eq!(probe_trace, sched.trace(), "seed {seed} diverges");
    }
}
