//! Acceptance: light-explore finds every seeded bug of the Figure 6
//! corpus within a bounded budget under multiple strategies, and the
//! minimized repro survives the full pipeline (capture → constraint
//! build → IDL solve → controlled replay) deterministically.

use light_explore::{ExploreConfig, Explorer, FoundBug, StrategyKind};
use light_workloads::bugs;
use std::time::Duration;

fn search_only(strategy: StrategyKind) -> ExploreConfig {
    ExploreConfig {
        strategy,
        max_schedules: 2000,
        workers: 4,
        wall_limit: Duration::from_secs(60),
        minimize: false,
        replay_checks: 0,
        ..ExploreConfig::default()
    }
}

fn find(case_name: &str, config: &ExploreConfig) -> FoundBug {
    let case = bugs()
        .into_iter()
        .find(|b| b.name == case_name)
        .expect("corpus bug exists");
    let outcome = Explorer::new(case.program()).run(&case.args, config);
    let bug = outcome.found.unwrap_or_else(|| {
        panic!(
            "{case_name}: no failure in {} schedules under {:?}",
            outcome.metrics.schedules, config.strategy
        )
    });
    assert_eq!(
        bug.fault.kind, case.expect_kind,
        "{case_name}: unexpected fault kind"
    );
    bug
}

#[test]
fn chaos_finds_every_corpus_bug() {
    for case in bugs() {
        find(case.name, &search_only(StrategyKind::Chaos));
    }
}

#[test]
fn race_directed_finds_every_corpus_bug() {
    for case in bugs() {
        find(case.name, &search_only(StrategyKind::RaceDirected));
    }
}

#[test]
fn pct_finds_bugs() {
    // PCT's priority pinning makes some corpus programs run long (and
    // surfaces their lost-wakeup hangs before the seeded bug), so the
    // cross-strategy sweep uses the programs PCT converges on quickly.
    for name in ["cache4j", "ftpserver", "tomcat-37458"] {
        find(name, &search_only(StrategyKind::Pct { depth: 3 }));
    }
}

#[test]
fn minimized_repro_replays_ten_of_ten() {
    // cache4j is excluded: its 7-segment repro is already minimal under
    // ddmin, so "strictly smaller" would not hold.
    for name in ["ftpserver", "tomcat-37458", "weblech"] {
        let config = ExploreConfig {
            max_schedules: 2000,
            workers: 4,
            wall_limit: Duration::from_secs(60),
            minimize: true,
            replay_checks: 10,
            ..ExploreConfig::default()
        };
        let bug = find(name, &config);
        let minimized = bug
            .minimized_trace
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: trace did not shrink"));
        assert!(
            minimized.len() < bug.trace.len(),
            "{name}: {} !< {}",
            minimized.len(),
            bug.trace.len()
        );
        assert_eq!(
            bug.replays_correlated, 10,
            "{name}: only {}/10 validation replays correlated",
            bug.replays_correlated
        );
        let prov = bug.recording.provenance.as_ref().expect("provenance stamped");
        assert!(prov.minimized);
        assert_eq!(prov.seed, bug.seed);
        assert_eq!(prov.trace_segments, minimized.len() as u64);
        assert!(bug.recording.fault.is_some(), "{name}: capture lost the fault");
    }
}

#[test]
fn search_is_deterministic_across_runs() {
    // Single-worker searches make the whole campaign a pure function of
    // (program, strategy, base seed): same failure, same trace.
    let config = ExploreConfig {
        workers: 1,
        minimize: false,
        replay_checks: 0,
        ..search_only(StrategyKind::Chaos)
    };
    let a = find("lucene-651", &config);
    let b = find("lucene-651", &config);
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.trace, b.trace);
}
