//! Leap (Huang et al., FSE'10): record-based replay that logs the **full
//! access order** of every shared location into per-location vectors,
//! under synchronization.
//!
//! This is the paper's primary overhead comparator (Figures 4 and 5): the
//! recorded information subsumes all dependence kinds (flow, anti, output),
//! costing one vector append inside a critical section per shared access —
//! versus Light's last-write overwrite plus thread-local buffering.

use light_core::{AccessId, FastMap};
use light_runtime::{
    AccessKind, FaultReport, Loc, Recorder, ReplaySchedule, SyncEvent, Tid,
};
use light_solver::{OrderSolver, SolveError};
use lir::InstrId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const STRIPES: usize = 256;

/// A completed Leap recording: the exact global access order per location.
#[derive(Debug, Clone, Default)]
pub struct LeapRecording {
    /// Per location key, the access sequence in observed order.
    pub locs: HashMap<u64, Vec<AccessId>>,
    /// Entries flushed to disk in spill mode (counted in space; not
    /// reloadable — spill mode is for overhead measurement).
    pub spilled: u64,
    pub nondet: HashMap<Tid, Vec<i64>>,
    pub fault: Option<FaultReport>,
    pub args: Vec<i64>,
}

impl LeapRecording {
    /// Space in Long-integer units: one per recorded access (Leap's
    /// per-location vectors hold one entry per access).
    pub fn space_longs(&self) -> u64 {
        let accesses: u64 = self.locs.values().map(|v| v.len() as u64).sum();
        let nondet: u64 = self.nondet.values().map(|v| v.len() as u64).sum();
        accesses + nondet + self.spilled
    }

    /// Computes a replay schedule enforcing each location's recorded total
    /// access order (plus thread-local order).
    ///
    /// # Errors
    ///
    /// [`SolveError`] if the recorded orders are inconsistent (impossible
    /// for real recordings).
    pub fn schedule(&self) -> Result<ReplaySchedule, SolveError> {
        let mut solver = OrderSolver::new();
        let mut vars = crate::varmap::VarMap::new();
        for seq in self.locs.values() {
            for pair in seq.windows(2) {
                let a = vars.var(&mut solver, pair[0]);
                let b = vars.var(&mut solver, pair[1]);
                solver.add_lt(a, b);
            }
            if let Some(&only) = seq.first() {
                let _ = vars.var(&mut solver, only);
            }
        }
        vars.add_thread_chains(&mut solver);
        let model = solver.solve()?;
        let mut schedule = vars.into_schedule(&model);
        // Every event is recorded, so the per-thread maxima are the exact
        // frontiers of the original run.
        let mut extents: HashMap<Tid, u64> = HashMap::new();
        for seq in self.locs.values() {
            for id in seq {
                let e = extents.entry(id.tid).or_insert(0);
                *e = (*e).max(id.ctr);
            }
        }
        for (tid, ext) in extents {
            schedule.set_extent(tid, ext);
        }
        Ok(schedule)
    }
}

#[derive(Default)]
struct Central {
    nondet: HashMap<Tid, Vec<i64>>,
}

/// The Leap recorder: every shared access appends to its location's global
/// vector while holding that location's stripe lock, so the recorded order
/// is the real order.
pub struct LeapRecorder {
    locs: Vec<Mutex<FastMap<u64, Vec<AccessId>>>>,
    central: Mutex<Central>,
    spill: Option<Arc<light_core::SpillSink>>,
    spill_threshold: usize,
    spilled: std::sync::atomic::AtomicU64,
}

impl LeapRecorder {
    /// Creates an empty Leap recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            locs: (0..STRIPES).map(|_| Mutex::new(FastMap::default())).collect(),
            central: Mutex::new(Central::default()),
            spill: None,
            spill_threshold: 4096,
            spilled: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Enables spill-to-disk: a stripe whose vectors reach `threshold`
    /// entries flushes them to `sink` inside the critical section, as the
    /// paper's measurement configuration does for all tools.
    pub fn with_spill(
        self: Arc<Self>,
        sink: Arc<light_core::SpillSink>,
        threshold: usize,
    ) -> Arc<Self> {
        let mut inner = Arc::try_unwrap(self)
            .unwrap_or_else(|_| panic!("with_spill must be called before sharing the recorder"));
        inner.spill = Some(sink);
        inner.spill_threshold = threshold.max(1);
        Arc::new(inner)
    }

    fn stripe(&self, key: u64) -> &Mutex<FastMap<u64, Vec<AccessId>>> {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        &self.locs[(h as usize) % STRIPES]
    }

    fn append(&self, key: u64, id: AccessId, op: Option<&mut dyn FnMut() -> u64>) -> u64 {
        let mut shard = self.stripe(key).lock();
        let out = op.map(|f| f()).unwrap_or(0);
        let vec = shard.entry(key).or_default();
        vec.push(id);
        if let Some(sink) = &self.spill {
            if vec.len() >= self.spill_threshold {
                let drained: Vec<u64> = vec.drain(..).map(|a| a.tid.raw() << 40 | a.ctr).collect();
                self.spilled
                    .fetch_add(drained.len() as u64, std::sync::atomic::Ordering::Relaxed);
                sink.write_longs(&drained);
            }
        }
        out
    }

    /// Extracts the recording after the run.
    pub fn take_recording(&self, fault: Option<FaultReport>, args: &[i64]) -> LeapRecording {
        let mut locs: HashMap<u64, Vec<AccessId>> = HashMap::new();
        for shard in &self.locs {
            for (k, v) in std::mem::take(&mut *shard.lock()) {
                locs.insert(k, v);
            }
        }
        let central = std::mem::take(&mut *self.central.lock());
        LeapRecording {
            locs,
            spilled: self.spilled.load(std::sync::atomic::Ordering::Relaxed),
            nondet: central.nondet,
            fault,
            args: args.to_vec(),
        }
    }
}

impl Recorder for LeapRecorder {
    fn on_access(
        &self,
        tid: Tid,
        ctr: u64,
        loc: Loc,
        _kind: AccessKind,
        _guarded: bool,
        _instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        self.append(loc.key(), AccessId::new(tid, ctr), Some(op))
    }

    fn on_sync(&self, tid: Tid, ctr: u64, ev: SyncEvent, _instr: InstrId) {
        let key = match ev {
            SyncEvent::MonitorEnter { obj }
            | SyncEvent::MonitorExit { obj }
            | SyncEvent::WaitBefore { obj }
            | SyncEvent::WaitAfter { obj, .. }
            | SyncEvent::Notify { obj, .. } => Loc::Monitor(obj).key(),
            SyncEvent::Spawn { child } => Loc::ThreadLife(child).key(),
            SyncEvent::ThreadStart { .. } | SyncEvent::ThreadEnd => Loc::ThreadLife(tid).key(),
            SyncEvent::Join { child, .. } => Loc::ThreadLife(child).key(),
        };
        self.append(key, AccessId::new(tid, ctr), None);
    }

    fn on_nondet(&self, tid: Tid, value: i64) {
        self.central.lock().nondet.entry(tid).or_default().push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::{ObjId, SlotAction};
    use lir::{BlockId, FieldId, FuncId};

    fn iid() -> InstrId {
        InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        }
    }

    #[test]
    fn records_every_access_in_order() {
        let rec = LeapRecorder::new();
        let loc = Loc::Field(ObjId(0), FieldId(0));
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        rec.on_access(t1, 1, loc, AccessKind::Write, false, iid(), &mut || 0);
        rec.on_access(t2, 1, loc, AccessKind::Read, false, iid(), &mut || 0);
        rec.on_access(t1, 2, loc, AccessKind::Read, false, iid(), &mut || 0);
        let recording = rec.take_recording(None, &[]);
        let seq = &recording.locs[&loc.key()];
        assert_eq!(
            seq,
            &vec![
                AccessId::new(t1, 1),
                AccessId::new(t2, 1),
                AccessId::new(t1, 2)
            ]
        );
        assert_eq!(recording.space_longs(), 3);
    }

    #[test]
    fn schedule_enforces_per_location_order() {
        let rec = LeapRecorder::new();
        let loc = Loc::Field(ObjId(0), FieldId(0));
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        rec.on_access(t1, 1, loc, AccessKind::Write, false, iid(), &mut || 0);
        rec.on_access(t2, 1, loc, AccessKind::Read, false, iid(), &mut || 0);
        let recording = rec.take_recording(None, &[]);
        let schedule = recording.schedule().unwrap();
        let pos = |t: Tid, c: u64| match schedule.action(t, c) {
            Some(SlotAction::Ordered(k)) => k,
            other => panic!("{other:?}"),
        };
        assert!(pos(t1, 1) < pos(t2, 1));
    }

    #[test]
    fn space_counts_all_dependence_kinds() {
        // Ten writes then ten reads: Leap stores 20 entries where Light
        // stores a single flow dependence (the Figure 2 comparison).
        let rec = LeapRecorder::new();
        let loc = Loc::Field(ObjId(0), FieldId(1));
        let t1 = Tid::ROOT.child(0);
        for c in 1..=10 {
            rec.on_access(t1, c, loc, AccessKind::Write, false, iid(), &mut || 0);
        }
        let t2 = Tid::ROOT.child(1);
        for c in 1..=10 {
            rec.on_access(t2, c, loc, AccessKind::Read, false, iid(), &mut || 0);
        }
        let recording = rec.take_recording(None, &[]);
        assert_eq!(recording.space_longs(), 20);
    }
}
