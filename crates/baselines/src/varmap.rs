//! Shared helper: access-id ↔ solver-variable mapping, thread-local order
//! chains, and model → schedule conversion, used by the Leap and Stride
//! offline phases.

use light_core::AccessId;
use light_runtime::{ReplaySchedule, Tid};
use light_solver::{Model, OrderSolver, Var};
use std::collections::HashMap;

#[derive(Default)]
pub(crate) struct VarMap {
    vars: HashMap<AccessId, Var>,
    ids: Vec<AccessId>,
}

impl VarMap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn var(&mut self, solver: &mut OrderSolver, id: AccessId) -> Var {
        if let Some(&v) = self.vars.get(&id) {
            return v;
        }
        let v = solver.new_var();
        self.vars.insert(id, v);
        self.ids.push(id);
        v
    }

    /// Chains every mentioned id of each thread in counter order.
    pub(crate) fn add_thread_chains(&mut self, solver: &mut OrderSolver) {
        let mut per_thread: HashMap<Tid, Vec<u64>> = HashMap::new();
        for id in self.ids.clone() {
            per_thread.entry(id.tid).or_default().push(id.ctr);
        }
        for (tid, mut ctrs) in per_thread {
            ctrs.sort_unstable();
            ctrs.dedup();
            for pair in ctrs.windows(2) {
                let a = self.var(solver, AccessId::new(tid, pair[0]));
                let b = self.var(solver, AccessId::new(tid, pair[1]));
                solver.add_lt(a, b);
            }
        }
    }

    /// Converts a model into a schedule ordering every mentioned id.
    pub(crate) fn into_schedule(self, model: &Model) -> ReplaySchedule {
        let mut order: Vec<(i64, AccessId)> = self
            .ids
            .iter()
            .map(|&id| (model.value(self.vars[&id]), id))
            .collect();
        order.sort_by_key(|&(v, id)| (v, id.tid, id.ctr));
        let mut schedule = ReplaySchedule::new();
        for (_, id) in order {
            schedule.push_ordered(id.tid, id.ctr);
        }
        schedule
    }
}
