//! Chimera's program transformation: weave locks around statically racy
//! code so the transformed program is race-free, after which recording
//! lock orders suffices for replay.
//!
//! Racy *functions* that never block (no spawn/join/wait transitively) are
//! serialized whole-method — the paper's described behavior for "pairs of
//! racing statements whose enclosing methods rarely run in parallel", and
//! precisely the serialization that hides three of the eight evaluation
//! bugs. Racy functions that may block get statement-level locks around
//! their racing accesses instead (whole-method locking around `join`/`wait`
//! would deadlock). Statement-level locks are only added where no monitor
//! is already held, keeping lock acquisition order consistent.

use light_analysis::{racy_functions, Analysis};
use lir::{ClassId, FuncId, GlobalId, Instr, InstrId, Operand, Program, Reg};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What the transformation did.
#[derive(Debug, Clone, Default)]
pub struct TransformInfo {
    /// Functions serialized whole-method under the added lock.
    pub method_wrapped: Vec<String>,
    /// Number of individual statements wrapped.
    pub stmt_wrapped: usize,
}

/// The transformed program plus bookkeeping.
pub struct ChimeraTransform {
    pub program: Arc<Program>,
    pub lock_global: GlobalId,
    pub lock_class: ClassId,
    pub info: TransformInfo,
}

/// Applies the Chimera transformation, using the race pairs and lockset
/// facts from `analysis` (computed on `original`).
pub fn chimera_transform(original: &Program, analysis: &Analysis) -> ChimeraTransform {
    let mut program = original.clone();
    let mut info = TransformInfo::default();

    // Declare the lock class and global.
    let pad_field = lir::FieldId(program.field_names.len() as u32);
    program.field_names.push("__chimera_pad".into());
    let lock_class = ClassId(program.classes.len() as u32);
    program.classes.push(lir::ir::Class {
        name: "__ChimeraLock".into(),
        fields: vec![pad_field],
    });
    let lock_global = GlobalId(program.globals.len() as u32);
    program.globals.push("__chimera_lock".into());

    let racy: HashSet<FuncId> = racy_functions(&analysis.races);

    // Blocking functions: transitively contain spawn/join/wait.
    let blocking = blocking_functions(&program);

    // Group the racy statements by function for statement-level wrapping.
    let mut racy_stmts: HashMap<FuncId, Vec<InstrId>> = HashMap::new();
    for pair in &analysis.races {
        for iid in [pair.a, pair.b] {
            racy_stmts.entry(iid.func).or_default().push(iid);
        }
    }

    for &func_id in &racy {
        if func_id.index() >= program.funcs.len() {
            continue;
        }
        if blocking.contains(&func_id) {
            // Statement-level locks around racing accesses not already
            // under a monitor.
            let mut stmts: Vec<InstrId> = racy_stmts
                .get(&func_id)
                .cloned()
                .unwrap_or_default()
                .into_iter()
                .filter(|iid| {
                    analysis
                        .guarded
                        .held_at
                        .get(iid)
                        .map(|held| held.is_empty())
                        .unwrap_or(true)
                })
                .collect();
            stmts.sort();
            stmts.dedup();
            // Insert from the back of each block so indices stay valid.
            stmts.sort_by_key(|s| std::cmp::Reverse((s.block, s.idx)));
            let func = &mut program.funcs[func_id.index()];
            let lock_reg = Reg(func.nregs);
            func.nregs += 1;
            for iid in stmts {
                if iid.idx == InstrId::TERM_IDX {
                    continue;
                }
                let block = &mut func.blocks[iid.block.index()];
                let idx = iid.idx as usize;
                if idx >= block.instrs.len() {
                    continue;
                }
                let line = block.lines[idx];
                block.instrs.insert(
                    idx + 1,
                    Instr::MonitorExit {
                        obj: Operand::Reg(lock_reg),
                    },
                );
                block.lines.insert(idx + 1, line);
                block.instrs.insert(
                    idx,
                    Instr::MonitorEnter {
                        obj: Operand::Reg(lock_reg),
                    },
                );
                block.lines.insert(idx, line);
                block.instrs.insert(
                    idx,
                    Instr::GetGlobal {
                        dst: lock_reg,
                        global: lock_global,
                    },
                );
                block.lines.insert(idx, line);
                info.stmt_wrapped += 1;
            }
        } else {
            // Whole-method serialization.
            let func = &mut program.funcs[func_id.index()];
            let lock_reg = Reg(func.nregs);
            func.nregs += 1;
            // Release before every return.
            for block in &mut func.blocks {
                if matches!(block.term, lir::Terminator::Ret(_)) {
                    let line = block.term_line;
                    block.instrs.push(Instr::GetGlobal {
                        dst: lock_reg,
                        global: lock_global,
                    });
                    block.lines.push(line);
                    block.instrs.push(Instr::MonitorExit {
                        obj: Operand::Reg(lock_reg),
                    });
                    block.lines.push(line);
                }
            }
            // Acquire on entry.
            let entry = &mut func.blocks[0];
            let line = entry.lines.first().copied().unwrap_or(func.line);
            entry.instrs.insert(
                0,
                Instr::MonitorEnter {
                    obj: Operand::Reg(lock_reg),
                },
            );
            entry.lines.insert(0, line);
            entry.instrs.insert(
                0,
                Instr::GetGlobal {
                    dst: lock_reg,
                    global: lock_global,
                },
            );
            entry.lines.insert(0, line);
            info.method_wrapped.push(func.name.clone());
        }
    }

    // Entry prelude: allocate and publish the lock object before anything
    // else runs (inserted last so earlier statement indices were stable).
    if let Some(entry) = program.entry {
        let func = &mut program.funcs[entry.index()];
        let tmp = Reg(func.nregs);
        func.nregs += 1;
        let block = &mut func.blocks[0];
        let line = block.lines.first().copied().unwrap_or(func.line);
        block.instrs.insert(
            0,
            Instr::SetGlobal {
                global: lock_global,
                value: Operand::Reg(tmp),
            },
        );
        block.lines.insert(0, line);
        block.instrs.insert(
            0,
            Instr::New {
                dst: tmp,
                class: lock_class,
            },
        );
        block.lines.insert(0, line);
    }

    info.method_wrapped.sort();
    ChimeraTransform {
        program: Arc::new(program),
        lock_global,
        lock_class,
        info,
    }
}

/// Functions that may block: contain (transitively over calls) a spawn,
/// join or wait.
fn blocking_functions(program: &Program) -> HashSet<FuncId> {
    let n = program.funcs.len();
    let mut direct: Vec<bool> = vec![false; n];
    let mut calls: Vec<Vec<FuncId>> = vec![Vec::new(); n];
    for (f, func) in program.funcs.iter().enumerate() {
        for block in &func.blocks {
            for instr in &block.instrs {
                match instr {
                    Instr::Spawn { .. } | Instr::Join { .. } | Instr::Wait { .. } => {
                        direct[f] = true;
                    }
                    Instr::Call { func: callee, .. } => calls[f].push(*callee),
                    _ => {}
                }
            }
        }
    }
    // Propagate to callers.
    let mut blocking: HashSet<FuncId> = direct
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| FuncId(i as u32))
        .collect();
    loop {
        let mut changed = false;
        for (f, callees) in calls.iter().enumerate() {
            let fid = FuncId(f as u32);
            if blocking.contains(&fid) {
                continue;
            }
            if callees.iter().any(|c| blocking.contains(c)) {
                blocking.insert(fid);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    blocking
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transform(src: &str) -> ChimeraTransform {
        let program = lir::parse(src).unwrap();
        let analysis = light_analysis::analyze(&program);
        chimera_transform(&program, &analysis)
    }

    const RACY: &str = "
        global counter;
        fn worker() { counter = counter + 1; }
        fn main() {
            counter = 0;
            let t1 = spawn worker();
            let t2 = spawn worker();
            join t1; join t2;
        }";

    #[test]
    fn racy_worker_is_method_wrapped() {
        let t = transform(RACY);
        assert!(t.info.method_wrapped.contains(&"worker".to_string()));
        // main is blocking (spawns/joins), so its racy write to counter is
        // statement-wrapped instead.
        assert!(!t.info.method_wrapped.contains(&"main".to_string()));
        // main's only write is pre-spawn initialization, so nothing in main
        // needs statement locks.
        assert_eq!(t.info.stmt_wrapped, 0);
        // The transformed program still validates.
        lir::validate(&t.program).unwrap();
    }

    #[test]
    fn transformed_program_runs_correctly() {
        let t = transform(
            "global counter;
             fn worker(n) {
                 let i = 0;
                 while (i < n) { counter = counter + 1; i = i + 1; }
             }
             fn main(n) {
                 let t1 = spawn worker(n);
                 let t2 = spawn worker(n);
                 join t1; join t2;
                 assert(counter == 2 * n);
             }",
        );
        // With chimera locks the counter race disappears entirely: the
        // assertion must hold in every run.
        let out = light_runtime::run(
            &t.program,
            &[100],
            light_runtime::ExecConfig::default(),
        )
        .unwrap();
        assert!(out.completed(), "{:?}", out.fault);
    }

    #[test]
    fn race_free_program_is_untouched() {
        let t = transform(
            "global lock; global v; class L { field pad; }
             fn worker() { sync (lock) { v = v + 1; } }
             fn main() {
                 lock = new L();
                 let t1 = spawn worker();
                 let t2 = spawn worker();
                 join t1; join t2;
             }",
        );
        assert!(t.info.method_wrapped.is_empty());
        assert_eq!(t.info.stmt_wrapped, 0);
    }

    #[test]
    fn wrapped_methods_exit_on_early_return() {
        let t = transform(
            "global flag;
             fn racer(v) {
                 if (v > 0) { flag = v; return; }
                 flag = 0 - v;
             }
             fn main() {
                 let t1 = spawn racer(1);
                 let t2 = spawn racer(2);
                 join t1; join t2;
             }",
        );
        assert!(t.info.method_wrapped.contains(&"racer".to_string()));
        let out = light_runtime::run(
            &t.program,
            &[],
            light_runtime::ExecConfig::default(),
        )
        .unwrap();
        assert!(out.completed(), "{:?}", out.fault);
    }
}
