//! The Chimera-style replay pipeline (Lee et al., PLDI'12): transform the
//! program to be race-free (see [`crate::transform`]), then record only
//! the order of lock operations, which suffices for deterministic replay
//! of the transformed program.
//!
//! The failure mode the Light paper documents: the serialization hides
//! bugs whose manifestation requires the racing methods to interleave —
//! [`ChimeraOutcome::BugNeverManifests`].

use crate::sync_only::SyncOnlyRecorder;
use crate::transform::{chimera_transform, ChimeraTransform, TransformInfo};
use light_analysis::Analysis;
use light_core::{ConstraintSystem, Recording};
use light_runtime::{
    run, ExecConfig, NondetMode, NullRecorder, RunOutcome, SchedulerSpec, SetupError,
};
use lir::Program;
use std::sync::Arc;
use std::time::Duration;

/// The result of a Chimera reproduction attempt.
#[derive(Debug, Clone)]
pub enum ChimeraOutcome {
    /// The bug manifested on the transformed program and the lock-order
    /// replay reproduced a correlated failure.
    Reproduced { seed: u64, replay: RunOutcome },
    /// The added serialization prevented the bug from manifesting at all —
    /// the paper's documented miss.
    BugNeverManifests { attempts: u64 },
    /// The bug was recorded but lock-order-only replay did not reproduce a
    /// correlated failure (the residual race resolved differently).
    ReplayMissed { seed: u64, replay: Option<RunOutcome> },
}

impl ChimeraOutcome {
    /// Whether the bug was reproduced.
    pub fn reproduced(&self) -> bool {
        matches!(self, ChimeraOutcome::Reproduced { .. })
    }
}

/// The Chimera tool for one program.
pub struct Chimera {
    transform: ChimeraTransform,
    analysis: Analysis,
}

impl Chimera {
    /// Creates the tool: runs the race analysis on `program` and applies
    /// the lock-weaving transformation.
    pub fn new(program: Arc<Program>) -> Self {
        let original_analysis = light_analysis::analyze(&program);
        let transform = chimera_transform(&program, &original_analysis);
        let analysis = light_analysis::analyze(&transform.program);
        Self {
            transform,
            analysis,
        }
    }

    /// The transformed (race-free) program.
    pub fn program(&self) -> &Arc<Program> {
        &self.transform.program
    }

    /// What the transformation serialized.
    pub fn info(&self) -> &TransformInfo {
        &self.transform.info
    }

    /// Records one chaos run of the transformed program, logging only
    /// synchronization (ghost) dependences and nondeterministic inputs.
    ///
    /// # Errors
    ///
    /// [`SetupError`] on entry/arity problems.
    pub fn record_chaos(
        &self,
        args: &[i64],
        seed: u64,
    ) -> Result<(Recording, RunOutcome), SetupError> {
        let recorder = SyncOnlyRecorder::new();
        let config = ExecConfig {
            recorder: recorder.clone(),
            scheduler: SchedulerSpec::Chaos { seed },
            policy: self.analysis.policy.clone(),
            nondet: NondetMode::Real { seed },
            ..ExecConfig::default()
        };
        let outcome = run(&self.transform.program, args, config)?;
        let recording = recorder.take_recording(outcome.fault.clone(), args);
        Ok((recording, outcome))
    }

    /// Replays a sync-only recording by enforcing the recorded lock
    /// operation order (no data-access ordering, no blind-write
    /// suppression).
    ///
    /// # Errors
    ///
    /// [`SetupError`] on entry/arity problems.
    pub fn replay(&self, recording: &Recording) -> Result<Option<RunOutcome>, SetupError> {
        let sys = ConstraintSystem::build(recording);
        let Ok((mut schedule, _)) = sys.solve(recording) else {
            return Ok(None);
        };
        // Only the lock order is enforced; data accesses run free.
        schedule.set_strict(false);
        let config = ExecConfig {
            recorder: Arc::new(NullRecorder),
            scheduler: SchedulerSpec::Controlled {
                schedule,
                timeout: Duration::from_secs(10),
            },
            policy: self.analysis.policy.clone(),
            nondet: NondetMode::Scripted(recording.nondet.clone()),
            wake_all_on_notify: true,
            ..ExecConfig::default()
        };
        Ok(Some(run(&self.transform.program, &recording.args, config)?))
    }

    /// Full pipeline: search chaos seeds of the *transformed* program for
    /// the bug, then replay it from the lock-order recording.
    ///
    /// # Errors
    ///
    /// [`SetupError`] on entry/arity problems.
    pub fn hunt_and_reproduce(
        &self,
        args: &[i64],
        seeds: std::ops::Range<u64>,
    ) -> Result<ChimeraOutcome, SetupError> {
        let mut attempts = 0;
        for seed in seeds {
            attempts += 1;
            let (recording, outcome) = self.record_chaos(args, seed)?;
            if outcome.program_bug().is_none() {
                continue;
            }
            let replay = self.replay(&recording)?;
            let correlated = replay.as_ref().is_some_and(|r| {
                light_core::faults_correlate(recording.fault.as_ref(), r.fault.as_ref())
            });
            return Ok(if correlated {
                ChimeraOutcome::Reproduced {
                    seed,
                    replay: replay.expect("checked"),
                }
            } else {
                ChimeraOutcome::ReplayMissed { seed, replay }
            });
        }
        Ok(ChimeraOutcome::BugNeverManifests { attempts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_hides_toctou_bug() {
        // The cache-style TOCTOU bug: reader() and writer() are racy
        // non-blocking methods, so Chimera serializes them whole — the
        // null window can no longer interleave.
        let program = Arc::new(
            lir::parse(
                "class Cache { field entry; } class Entry { field value; }
                 global cache;
                 fn writer() {
                     let i = 0;
                     while (i < 6) {
                         cache.entry = null;
                         let e = new Entry();
                         e.value = 1;
                         cache.entry = e;
                         i = i + 1;
                     }
                 }
                 fn reader() {
                     let i = 0;
                     while (i < 6) {
                         let e = cache.entry;
                         if (e != null) { let v = cache.entry.value; }
                         i = i + 1;
                     }
                 }
                 fn main() {
                     cache = new Cache();
                     let e = new Entry();
                     cache.entry = e;
                     let t1 = spawn writer();
                     let t2 = spawn reader();
                     join t1; join t2;
                 }",
            )
            .unwrap(),
        );
        // Sanity: the untransformed program does exhibit the bug.
        let light = light_core::Light::new(program.clone());
        assert!(
            light.find_bug(&[], 0..40).is_some(),
            "original program must be buggy"
        );

        let chimera = Chimera::new(program);
        assert!(
            chimera.info().method_wrapped.contains(&"reader".to_string()),
            "reader must be serialized: {:?}",
            chimera.info()
        );
        let outcome = chimera.hunt_and_reproduce(&[], 0..40).unwrap();
        assert!(
            matches!(outcome, ChimeraOutcome::BugNeverManifests { .. }),
            "serialization must hide the bug, got {outcome:?}"
        );
    }

    #[test]
    fn ordering_bug_still_reproduced() {
        // An ordering violation through wait/notify-free code: worker uses
        // a value main may not have published yet. The racy statements are
        // in blocking main (statement-wrapped) and non-blocking worker —
        // statement-granular locks do NOT forbid the bad ordering.
        let program = Arc::new(
            lir::parse(
                "global ready; global data;
                 fn worker() {
                     if (ready == 1) {
                         let d = data;
                         assert(d == 42);
                     }
                 }
                 fn main() {
                     let t = spawn worker();
                     ready = 1;
                     data = 42;
                     join t;
                 }",
            )
            .unwrap(),
        );
        let chimera = Chimera::new(program);
        let outcome = chimera.hunt_and_reproduce(&[], 0..80).unwrap();
        // The ordering bug (ready observed before data written) survives
        // the transformation and must be reproduced from lock orders: with
        // every racy statement individually locked, the lock order fully
        // determines the interleaving of those statements.
        assert!(
            outcome.reproduced(),
            "expected reproduction, got {outcome:?}"
        );
    }
}
