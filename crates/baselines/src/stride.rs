//! Stride (Zhou et al., ICSE'12): record-based replay via *bounded
//! linkage*. Writes bump a per-location version under the stripe lock;
//! reads log the version they observed. The global order is reconstructed
//! offline in polynomial time: per location, writes are chained by
//! version, and each read is placed between its version's write and the
//! next.

use light_core::{AccessId, FastMap};
use light_runtime::{
    AccessKind, FaultReport, Loc, Recorder, ReplaySchedule, SyncEvent, Tid,
};
use light_solver::{OrderSolver, SolveError};
use lir::InstrId;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const STRIPES: usize = 256;

/// One logged read: which write version it observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLog {
    pub loc: u64,
    pub version: u64,
    pub id: AccessId,
}

/// One logged write: the version it produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteLog {
    pub loc: u64,
    pub version: u64,
    pub id: AccessId,
}

/// A completed Stride recording.
#[derive(Debug, Clone, Default)]
pub struct StrideRecording {
    pub reads: Vec<ReadLog>,
    pub writes: Vec<WriteLog>,
    /// Log ints flushed to disk in spill mode (overhead measurement only).
    pub spilled_ints: u64,
    pub nondet: HashMap<Tid, Vec<i64>>,
    pub fault: Option<FaultReport>,
    pub args: Vec<i64>,
}

impl StrideRecording {
    /// Space in Long-integer units. Stride logs 32-bit version numbers —
    /// the paper counts each int as half a long — one per read and one per
    /// write.
    pub fn space_longs(&self) -> u64 {
        (self.reads.len() as u64 + self.writes.len() as u64 + self.spilled_ints).div_ceil(2)
            + self.nondet.values().map(|v| v.len() as u64).sum::<u64>()
    }

    /// Offline reconstruction: chain writes per location by version, place
    /// each read after its write and before the next write.
    ///
    /// # Errors
    ///
    /// [`SolveError`] if the logs are inconsistent.
    pub fn schedule(&self) -> Result<ReplaySchedule, SolveError> {
        let mut solver = OrderSolver::new();
        let mut vars = crate::varmap::VarMap::new();

        // Per-location write chains by version.
        let mut writes_by_loc: HashMap<u64, Vec<WriteLog>> = HashMap::new();
        for w in &self.writes {
            writes_by_loc.entry(w.loc).or_default().push(*w);
        }
        for ws in writes_by_loc.values_mut() {
            ws.sort_by_key(|w| w.version);
            for pair in ws.windows(2) {
                let a = vars.var(&mut solver, pair[0].id);
                let b = vars.var(&mut solver, pair[1].id);
                solver.add_lt(a, b);
            }
        }
        // Reads bounded by their version's write and the next write.
        for r in &self.reads {
            let rv = vars.var(&mut solver, r.id);
            if let Some(ws) = writes_by_loc.get(&r.loc) {
                if r.version > 0 {
                    if let Some(w) = ws.iter().find(|w| w.version == r.version) {
                        let wv = vars.var(&mut solver, w.id);
                        solver.add_lt(wv, rv);
                    }
                }
                if let Some(next) = ws.iter().find(|w| w.version == r.version + 1) {
                    let nv = vars.var(&mut solver, next.id);
                    solver.add_lt(rv, nv);
                }
            }
        }
        vars.add_thread_chains(&mut solver);
        let model = solver.solve()?;
        let mut schedule = vars.into_schedule(&model);
        let mut extents: HashMap<Tid, u64> = HashMap::new();
        for id in self
            .reads
            .iter()
            .map(|r| r.id)
            .chain(self.writes.iter().map(|w| w.id))
        {
            let e = extents.entry(id.tid).or_insert(0);
            *e = (*e).max(id.ctr);
        }
        for (tid, ext) in extents {
            schedule.set_extent(tid, ext);
        }
        Ok(schedule)
    }
}

struct TlsBuf {
    recorder_id: u64,
    reads: Vec<ReadLog>,
    writes: Vec<WriteLog>,
}

thread_local! {
    static TLS: RefCell<Option<TlsBuf>> = const { RefCell::new(None) };
}

static STRIDE_IDS: AtomicU64 = AtomicU64::new(1);

#[derive(Default)]
struct Central {
    reads: Vec<ReadLog>,
    writes: Vec<WriteLog>,
    nondet: HashMap<Tid, Vec<i64>>,
}

/// The Stride recorder.
pub struct StrideRecorder {
    id: u64,
    versions: Vec<Mutex<FastMap<u64, u64>>>,
    central: Mutex<Central>,
    spill: Option<Arc<light_core::SpillSink>>,
    spill_threshold: usize,
    spilled: std::sync::atomic::AtomicU64,
}

impl StrideRecorder {
    /// Creates an empty Stride recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            id: STRIDE_IDS.fetch_add(1, Ordering::Relaxed),
            versions: (0..STRIPES).map(|_| Mutex::new(FastMap::default())).collect(),
            central: Mutex::new(Central::default()),
            spill: None,
            spill_threshold: 4096,
            spilled: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Enables spill-to-disk for the thread-local logs (the paper's
    /// measurement configuration).
    pub fn with_spill(
        self: Arc<Self>,
        sink: Arc<light_core::SpillSink>,
        threshold: usize,
    ) -> Arc<Self> {
        let mut inner = Arc::try_unwrap(self)
            .unwrap_or_else(|_| panic!("with_spill must be called before sharing the recorder"));
        inner.spill = Some(sink);
        inner.spill_threshold = threshold.max(1);
        Arc::new(inner)
    }

    fn maybe_spill(&self, buf: &mut TlsBuf) {
        let Some(sink) = &self.spill else { return };
        if buf.reads.len() + buf.writes.len() < self.spill_threshold {
            return;
        }
        let mut words: Vec<u64> = Vec::with_capacity(buf.reads.len() + buf.writes.len());
        words.extend(buf.reads.drain(..).map(|r| r.version));
        words.extend(buf.writes.drain(..).map(|w| w.version));
        self.spilled
            .fetch_add(words.len() as u64, std::sync::atomic::Ordering::Relaxed);
        // Version numbers are 32-bit ints in Stride; two per long.
        sink.write_longs(&words[..words.len() / 2 + words.len() % 2]);
    }

    fn stripe(&self, key: u64) -> &Mutex<FastMap<u64, u64>> {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
        &self.versions[(h as usize) % STRIPES]
    }

    fn with_tls<R>(&self, f: impl FnOnce(&mut TlsBuf) -> R) -> R {
        TLS.with(|cell| {
            let mut slot = cell.borrow_mut();
            let needs_init = slot.as_ref().map(|b| b.recorder_id != self.id).unwrap_or(true);
            if needs_init {
                *slot = Some(TlsBuf {
                    recorder_id: self.id,
                    reads: Vec::new(),
                    writes: Vec::new(),
                });
            }
            f(slot.as_mut().expect("initialized"))
        })
    }

    fn log_write(&self, key: u64, id: AccessId, op: Option<&mut dyn FnMut() -> u64>) -> u64 {
        let (out, version) = {
            let mut shard = self.stripe(key).lock();
            let out = op.map(|f| f()).unwrap_or(0);
            let slot = shard.entry(key).or_insert(0);
            *slot += 1;
            (out, *slot)
        };
        self.with_tls(|buf| {
            buf.writes.push(WriteLog {
                loc: key,
                version,
                id,
            });
            self.maybe_spill(buf);
        });
        out
    }

    fn log_read(&self, key: u64, id: AccessId, op: &mut dyn FnMut() -> u64) -> u64 {
        // Speculative version matching, like Light's read path.
        let (out, version) = loop {
            let v1 = self.stripe(key).lock().get(&key).copied().unwrap_or(0);
            let out = op();
            let v2 = self.stripe(key).lock().get(&key).copied().unwrap_or(0);
            if v1 == v2 {
                break (out, v1);
            }
        };
        self.with_tls(|buf| {
            buf.reads.push(ReadLog {
                loc: key,
                version,
                id,
            });
            self.maybe_spill(buf);
        });
        out
    }

    /// Extracts the recording after the run.
    pub fn take_recording(&self, fault: Option<FaultReport>, args: &[i64]) -> StrideRecording {
        let central = std::mem::take(&mut *self.central.lock());
        StrideRecording {
            reads: central.reads,
            writes: central.writes,
            spilled_ints: self.spilled.load(std::sync::atomic::Ordering::Relaxed),
            nondet: central.nondet,
            fault,
            args: args.to_vec(),
        }
    }
}


impl Recorder for StrideRecorder {
    fn on_access(
        &self,
        tid: Tid,
        ctr: u64,
        loc: Loc,
        kind: AccessKind,
        _guarded: bool,
        _instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        let key = loc.key();
        let id = AccessId::new(tid, ctr);
        match kind {
            AccessKind::Read => self.log_read(key, id, op),
            AccessKind::Write | AccessKind::ReadWrite => self.log_write(key, id, Some(op)),
        }
    }

    fn on_sync(&self, tid: Tid, ctr: u64, ev: SyncEvent, _instr: InstrId) {
        let id = AccessId::new(tid, ctr);
        match ev {
            SyncEvent::MonitorEnter { obj }
            | SyncEvent::Notify { obj, .. }
            | SyncEvent::WaitAfter { obj, .. } => {
                self.log_write(Loc::Monitor(obj).key(), id, None);
            }
            SyncEvent::MonitorExit { obj } | SyncEvent::WaitBefore { obj } => {
                self.log_write(Loc::Monitor(obj).key(), id, None);
            }
            SyncEvent::Spawn { child } => {
                self.log_write(Loc::ThreadLife(child).key(), id, None);
            }
            SyncEvent::ThreadStart { .. } => {
                self.log_write(Loc::ThreadLife(tid).key(), id, None);
            }
            SyncEvent::Join { child, .. } => {
                self.log_write(Loc::ThreadLife(child).key(), id, None);
            }
            SyncEvent::ThreadEnd => {
                self.log_write(Loc::ThreadLife(tid).key(), id, None);
            }
        }
    }

    fn on_nondet(&self, tid: Tid, value: i64) {
        self.central.lock().nondet.entry(tid).or_default().push(value);
    }

    fn on_thread_exit(&self, _tid: Tid) {
        let buf = TLS.with(|cell| cell.borrow_mut().take());
        let Some(buf) = buf else { return };
        if buf.recorder_id != self.id {
            return;
        }
        let mut central = self.central.lock();
        central.reads.extend(buf.reads);
        central.writes.extend(buf.writes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::{ObjId, SlotAction};
    use lir::{BlockId, FieldId, FuncId};

    fn iid() -> InstrId {
        InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        }
    }

    #[test]
    fn versions_increment_per_location() {
        let rec = StrideRecorder::new();
        let loc = Loc::Field(ObjId(0), FieldId(0));
        let t = Tid::ROOT;
        rec.on_access(t, 1, loc, AccessKind::Write, false, iid(), &mut || 0);
        rec.on_access(t, 2, loc, AccessKind::Write, false, iid(), &mut || 0);
        rec.on_access(t, 3, loc, AccessKind::Read, false, iid(), &mut || 0);
        rec.on_thread_exit(t);
        let recording = rec.take_recording(None, &[]);
        assert_eq!(recording.writes.len(), 2);
        assert_eq!(recording.writes[0].version, 1);
        assert_eq!(recording.writes[1].version, 2);
        assert_eq!(recording.reads[0].version, 2);
    }

    #[test]
    fn schedule_places_read_between_writes() {
        let rec = StrideRecorder::new();
        let loc = Loc::Field(ObjId(0), FieldId(0));
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        rec.on_access(t1, 1, loc, AccessKind::Write, false, iid(), &mut || 0);
        rec.on_thread_exit(t1);
        rec.on_access(t2, 1, loc, AccessKind::Read, false, iid(), &mut || 0);
        rec.on_thread_exit(t2);
        rec.on_access(t1, 2, loc, AccessKind::Write, false, iid(), &mut || 0);
        // t1's TLS was taken at exit; the second write lands in a fresh
        // buffer which must also be flushed.
        rec.on_thread_exit(t1);
        let recording = rec.take_recording(None, &[]);
        let schedule = recording.schedule().unwrap();
        let pos = |t: Tid, c: u64| match schedule.action(t, c) {
            Some(SlotAction::Ordered(k)) => k,
            other => panic!("{other:?}"),
        };
        assert!(pos(t1, 1) < pos(t2, 1));
        assert!(pos(t2, 1) < pos(t1, 2));
    }

    #[test]
    fn space_counts_ints_as_half_longs() {
        let rec = StrideRecorder::new();
        let loc = Loc::Field(ObjId(0), FieldId(0));
        let t = Tid::ROOT;
        for c in 1..=4 {
            rec.on_access(t, c, loc, AccessKind::Write, false, iid(), &mut || 0);
        }
        rec.on_thread_exit(t);
        let recording = rec.take_recording(None, &[]);
        assert_eq!(recording.space_longs(), 2); // 4 ints = 2 longs
    }
}
