//! A CLAP-style computation-based replayer (Huang et al., PLDI'13).
//!
//! CLAP records only thread-local information (paths and inputs) and
//! reconstructs the interleaving offline with a solver that must reason
//! about **program values**. Its Achilles heel — per the Light paper, 63%
//! of real bugs — is solver expressiveness: data types like `HashMap` and
//! hash computations have no solver theory.
//!
//! This reimplementation preserves exactly that behavior profile:
//!
//! - the recording is thread-local only (nondeterministic inputs + the
//!   observed failure);
//! - reproduction first checks whether any *reachable* operation is
//!   solver-opaque ([`lir::Intrinsic::is_solver_opaque`]); if so it fails
//!   with [`ClapOutcome::UnsupportedConstructs`], as CLAP's symbolic
//!   encoding would;
//! - otherwise it performs the offline search (execution synthesis over
//!   seeded schedules with the recorded inputs scripted) until a run
//!   correlates with the recorded failure.

use light_analysis::Analysis;
use light_runtime::{
    run, ExecConfig, FaultReport, NondetMode, NullRecorder, RunOutcome, SchedulerSpec, SetupError,
    Tid,
};
use lir::{Instr, Program};
use std::collections::HashMap;
use std::sync::Arc;

/// The thread-local-only information CLAP records.
#[derive(Debug, Clone, Default)]
pub struct ClapRecording {
    pub nondet: HashMap<Tid, Vec<i64>>,
    pub fault: Option<FaultReport>,
    pub args: Vec<i64>,
}

/// The result of a CLAP reproduction attempt.
#[derive(Debug, Clone)]
pub enum ClapOutcome {
    /// A synthesized schedule reproduced a correlated failure.
    Reproduced {
        seed: u64,
        outcome: RunOutcome,
    },
    /// The program uses operations outside the solver's theories.
    UnsupportedConstructs(Vec<String>),
    /// The offline search budget was exhausted without a match.
    SearchExhausted { attempts: u64 },
}

impl ClapOutcome {
    /// Whether the bug was reproduced.
    pub fn reproduced(&self) -> bool {
        matches!(self, ClapOutcome::Reproduced { .. })
    }
}

/// The CLAP-style tool for one program.
pub struct Clap {
    program: Arc<Program>,
    analysis: Analysis,
}

impl Clap {
    /// Creates the tool, running the shared-location analysis (used for
    /// the instrumentation-free original run).
    pub fn new(program: Arc<Program>) -> Self {
        let analysis = light_analysis::analyze(&program);
        Self { program, analysis }
    }

    /// Records an original run: thread-local inputs only (no shared-access
    /// logging at all — CLAP's low-overhead recording).
    ///
    /// # Errors
    ///
    /// [`SetupError`] on entry/arity problems.
    pub fn record_chaos(&self, args: &[i64], seed: u64) -> Result<(ClapRecording, RunOutcome), SetupError> {
        let recorder = Arc::new(crate::nondet_only::NondetOnlyRecorder::new());
        let config = ExecConfig {
            recorder: recorder.clone(),
            scheduler: SchedulerSpec::Chaos { seed },
            policy: self.analysis.policy.clone(),
            nondet: NondetMode::Real { seed },
            ..ExecConfig::default()
        };
        let outcome = run(&self.program, args, config)?;
        Ok((
            ClapRecording {
                nondet: recorder.take(),
                fault: outcome.fault.clone(),
                args: args.to_vec(),
            },
            outcome,
        ))
    }

    /// The solver-opaque operations reachable from the entry point, with
    /// human-readable descriptions. Nonempty means CLAP's symbolic phase
    /// cannot encode the program.
    pub fn unsupported_constructs(&self) -> Vec<String> {
        let mut found = Vec::new();
        let Some(entry) = self.program.entry else {
            return found;
        };
        // Reachable = reachable from entry over calls and spawns.
        let mut reach: Vec<lir::FuncId> = vec![entry];
        let mut seen: std::collections::HashSet<lir::FuncId> = reach.iter().copied().collect();
        while let Some(f) = reach.pop() {
            for block in &self.program.func(f).blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::Call { func, .. } | Instr::Spawn { func, .. }
                            if seen.insert(*func) => {
                                reach.push(*func);
                            }
                        Instr::Intrinsic { intr, .. } if intr.is_solver_opaque() => {
                            found.push(format!(
                                "`{intr}` in `{}` (no solver theory for hash-based collections)",
                                self.program.func(f).name
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
        found.sort();
        found.dedup();
        found
    }

    /// Attempts to reproduce the recorded failure.
    ///
    /// # Errors
    ///
    /// [`SetupError`] on entry/arity problems.
    pub fn reproduce(
        &self,
        recording: &ClapRecording,
        search_seeds: std::ops::Range<u64>,
    ) -> Result<ClapOutcome, SetupError> {
        let unsupported = self.unsupported_constructs();
        if !unsupported.is_empty() {
            return Ok(ClapOutcome::UnsupportedConstructs(unsupported));
        }
        let mut attempts = 0;
        for seed in search_seeds {
            attempts += 1;
            let config = ExecConfig {
                recorder: Arc::new(NullRecorder),
                scheduler: SchedulerSpec::Chaos { seed },
                policy: self.analysis.policy.clone(),
                nondet: NondetMode::Scripted(recording.nondet.clone()),
                ..ExecConfig::default()
            };
            let outcome = run(&self.program, &recording.args, config)?;
            if light_core::faults_correlate(recording.fault.as_ref(), outcome.fault.as_ref()) {
                return Ok(ClapOutcome::Reproduced { seed, outcome });
            }
        }
        Ok(ClapOutcome::SearchExhausted { attempts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unsupported_map_operations() {
        let program = Arc::new(
            lir::parse(
                "global m;
                 fn worker() { map_put(m, 1, 2); }
                 fn main() { m = map_new(); let t = spawn worker(); join t; }",
            )
            .unwrap(),
        );
        let clap = Clap::new(program);
        let unsupported = clap.unsupported_constructs();
        assert!(!unsupported.is_empty());
        assert!(unsupported.iter().any(|s| s.contains("map_put")));
    }

    #[test]
    fn linear_programs_are_supported() {
        let program = Arc::new(
            lir::parse(
                "global x;
                 fn worker() { x = x + 1; }
                 fn main() { let t = spawn worker(); join t; }",
            )
            .unwrap(),
        );
        let clap = Clap::new(program);
        assert!(clap.unsupported_constructs().is_empty());
    }

    #[test]
    fn unreachable_opaque_code_does_not_count() {
        let program = Arc::new(
            lir::parse(
                "global m;
                 fn dead() { map_put(m, 1, 2); }
                 fn main() { let x = 1; }",
            )
            .unwrap(),
        );
        let clap = Clap::new(program);
        assert!(clap.unsupported_constructs().is_empty());
    }
}
