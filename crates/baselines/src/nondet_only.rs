//! A recorder that captures only nondeterministic inputs — the
//! thread-local recording footprint of computation-based tools.

use light_runtime::{AccessKind, Loc, Recorder, SyncEvent, Tid};
use lir::InstrId;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Records `time`/`rand` results and nothing else.
#[derive(Default)]
pub struct NondetOnlyRecorder {
    nondet: Mutex<HashMap<Tid, Vec<i64>>>,
}

impl NondetOnlyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the per-thread input logs.
    pub fn take(&self) -> HashMap<Tid, Vec<i64>> {
        std::mem::take(&mut *self.nondet.lock())
    }
}

impl Recorder for NondetOnlyRecorder {
    fn on_access(
        &self,
        _tid: Tid,
        _ctr: u64,
        _loc: Loc,
        _kind: AccessKind,
        _guarded: bool,
        _instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        op()
    }

    fn on_sync(&self, _tid: Tid, _ctr: u64, _ev: SyncEvent, _instr: InstrId) {}

    fn on_nondet(&self, tid: Tid, value: i64) {
        self.nondet.lock().entry(tid).or_default().push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_only_nondet() {
        let rec = NondetOnlyRecorder::new();
        rec.on_nondet(Tid::ROOT, 5);
        rec.on_nondet(Tid::ROOT, 6);
        let taken = rec.take();
        assert_eq!(taken[&Tid::ROOT], vec![5, 6]);
        assert!(rec.take().is_empty());
    }
}
