//! A recorder that logs only synchronization (ghost) dependences and
//! nondeterministic inputs — Chimera's recording footprint on the
//! transformed (race-free) program.

use light_core::{LightConfig, LightRecorder, Recording};
use light_runtime::{AccessKind, FaultReport, Loc, Recorder, SyncEvent, Tid};
use lir::InstrId;
use std::sync::Arc;

/// Forwards synchronization events and nondeterministic inputs to an inner
/// Light recorder; data accesses pass through unrecorded.
pub struct SyncOnlyRecorder {
    inner: Arc<LightRecorder>,
}

impl SyncOnlyRecorder {
    /// Creates an empty sync-only recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: LightRecorder::new(LightConfig::default(), Default::default(), Default::default()),
        })
    }

    /// Extracts the recording after the run.
    pub fn take_recording(&self, fault: Option<FaultReport>, args: &[i64]) -> Recording {
        self.inner.take_recording(fault, args)
    }
}

impl Recorder for SyncOnlyRecorder {
    fn on_access(
        &self,
        tid: Tid,
        ctr: u64,
        _loc: Loc,
        _kind: AccessKind,
        _guarded: bool,
        _instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        // Not recorded, but the event frontier must still advance so replay
        // does not park threads before events that really happened.
        self.inner.note_event(tid, ctr);
        op()
    }

    fn on_sync(&self, tid: Tid, ctr: u64, ev: SyncEvent, instr: InstrId) {
        self.inner.on_sync(tid, ctr, ev, instr);
    }

    fn on_nondet(&self, tid: Tid, value: i64) {
        self.inner.on_nondet(tid, value);
    }

    fn on_thread_exit(&self, tid: Tid) {
        self.inner.on_thread_exit(tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::ObjId;
    use lir::{BlockId, FieldId, FuncId};

    #[test]
    fn data_accesses_are_not_recorded() {
        let rec = SyncOnlyRecorder::new();
        let iid = InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        };
        let t = Tid::ROOT;
        rec.on_access(
            t,
            1,
            Loc::Field(ObjId(0), FieldId(0)),
            AccessKind::Write,
            false,
            iid,
            &mut || 0,
        );
        rec.on_sync(t, 2, SyncEvent::MonitorEnter { obj: ObjId(1) }, iid);
        rec.on_sync(t, 3, SyncEvent::MonitorExit { obj: ObjId(1) }, iid);
        rec.on_thread_exit(t);
        let recording = rec.take_recording(None, &[]);
        // Only the monitor ghost run is present.
        assert_eq!(recording.deps.len() + recording.runs.len(), 1);
    }
}
