//! Reimplementations of the comparator systems from the Light paper's
//! evaluation (Section 5), sharing the same runtime, analyses and solver:
//!
//! - [`leap`] — Leap (FSE'10): full per-location access-order vectors
//!   under synchronization (Figures 4/5 time & space comparator);
//! - [`stride`] — Stride (ICSE'12): version-clock read logging with
//!   offline bounded-linkage reconstruction (Figures 4/5 comparator);
//! - [`clap`] — CLAP-like (PLDI'13): computation-based replay that fails
//!   on solver-opaque constructs (Figure 6 comparator);
//! - [`chimera`] — Chimera-like (PLDI'12): race serialization plus
//!   lock-order recording, which hides some bugs (Figure 6 comparator).
//!
//! The paper's authors also reimplemented CLAP and Chimera (their source
//! was unavailable); this crate is the analogous reimplementation against
//! the LIR runtime.

pub mod chimera;
pub mod clap;
pub mod leap;
pub mod nondet_only;
pub mod stride;
pub mod sync_only;
pub mod transform;
mod varmap;

pub use chimera::{Chimera, ChimeraOutcome};
pub use clap::{Clap, ClapOutcome, ClapRecording};
pub use leap::{LeapRecorder, LeapRecording};
pub use stride::{StrideRecorder, StrideRecording};
pub use sync_only::SyncOnlyRecorder;
pub use transform::{chimera_transform, ChimeraTransform, TransformInfo};
