//! End-to-end profiler guarantees: recordings are byte-identical with
//! the flight recorder on or off, rings survive concurrent writers and
//! wraparound, the full pipeline attributes ≥ 95% of recorded
//! dependences, and the doctor's halt path yields an ordered post-mortem
//! tail.

use light_core::{write_recording, Light};
use light_doctor::{doctor_replay, inject_divergence, DoctorOptions};
use light_obs::{FlightEvent, FlightKind, FlightSink, NO_SITE};
use light_profile::{Attribution, FlightRecorder, ThreadRing};
use std::sync::Arc;

const PROGRAM: &str = "
global total; global lock;
class L { field pad; }
fn worker(n) {
    let i = 0;
    while (i < n) {
        sync (lock) { total = total + 1; }
        i = i + 1;
    }
}
fn main(n) {
    lock = new L();
    let a = spawn worker(n);
    let b = spawn worker(n);
    let c = spawn worker(n);
    join a; join b; join c;
    print(total);
}";

fn program() -> Arc<lir::Program> {
    Arc::new(lir::parse(PROGRAM).expect("test program parses"))
}

/// The profiler's core promise: attaching a flight recorder must not
/// change what gets recorded — the persisted log stays byte-identical.
#[test]
fn recordings_are_byte_identical_with_profiler_enabled() {
    for seed in [1, 7, 23] {
        let plain = Light::new(program());
        let (bare, _) = plain.record_chaos(&[20], seed).expect("plain recording");

        let mut profiled = Light::new(program());
        let recorder = FlightRecorder::new(1 << 12);
        profiled.set_flight_sink(recorder.clone());
        let (flight, _) = profiled
            .record_chaos(&[20], seed)
            .expect("profiled recording");

        assert!(
            recorder.events_seen() > 0,
            "the profiled run must actually emit flight events"
        );
        assert_eq!(
            write_recording(&bare),
            write_recording(&flight),
            "seed {seed}: recordings must be byte-identical with profiling on"
        );
    }
}

/// Record → schedule → replay with the recorder attached, then check the
/// tentpole acceptance criterion: ≥ 95% of recorded dependence/run units
/// attributed to a variable + stripe.
#[test]
fn full_pipeline_attributes_at_least_95_percent() {
    let prog = program();
    let mut light = Light::new(prog.clone());
    let recorder = FlightRecorder::new(1 << 14);
    light.set_flight_sink(recorder.clone());

    let (recording, _) = light.record_chaos(&[10], 3).expect("recording");
    light.schedule(&recording).expect("schedule");
    light.replay(&recording).expect("replay");

    let events = recorder.dump();
    assert!(!events.is_empty());
    let attr = Attribution::build(&prog, &recording, &events, recorder.totals());
    assert!(
        attr.coverage.units > 0,
        "a contended counter loop records dependences"
    );
    assert!(
        attr.coverage.fraction() >= 0.95,
        "attribution coverage {:.3} below the 95% criterion",
        attr.coverage.fraction()
    );
    // The contended lock shows up as a named variable with log traffic.
    assert!(attr.vars.iter().any(|v| v.log_longs > 0));
    // Solver events flowed: the census saw at least one constraint group.
    assert!(!attr.solver.groups.is_empty());
    // Replay events flowed: the controlled scheduler admitted slots.
    assert!(attr.sched.decisions > 0);
}

/// ≥ 4 threads hammering one recorder concurrently: every event lands in
/// some ring, the exact totals match, and nothing is torn.
#[test]
fn concurrent_writers_from_four_threads() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let recorder = FlightRecorder::new(1 << 16);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let recorder = recorder.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    recorder.record(&FlightEvent {
                        ts_us: i,
                        kind: FlightKind::DepRecorded,
                        tid: t,
                        site: NO_SITE,
                        loc: t << 32 | i,
                        aux: 2,
                    });
                }
            });
        }
    });
    assert_eq!(recorder.events_seen(), THREADS * PER_THREAD);
    assert_eq!(recorder.threads(), THREADS as usize);
    assert_eq!(recorder.dropped(), 0, "rings were large enough to keep all");
    let events = recorder.dump();
    assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
    // Per-writer streams survive interleaving intact: each thread's
    // events keep their payload identity and count.
    for t in 0..THREADS {
        assert_eq!(
            events
                .iter()
                .filter(|ev| ev.tid == t && ev.loc >> 32 == t)
                .count() as u64,
            PER_THREAD
        );
    }
}

/// Wraparound under concurrency: tiny rings keep the newest tail per
/// thread while the totals stay exact.
#[test]
fn wraparound_keeps_tail_and_exact_totals() {
    const CAP: usize = 64;
    const PUSHES: u64 = 1_000;
    let ring = ThreadRing::new(CAP);
    for i in 0..PUSHES {
        ring.push(&FlightEvent {
            ts_us: i,
            kind: FlightKind::PrecHit,
            tid: 0,
            site: NO_SITE,
            loc: i,
            aux: 0,
        });
    }
    let tail = ring.drain();
    assert_eq!(tail.len(), CAP);
    // Oldest-first, and exactly the last CAP events.
    let locs: Vec<u64> = tail.iter().map(|ev| ev.loc).collect();
    let expect: Vec<u64> = (PUSHES - CAP as u64..PUSHES).collect();
    assert_eq!(locs, expect);
}

/// The doctor's post-mortem path: an injected divergence halts the
/// replay and the dumped flight tail is non-empty and ordered by
/// timestamp (merged oldest-first across threads).
#[test]
fn dump_after_halt_is_ordered() {
    let light = Light::new(program());
    let (recording, _) = light.record_chaos(&[10], 5).expect("recording");
    let mut reference = recording.clone();
    inject_divergence(&mut reference).expect("a dependence to corrupt");

    let options = DoctorOptions {
        flight_ring: 4096,
        ..DoctorOptions::default()
    };
    let report =
        doctor_replay(&light, &recording, &reference, &options).expect("checked replay runs");
    assert!(
        report.divergence.is_some(),
        "the injected fault must be detected"
    );
    let tail = &report.flight_tail;
    assert!(!tail.is_empty(), "the halt path must dump the flight tail");
    assert!(
        tail.windows(2).all(|w| w[0].ts_us <= w[1].ts_us),
        "tail must be ordered oldest-first"
    );
    // The tail captures replay-side scheduler activity, not just the
    // solve: the whole point of a post-mortem.
    assert!(tail
        .iter()
        .any(|ev| matches!(ev.kind, FlightKind::SchedDecision | FlightKind::SchedStall)));

    // A healthy self-check keeps the report lean: no tail.
    let healthy =
        doctor_replay(&light, &recording, &recording, &options).expect("healthy replay");
    assert!(healthy.healthy());
    assert!(healthy.flight_tail.is_empty());
}
