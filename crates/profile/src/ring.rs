//! Lock-free per-thread flight-event rings.
//!
//! Each OS thread that emits through a [`FlightRecorder`] gets its own
//! fixed-capacity ring of encoded [`FlightEvent`]s. The write path is
//! wait-free: five relaxed word stores plus one release bump of the
//! thread-local cursor — no locks, no allocation after the first event,
//! no cross-thread cache-line contention. When the ring is full the
//! oldest events are overwritten (a flight recorder keeps the *tail* of
//! history, which is exactly what a post-mortem wants); the per-kind
//! totals keep exact counts regardless, so attribution never loses
//! aggregate truth to wraparound.
//!
//! Dumping is designed for the post-mortem path — the doctor's halt
//! flag, a fault, or end of run — where writers have stopped and the
//! drain sees a quiescent ring. A live dump is safe (slots decode or are
//! rejected) but may drop the handful of events being overwritten at
//! that instant.

use light_obs::{FlightEvent, FlightKind, FlightSink, FLIGHT_KINDS};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Words per encoded event (see [`FlightEvent::encode`]).
const EVENT_WORDS: usize = 5;

/// One thread's event ring: `capacity` five-word slots plus a monotone
/// event cursor (total events ever written, not an index).
pub struct ThreadRing {
    words: Box<[AtomicU64]>,
    cursor: AtomicU64,
}

impl ThreadRing {
    /// Creates a ring holding `capacity` events.
    ///
    /// Rings are created lazily at a thread's *first* event, often while
    /// that thread holds a scheduler turn, so construction must not
    /// touch megabytes of memory: the buffer is allocated as zeroed
    /// `u64`s (a calloc of untouched pages) and reinterpreted in place
    /// rather than built one `AtomicU64` at a time.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        const {
            assert!(size_of::<AtomicU64>() == size_of::<u64>());
            assert!(align_of::<AtomicU64>() == align_of::<u64>());
        }
        let raw = Box::into_raw(vec![0u64; capacity * EVENT_WORDS].into_boxed_slice());
        // SAFETY: AtomicU64 has the same size, alignment, and bit
        // validity as u64 (asserted above), and zero is a valid value.
        let words = unsafe { Box::from_raw(raw as *mut [AtomicU64]) };
        ThreadRing {
            words,
            cursor: AtomicU64::new(0),
        }
    }

    /// Events the ring can retain.
    pub fn capacity(&self) -> usize {
        self.words.len() / EVENT_WORDS
    }

    /// Total events ever pushed (monotone; exceeds `capacity` once the
    /// ring has wrapped).
    pub fn written(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Appends one event. Must only be called by the ring's owning
    /// thread (the single-writer invariant is what makes the relaxed
    /// stores sound); `FlightRecorder` guarantees this by construction.
    pub fn push(&self, ev: &FlightEvent) {
        let seq = self.cursor.load(Ordering::Relaxed);
        let base = (seq as usize % self.capacity()) * EVENT_WORDS;
        let enc = ev.encode();
        for (i, word) in enc.iter().enumerate() {
            self.words[base + i].store(*word, Ordering::Relaxed);
        }
        // Publish: a reader that acquires the new cursor sees the slot.
        self.cursor.store(seq + 1, Ordering::Release);
    }

    /// Drains the retained tail, oldest first. Exact when the writer has
    /// stopped (the post-mortem case); during a live dump, slots torn by
    /// concurrent overwrite are skipped when their kind byte no longer
    /// decodes (and may otherwise carry a mixed-generation event — the
    /// price of a wait-free writer).
    pub fn drain(&self) -> Vec<FlightEvent> {
        let cap = self.capacity() as u64;
        let end = self.cursor.load(Ordering::Acquire);
        let start = end.saturating_sub(cap);
        let mut out = Vec::with_capacity((end - start) as usize);
        for seq in start..end {
            let base = (seq as usize % self.capacity()) * EVENT_WORDS;
            let mut words = [0u64; EVENT_WORDS];
            for (i, w) in words.iter_mut().enumerate() {
                *w = self.words[base + i].load(Ordering::Relaxed);
            }
            if let Some(ev) = FlightEvent::decode(words) {
                out.push(ev);
            }
        }
        out
    }
}

/// Distinguishes [`FlightRecorder`] instances in the thread-local ring
/// cache (a process can host several recorders, e.g. tests).
static RECORDER_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's rings, one per live recorder it has emitted to.
    static TLS_RINGS: RefCell<Vec<(usize, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// The canonical [`FlightSink`]: per-thread rings plus exact per-kind
/// totals. Create one, attach it via
/// [`light_core::Light::set_flight_sink`] (or
/// [`light_obs::Flight::with_sink`]), run the pipeline, then [`dump`]
/// and feed the events to [`crate::Attribution`].
///
/// [`dump`]: FlightRecorder::dump
pub struct FlightRecorder {
    id: usize,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    totals: [AtomicU64; FLIGHT_KINDS],
}

impl FlightRecorder {
    /// Creates a recorder whose per-thread rings hold `capacity` events
    /// each. 4096 (~160 KiB/thread) is plenty for post-mortem tails; the
    /// CLI uses 65536 to capture whole small runs.
    pub fn new(capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            capacity,
            rings: Mutex::new(Vec::new()),
            totals: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// A [`light_obs::Flight`] handle emitting into this recorder.
    pub fn flight(self: &Arc<Self>) -> light_obs::Flight {
        light_obs::Flight::with_sink(self.clone())
    }

    /// This thread's ring, creating and registering it on first use.
    fn ring(&self) -> Arc<ThreadRing> {
        TLS_RINGS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some((_, ring)) = tls.iter().find(|(id, _)| *id == self.id) {
                return ring.clone();
            }
            let ring = Arc::new(ThreadRing::new(self.capacity));
            self.rings.lock().unwrap().push(ring.clone());
            tls.push((self.id, ring.clone()));
            ring
        })
    }

    /// Exact per-kind event counts (immune to ring wraparound).
    pub fn totals(&self) -> Vec<(FlightKind, u64)> {
        (0..FLIGHT_KINDS as u8)
            .filter_map(FlightKind::from_u8)
            .map(|k| (k, self.totals[k as usize].load(Ordering::Relaxed)))
            .collect()
    }

    /// Total events seen across all threads.
    pub fn events_seen(&self) -> u64 {
        self.totals.iter().map(|t| t.load(Ordering::Relaxed)).sum()
    }

    /// Events lost to ring wraparound (seen minus retained).
    pub fn dropped(&self) -> u64 {
        let retained: u64 = self
            .rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.written().min(r.capacity() as u64))
            .sum();
        self.events_seen().saturating_sub(retained)
    }

    /// Number of threads that have emitted at least one event.
    pub fn threads(&self) -> usize {
        self.rings.lock().unwrap().len()
    }

    /// Drains every thread's retained tail, merged into one timeline
    /// sorted by timestamp (ties keep per-thread order). Call after the
    /// run — or from a halt/divergence path once writers have stopped —
    /// for an exact dump.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let rings = self.rings.lock().unwrap();
        let mut out = Vec::new();
        for ring in rings.iter() {
            out.extend(ring.drain());
        }
        out.sort_by_key(|ev| ev.ts_us);
        out
    }

    /// The newest `n` events of the merged timeline, oldest first — the
    /// live watchdog tail. Safe while writers are still running (torn
    /// slots are skipped, see [`ThreadRing::drain`]); bounded output fit
    /// for embedding in a log line.
    pub fn dump_tail(&self, n: usize) -> Vec<FlightEvent> {
        let mut all = self.dump();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }
}

impl FlightSink for FlightRecorder {
    fn record(&self, ev: &FlightEvent) {
        self.totals[ev.kind as usize].fetch_add(1, Ordering::Relaxed);
        self.ring().push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_obs::NO_SITE;

    fn ev(kind: FlightKind, ts: u64, loc: u64) -> FlightEvent {
        FlightEvent {
            ts_us: ts,
            kind,
            tid: 1,
            site: NO_SITE,
            loc,
            aux: 0,
        }
    }

    #[test]
    fn ring_retains_tail_on_wrap() {
        let ring = ThreadRing::new(4);
        for i in 0..10u64 {
            ring.push(&ev(FlightKind::PrecHit, i, i));
        }
        let events = ring.drain();
        assert_eq!(events.len(), 4);
        let locs: Vec<u64> = events.iter().map(|e| e.loc).collect();
        assert_eq!(locs, vec![6, 7, 8, 9], "oldest-first tail");
        assert_eq!(ring.written(), 10);
    }

    #[test]
    fn totals_survive_wrap() {
        let rec = FlightRecorder::new(2);
        let flight = rec.flight();
        for i in 0..100 {
            flight.emit(FlightKind::DepRecorded, 1, NO_SITE, i, 2);
        }
        assert_eq!(rec.events_seen(), 100);
        assert_eq!(rec.dropped(), 98);
        let totals = rec.totals();
        assert_eq!(
            totals
                .iter()
                .find(|(k, _)| *k == FlightKind::DepRecorded)
                .unwrap()
                .1,
            100
        );
        assert_eq!(rec.dump().len(), 2);
    }

    #[test]
    fn dump_tail_keeps_newest_events() {
        let rec = FlightRecorder::new(64);
        let flight = rec.flight();
        for i in 0..10 {
            flight.emit(FlightKind::PrecHit, 1, NO_SITE, i, 0);
        }
        let tail = rec.dump_tail(3);
        let locs: Vec<u64> = tail.iter().map(|e| e.loc).collect();
        assert_eq!(locs, vec![7, 8, 9], "newest three, oldest first");
        assert_eq!(rec.dump_tail(100).len(), 10, "n past len is the whole dump");
        assert!(rec.dump_tail(0).is_empty());
    }
}
