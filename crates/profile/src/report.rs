//! The stable machine-readable profile report.
//!
//! Schema `light-profile/v1`: consumers key off `schema.name` and may
//! rely on every field below existing (additive evolution only — new
//! fields may appear, existing ones keep their meaning). Validated in CI
//! by `scripts/check_profile_report.py`.

use crate::Attribution;
use light_obs::json::Value;

/// Builds the `light-profile/v1` JSON document.
pub fn to_json(attr: &Attribution, program: &str) -> Value {
    let totals = Value::Obj(
        attr.totals
            .iter()
            .map(|(k, n)| (k.name().to_string(), Value::from(*n)))
            .collect(),
    );
    let vars = Value::arr(attr.vars.iter().map(|v| {
        Value::obj([
            ("name", Value::Str(v.name.clone())),
            ("key", Value::from(v.key)),
            ("stripe", Value::from(v.stripe)),
            ("deps", Value::from(v.deps)),
            ("runs", Value::from(v.runs)),
            ("log_longs", Value::from(v.log_longs)),
            ("prec_hits", Value::from(v.prec_hits)),
            ("o1_merges", Value::from(v.o1_merges)),
            ("o2_elisions", Value::from(v.o2_elisions)),
        ])
    }));
    // Stripes ship sparse: only rows with any activity.
    let stripes = Value::arr(
        attr.stripes
            .iter()
            .filter(|s| s.records > 0 || s.contention > 0)
            .map(|s| {
                Value::obj([
                    ("stripe", Value::from(s.stripe)),
                    ("records", Value::from(s.records)),
                    ("contention", Value::from(s.contention)),
                ])
            }),
    );
    let lines = Value::arr(attr.lines.iter().map(|l| {
        Value::obj([
            ("line", Value::from(l.line)),
            ("func", Value::Str(l.func.clone())),
            ("deps", Value::from(l.deps)),
            ("runs", Value::from(l.runs)),
            ("log_longs", Value::from(l.log_longs)),
            ("prec_hits", Value::from(l.prec_hits)),
            ("o1_merges", Value::from(l.o1_merges)),
            ("o2_elisions", Value::from(l.o2_elisions)),
            ("elided_longs", Value::from(l.elided_longs)),
            ("ghost_ops", Value::from(l.ghost_ops)),
        ])
    }));
    Value::obj([
        (
            "schema",
            Value::obj([
                ("name", Value::from("light-profile/v1")),
                ("program", Value::from(program)),
            ]),
        ),
        (
            "coverage",
            Value::obj([
                ("units", Value::from(attr.coverage.units)),
                ("attributed", Value::from(attr.coverage.attributed)),
                ("fraction", Value::from(attr.coverage.fraction())),
                ("with_line_site", Value::from(attr.coverage.with_line_site)),
            ]),
        ),
        ("totals", totals),
        ("vars", vars),
        ("stripes", stripes),
        ("lines", lines),
        (
            "sched",
            Value::obj([
                ("decisions", Value::from(attr.sched.decisions)),
                ("stalls", Value::from(attr.sched.stalls)),
                ("stall_ns", Value::from(attr.sched.stall_ns)),
                ("parks", Value::from(attr.sched.parks)),
                ("spec_fails", Value::from(attr.sched.spec_fails)),
            ]),
        ),
        (
            "solver",
            Value::obj([
                ("decisions", Value::from(attr.solver.decisions)),
                ("backtracks", Value::from(attr.solver.backtracks)),
                ("components", Value::from(attr.solver.components)),
                (
                    "widest_component",
                    Value::from(attr.solver.widest_component),
                ),
                (
                    "component_decisions",
                    Value::from(attr.solver.component_decisions),
                ),
                (
                    "groups",
                    Value::Obj(
                        attr.solver
                            .groups
                            .iter()
                            .map(|(name, n)| (name.clone(), Value::from(*n)))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_core::Recording;

    #[test]
    fn report_has_the_stable_envelope() {
        let program = lir::parse("global x; fn main() { x = 1; }").unwrap();
        let attr = Attribution::build(&program, &Recording::default(), &[], Vec::new());
        let doc = to_json(&attr, "test.lir");
        assert_eq!(
            doc.get("schema").and_then(|s| s.get("name")).and_then(Value::as_str),
            Some("light-profile/v1")
        );
        for key in ["coverage", "totals", "vars", "stripes", "lines", "sched", "solver"] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            doc.get("coverage").and_then(|c| c.get("fraction")).and_then(Value::as_f64),
            Some(1.0)
        );
    }
}
