//! # light-profile — flight recorder + overhead attribution
//!
//! Two capabilities on top of the pipeline's [`light_obs::Flight`] hook:
//!
//! 1. **Flight recorder** ([`FlightRecorder`]): a lock-free per-thread
//!    ring-buffer sink for the compact [`light_obs::FlightEvent`]s the
//!    recorder, controlled scheduler, constraint builder and solver emit.
//!    Fixed capacity per thread, wait-free on the hot path (one atomic
//!    bump plus five relaxed stores), cheap enough to leave on, and
//!    dumpable post-mortem — e.g. from the doctor's halt path after a
//!    divergence.
//!
//! 2. **Attribution engine** ([`Attribution`]): folds a recording plus
//!    the captured events into per-variable, per-stripe, and per-line
//!    profiles — dependence-density, stripe-contention histograms,
//!    log-bytes-by-site, elision-savings-by-site, solver constraint
//!    census — exported as folded-stack flamegraph text ([`folded`]),
//!    a stable JSON report ([`report`]), and an ANSI terminal heatmap
//!    ([`heatmap`]).
//!
//! The `light-profile` binary packages both: it records (and optionally
//! replays) a program with the flight recorder attached and emits all
//! three artifact kinds.
//!
//! ```
//! use std::sync::Arc;
//! use light_core::Light;
//! use light_profile::{Attribution, FlightRecorder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(lir::parse(
//!     "global x;
//!      fn t() { x = x + 1; }
//!      fn main() { x = 1; let h = spawn t(); join h; print(x); }",
//! )?);
//! let mut light = Light::new(Arc::clone(&program));
//! let recorder = FlightRecorder::new(4096);
//! light.set_flight_sink(recorder.clone());
//! let (recording, _) = light.record(&[], 7)?;
//! let events = recorder.dump();
//! let attr = Attribution::build(&program, &recording, &events, recorder.totals());
//! assert!(attr.coverage.fraction() >= 0.95);
//! # Ok(())
//! # }
//! ```

mod attribution;
pub mod folded;
pub mod heatmap;
pub mod report;
mod ring;

pub use attribution::{
    Attribution, Coverage, LineProfile, SchedProfile, SolverProfile, StripeProfile, VarProfile,
};
pub use ring::{FlightRecorder, ThreadRing};
