//! Folded-stack export: `frame1;frame2;... value` lines, the format
//! consumed by `inferno` / Brendan Gregg's `flamegraph.pl`.
//!
//! Stacks are rooted at the pipeline phase so one flamegraph shows the
//! whole record/solve/replay cost shape side by side:
//!
//! ```text
//! record;@total;dep-recorded 42       # log longs by variable
//! record;line:worker:7;dep-recorded 30  # log longs by .lir line
//! record;@total;o2-elision 12         # elided accesses by variable
//! solve;group:flow-dep 18             # constraints by group
//! replay;sched;stall 5                # scheduler admission behavior
//! ```

use crate::Attribution;
use std::fmt::Write as _;

/// Renders the attribution as folded stacks. Values are long words for
/// log-traffic frames and event counts elsewhere; zero-valued stacks are
/// skipped (flamegraph.pl rejects them).
pub fn folded_stacks(attr: &Attribution) -> String {
    let mut out = String::new();
    let mut line = |stack: &str, value: u64| {
        if value > 0 {
            let _ = writeln!(out, "{stack} {value}");
        }
    };

    for v in &attr.vars {
        let dep_longs: u64 = v.log_longs;
        line(&format!("record;{};log-longs", v.name), dep_longs);
        line(&format!("record;{};prec-hit", v.name), v.prec_hits);
        line(&format!("record;{};o1-merge", v.name), v.o1_merges);
        line(&format!("record;{};o2-elision", v.name), v.o2_elisions);
    }
    for l in &attr.lines {
        let frame = if l.func.is_empty() {
            format!("line:{}", l.line)
        } else {
            format!("line:{}:{}", l.func, l.line)
        };
        line(&format!("record;{frame};dep-recorded"), l.deps);
        line(&format!("record;{frame};run-recorded"), l.runs);
        line(&format!("record;{frame};log-longs"), l.log_longs);
        line(&format!("record;{frame};elided-longs"), l.elided_longs);
        line(&format!("record;{frame};ghost-op"), l.ghost_ops);
    }
    for s in &attr.stripes {
        line(
            &format!("record;stripe:{};contention", s.stripe),
            s.contention,
        );
    }
    for (group, count) in &attr.solver.groups {
        line(&format!("solve;group:{group}"), *count);
    }
    line("solve;decisions", attr.solver.decisions);
    line("solve;backtracks", attr.solver.backtracks);
    line("replay;sched;decision", attr.sched.decisions);
    line("replay;sched;stall", attr.sched.stalls);
    line("replay;sched;park", attr.sched.parks);
    line("replay;sched;spec-fail", attr.sched.spec_fails);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_core::Recording;
    use light_core::{AccessId, DepEdge};
    use light_runtime::{Loc, Tid};

    #[test]
    fn stacks_are_well_formed_and_nonzero() {
        let program = lir::parse("global x; fn main() { x = 1; }").unwrap();
        let rec = Recording {
            deps: vec![DepEdge {
                loc: Loc::Global(lir::GlobalId(0)).key(),
                w: Some(AccessId::new(Tid::ROOT, 1)),
                r_tid: Tid::ROOT,
                r_first: 2,
                r_last: 2,
            }],
            ..Recording::default()
        };
        let attr = crate::Attribution::build(&program, &rec, &[], Vec::new());
        let text = folded_stacks(&attr);
        assert!(!text.is_empty());
        for line in text.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("stack SPACE value");
            assert!(stack.contains(';'), "stacks have at least two frames");
            assert!(value.parse::<u64>().expect("numeric value") > 0);
        }
        assert!(text.contains("record;@x;log-longs 2"));
    }
}
