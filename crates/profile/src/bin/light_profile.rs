//! `light-profile` — flight-record a program through the Light pipeline
//! and attribute the recording/replay overhead.
//!
//! ```text
//! light-profile prog.lir                      # record + solve, terminal heatmap
//! light-profile prog.lir --args 4 --seed 7    # chaos-record with arguments
//! light-profile --corpus cache4j --replay     # corpus bug, full pipeline
//! light-profile prog.lir --json out.json --folded out.folded
//! ```
//!
//! Always runs record + schedule (constraint build + solve); `--replay`
//! adds the controlled replay run so scheduler admission events appear.
//! Output: a terminal heatmap + summary (suppress with `--quiet`), a
//! folded-stack file for `inferno`/`flamegraph.pl` (`--folded`), and the
//! stable `light-profile/v1` JSON report (`--json`). Exit code 0 on
//! success, 1 on usage/pipeline errors.

use light_core::{write_recording, Light};
use light_obs::{FlightKind, RunId};
use light_telemetry::{auto_ingest, RunKind, RunRecord, RunStatus};
use light_profile::{folded, heatmap, report, Attribution, FlightRecorder};
use light_workloads::bugs;
use lir::Program;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: light-profile [options] [<prog.lir>]

targets (one of):
  <prog.lir>           the program under test
  --corpus <name>      a light-workloads corpus bug

options:
  --args <a,b,..>      entry arguments                     (default none)
  --seed <n>           chaos seed                          (default 1)
  --free               record under free scheduling instead of chaos
  --replay             also run the controlled replay
  --ring <n>           flight ring capacity per thread     (default 65536)
  --top <n>            variables shown in the terminal view (default 10)
  --json <out.json>    write the light-profile/v1 report ('-' for stdout)
  --folded <out>       write folded stacks for flamegraph tools
                       ('-' for stdout)
  --color              force ANSI colors (default: only when stdout is a tty)
  --quiet              suppress the terminal heatmap/summary";

struct Cli {
    file: Option<String>,
    corpus: Option<String>,
    args: Vec<i64>,
    seed: u64,
    free: bool,
    replay: bool,
    ring: usize,
    top: usize,
    json: Option<String>,
    folded: Option<String>,
    color: bool,
    quiet: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        file: None,
        corpus: None,
        args: Vec::new(),
        seed: 1,
        free: false,
        replay: false,
        ring: 1 << 16,
        top: 10,
        json: None,
        folded: None,
        color: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--corpus" => cli.corpus = Some(next_val(&mut it, "--corpus")?),
            "--args" => {
                let raw = next_val(&mut it, "--args")?;
                cli.args = raw
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|e| format!("--args: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                cli.seed = next_val(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--free" => cli.free = true,
            "--replay" => cli.replay = true,
            "--ring" => {
                cli.ring = next_val(&mut it, "--ring")?
                    .parse()
                    .map_err(|e| format!("--ring: {e}"))?;
            }
            "--top" => {
                cli.top = next_val(&mut it, "--top")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            "--json" => cli.json = Some(next_val(&mut it, "--json")?),
            "--folded" => cli.folded = Some(next_val(&mut it, "--folded")?),
            "--color" => cli.color = true,
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if cli.file.is_none() && !other.starts_with('-') => {
                cli.file = Some(arg);
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if cli.file.is_none() == cli.corpus.is_none() {
        return Err("give exactly one of <prog.lir> or --corpus".into());
    }
    if cli.ring == 0 {
        return Err("--ring must be positive".into());
    }
    Ok(cli)
}

/// Resolves the program under test and its entry arguments.
fn target(cli: &Cli) -> Result<(String, Arc<Program>, Vec<i64>), String> {
    if let Some(path) = &cli.file {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = Arc::new(lir::parse(&src).map_err(|e| format!("cannot parse {path}: {e}"))?);
        return Ok((path.clone(), program, cli.args.clone()));
    }
    let name = cli.corpus.as_deref().unwrap();
    let corpus = bugs();
    let case = corpus
        .iter()
        .find(|b| b.name == name)
        .ok_or_else(|| format!("unknown corpus bug {name:?}"))?;
    Ok((name.to_string(), case.program(), case.args.clone()))
}

fn write_out(path: &str, contents: &str) -> Result<(), String> {
    if path == "-" {
        print!("{contents}");
        Ok(())
    } else {
        std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("light-profile: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (label, program, args) = match target(&cli) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("light-profile: {e}");
            return ExitCode::FAILURE;
        }
    };

    let run = RunId::fresh();
    let started = std::time::Instant::now();
    let mut light = Light::new(program.clone());
    light.set_run_id(run);
    let recorder = FlightRecorder::new(cli.ring);
    light.set_flight_sink(recorder.clone());

    // Record (flight events: dependence/run/prec/elision/ghost sites).
    let recorded = if cli.free {
        light.record(&args, cli.seed)
    } else {
        light.record_chaos(&args, cli.seed)
    };
    let (recording, outcome) = match recorded {
        Ok(r) => r,
        Err(e) => {
            eprintln!("light-profile: cannot record {label}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Solve (flight events: constraint census, solver ticks).
    if let Err(e) = light.schedule(&recording) {
        eprintln!("light-profile: cannot schedule {label}: {e}");
        return ExitCode::FAILURE;
    }

    // Optional controlled replay (flight events: scheduler admissions).
    if cli.replay {
        if let Err(e) = light.replay(&recording) {
            eprintln!("light-profile: cannot replay {label}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let events = recorder.dump();
    let attr = Attribution::build(&program, &recording, &events, recorder.totals());

    // Best-effort registry ingest (no-op unless LIGHT_REGISTRY is set):
    // the profiled recording is the blob; headline carries the profile's
    // own headline numbers.
    let mut reg = RunRecord::new(&label, RunKind::Profile, RunStatus::Ok);
    reg.run_id = Some(run.to_string());
    reg.wall_ms = Some(started.elapsed().as_millis() as u64);
    reg.headline
        .insert("flight_events".into(), recorder.events_seen() as f64);
    reg.headline
        .insert("log_longs".into(), attr.log_longs() as f64);
    reg.headline
        .insert("elided_longs".into(), attr.elided_longs() as f64);
    reg.headline
        .insert("attribution_fraction".into(), attr.coverage.fraction());
    auto_ingest(reg, Some(write_recording(&recording).as_ref()));

    if !cli.quiet {
        println!("== light-profile: {label} ==");
        match &outcome.fault {
            Some(f) => println!("recorded run faulted: {f}"),
            None => println!("recorded run: clean"),
        }
        println!(
            "flight events: {} captured across {} threads ({} dropped to ring wrap)",
            recorder.events_seen(),
            recorder.threads(),
            recorder.dropped(),
        );
        println!(
            "attribution: {}/{} dep+run units attributed ({:.1}%), {} with line sites",
            attr.coverage.attributed,
            attr.coverage.units,
            attr.coverage.fraction() * 100.0,
            attr.coverage.with_line_site,
        );
        println!(
            "log traffic: {} longs recorded, {} longs saved by O2 elision",
            attr.log_longs(),
            attr.elided_longs(),
        );
        let o2 = attr
            .totals
            .iter()
            .find(|(k, _)| *k == FlightKind::O2Elision)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        println!(
            "solver: {} decisions, {} backtracks across {} constraint groups ({} O2-elided accesses)",
            attr.solver.decisions,
            attr.solver.backtracks,
            attr.solver.groups.len(),
            o2,
        );
        println!();
        let color = cli.color || is_tty();
        print!("{}", heatmap::render(&attr, cli.top, color));
    }

    if let Some(path) = &cli.folded {
        if let Err(e) = write_out(path, &folded::folded_stacks(&attr)) {
            eprintln!("light-profile: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &cli.json {
        let doc = report::to_json(&attr, &label);
        if let Err(e) = write_out(path, &(doc.to_json_pretty() + "\n")) {
            eprintln!("light-profile: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Whether stdout is a terminal (ANSI colors default on). Checked via
/// the portable `std::io::IsTerminal` trait.
fn is_tty() -> bool {
    use std::io::IsTerminal;
    std::io::stdout().is_terminal()
}
