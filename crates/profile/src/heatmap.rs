//! ANSI terminal rendering: the 16×16 stripe heatmap and top-N variable
//! bars.
//!
//! The heatmap lays the 256 last-write-map stripes out as a 16×16 grid
//! (stripe = row * 16 + col) and colors each cell by its record density
//! (or contention) relative to the maximum, using the xterm-256 grayscale
//! ramp with hot cells in the red/yellow range. Rendering degrades to
//! plain characters when colors are disabled.

use crate::Attribution;
use std::fmt::Write as _;

const GRID: usize = 16;

/// Five-step intensity ramp: xterm-256 background codes, cold → hot.
const RAMP: [u8; 5] = [236, 240, 178, 208, 196];

/// Picks the ramp color for `value` against `max`.
fn ramp(value: u64, max: u64) -> u8 {
    if value == 0 || max == 0 {
        return RAMP[0];
    }
    // Quantize on a sqrt-ish scale so a single hot stripe does not wash
    // out every other non-zero cell.
    let frac = (value as f64 / max as f64).sqrt();
    let idx = ((frac * (RAMP.len() - 1) as f64).ceil() as usize).clamp(1, RAMP.len() - 1);
    RAMP[idx]
}

/// Renders one 16×16 grid of per-stripe `values` with a title and an
/// intensity legend. `color` disables ANSI escapes when false (plain
/// digit-cell fallback for logs/CI).
pub fn stripe_grid(title: &str, values: &[u64], color: bool) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    let total: u64 = values.iter().sum();
    let mut out = String::new();
    let _ = writeln!(out, "{title} (total {total}, max/stripe {max}):");
    for row in 0..GRID {
        out.push_str("  ");
        for col in 0..GRID {
            let v = values.get(row * GRID + col).copied().unwrap_or(0);
            if color {
                let _ = write!(out, "\x1b[48;5;{}m  \x1b[0m", ramp(v, max));
            } else {
                // Plain fallback: one hex-ish intensity digit per cell.
                let d = match () {
                    _ if v == 0 => '.',
                    _ if v == max => '#',
                    _ if v * 4 >= max * 3 => '*',
                    _ if v * 2 >= max => '+',
                    _ => '-',
                };
                out.push(d);
                out.push(d);
            }
        }
        out.push('\n');
    }
    if color {
        out.push_str("  legend:");
        for (i, code) in RAMP.iter().enumerate() {
            let _ = write!(
                out,
                " \x1b[48;5;{code}m \x1b[0m{}",
                if i == 0 { "=0" } else { "" }
            );
        }
        out.push_str(" →max\n");
    } else {
        out.push_str("  legend: .=0 -=low +=mid *=high #=max\n");
    }
    out
}

/// Renders the top-`n` variables by log traffic as width-scaled bars.
pub fn variable_bars(attr: &Attribution, n: usize) -> String {
    let mut out = String::new();
    let max = attr.vars.first().map(|v| v.log_longs).unwrap_or(0);
    let _ = writeln!(out, "hottest variables (log longs, deps/runs/elisions):");
    if max == 0 {
        out.push_str("  (no dependence log traffic)\n");
        return out;
    }
    const WIDTH: usize = 32;
    for v in attr.vars.iter().take(n) {
        let bar = (v.log_longs as usize * WIDTH).div_ceil(max as usize);
        let _ = writeln!(
            out,
            "  {:<24} {:>8} |{:<WIDTH$}| d{} r{} e{}",
            v.name,
            v.log_longs,
            "#".repeat(bar),
            v.deps,
            v.runs,
            v.o2_elisions,
        );
    }
    out
}

/// The full terminal view: density grid, contention grid (only when any
/// stripe contended), and the variable bars.
pub fn render(attr: &Attribution, top: usize, color: bool) -> String {
    let density: Vec<u64> = attr.stripes.iter().map(|s| s.records).collect();
    let contention: Vec<u64> = attr.stripes.iter().map(|s| s.contention).collect();
    let mut out = stripe_grid("stripe record density", &density, color);
    if contention.iter().any(|&c| c > 0) {
        out.push('\n');
        out.push_str(&stripe_grid("stripe lock contention", &contention, color));
    }
    out.push('\n');
    out.push_str(&variable_bars(attr, top));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_grid_has_16_rows_and_legend() {
        let mut values = vec![0u64; 256];
        values[0] = 9;
        values[255] = 3;
        let text = stripe_grid("density", &values, false);
        let rows: Vec<&str> = text.lines().collect();
        // title + 16 grid rows + legend.
        assert_eq!(rows.len(), 18);
        assert!(rows[1].starts_with("  ##"), "stripe 0 is the max cell");
        assert!(rows[16].ends_with("--"), "stripe 255 is a low cell");
    }

    #[test]
    fn color_grid_uses_ansi_background() {
        let values = vec![1u64; 256];
        let text = stripe_grid("density", &values, true);
        assert!(text.contains("\x1b[48;5;"));
        assert!(text.contains("\x1b[0m"));
    }
}
