//! Folding a recording plus flight events into attribution profiles.
//!
//! Attribution answers "where did the recording overhead go": which
//! variables produced the dependence log traffic (and how many long
//! words each cost), which last-write-map stripes were hot or contended,
//! which `.lir` lines paid for recording and which were saved by the O1
//! merge and O2 elision optimizations, and where the solver spent its
//! search.
//!
//! Two sources feed it, deliberately redundant:
//!
//! - the **recording** itself gives exact per-variable/per-stripe
//!   dependence and run counts plus their log cost — complete even when
//!   the flight rings wrapped;
//! - the **flight events** add what the recording cannot carry: the
//!   instruction sites (`.lir` lines) behind each record, the prec/O1/O2
//!   savings, scheduler admission behavior and solver progress.

use light_core::{stripe_of, ConstraintKind, Recording, STRIPE_COUNT};
use light_obs::{FlightEvent, FlightKind, NO_SITE};
use light_runtime::Loc;
use lir::{InstrId, Program};
use std::collections::BTreeMap;

/// Log cost of one dependence edge in long words, mirroring the
/// recorder's accounting: writer id + read-range start, plus one more
/// word when the collapsed range has a distinct end.
fn dep_cost(r_first: u64, r_last: u64) -> u64 {
    2 + u64::from(r_first != r_last)
}

/// Log cost of one run record: loc + bounds + source write, plus one
/// word per own write counter.
fn run_cost(write_ctrs: usize) -> u64 {
    3 + write_ctrs as u64
}

/// One shared variable's (dynamic location's) recording profile.
#[derive(Debug, Clone)]
pub struct VarProfile {
    /// The dynamic location key.
    pub key: u64,
    /// Human-readable name (`@total`, `obj#3.next`, `monitor(obj#1)`...).
    pub name: String,
    /// The last-write-map stripe the key hashes to.
    pub stripe: u32,
    /// Dependence edges recorded against this location.
    pub deps: u64,
    /// Non-interleaved runs recorded against this location.
    pub runs: u64,
    /// Long words of log traffic those records cost.
    pub log_longs: u64,
    /// `prec` hits (reads collapsed into an open record) — from flight
    /// events, zero when profiling was off or the ring wrapped past them.
    pub prec_hits: u64,
    /// O1 write merges into an open run.
    pub o1_merges: u64,
    /// O2-elided accesses.
    pub o2_elisions: u64,
}

/// One last-write-map stripe's profile.
#[derive(Debug, Clone)]
pub struct StripeProfile {
    pub stripe: u32,
    /// Dependence + run records whose location hashes here (density).
    pub records: u64,
    /// Accesses that blocked on this stripe's lock (from the recording's
    /// persisted histogram — exact).
    pub contention: u64,
}

/// One `.lir` source line's profile, built from flight-event sites.
#[derive(Debug, Clone, Default)]
pub struct LineProfile {
    pub line: u32,
    /// Function name owning the site (first seen wins; lines are
    /// function-local in `.lir`).
    pub func: String,
    pub deps: u64,
    pub runs: u64,
    /// Long words of log traffic attributed to this line.
    pub log_longs: u64,
    pub prec_hits: u64,
    pub o1_merges: u64,
    pub o2_elisions: u64,
    /// Long words of log traffic O2 saved here (2 words per elided
    /// access — the cost of the dependence it would have recorded).
    pub elided_longs: u64,
    pub ghost_ops: u64,
}

/// Controlled-scheduler admission profile (replay runs only).
#[derive(Debug, Clone, Default)]
pub struct SchedProfile {
    /// Ordered slots admitted.
    pub decisions: u64,
    /// Admissions that had to wait for their turn.
    pub stalls: u64,
    /// Total nanoseconds spent stalled.
    pub stall_ns: u64,
    /// Threads parked past their event frontier.
    pub parks: u64,
    /// Speculative picks thrown away (suppressions).
    pub spec_fails: u64,
}

/// Solver search profile.
#[derive(Debug, Clone, Default)]
pub struct SolverProfile {
    /// Search decisions (from the last progress tick — exact, the solver
    /// emits a final tick on completion).
    pub decisions: u64,
    pub backtracks: u64,
    /// Constraint census: `(kind name, count)` per non-empty group.
    pub groups: Vec<(String, u64)>,
    /// Independent components the turbo solver split the system into
    /// (0 when the sequential path ran or no component events arrived).
    pub components: u64,
    /// Variable count of the widest component.
    pub widest_component: u64,
    /// Search decisions summed over per-component events — may be less
    /// than the total if the coordinator capped component events.
    pub component_decisions: u64,
}

/// How much of the recording the engine could attribute.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coverage {
    /// Dependence edges + runs in the recording.
    pub units: u64,
    /// Of those, attributed to a named variable + stripe.
    pub attributed: u64,
    /// Dep/run flight events carrying a resolvable instruction site
    /// (line attribution coverage; less than `attributed` when rings
    /// wrapped or profiling was off during recording).
    pub with_line_site: u64,
}

impl Coverage {
    /// Fraction of recorded dependences/runs attributed to a
    /// variable/stripe site (the ≥ 0.95 acceptance criterion).
    pub fn fraction(&self) -> f64 {
        if self.units == 0 {
            1.0
        } else {
            self.attributed as f64 / self.units as f64
        }
    }
}

/// The full attribution: every profile plus exact per-kind event totals.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Per-variable profiles, heaviest log traffic first.
    pub vars: Vec<VarProfile>,
    /// Per-stripe profiles, dense (`STRIPE_COUNT` entries).
    pub stripes: Vec<StripeProfile>,
    /// Per-line profiles, ascending line order, only lines with activity.
    pub lines: Vec<LineProfile>,
    pub sched: SchedProfile,
    pub solver: SolverProfile,
    pub coverage: Coverage,
    /// Exact per-kind totals from the sink (immune to ring wraparound).
    pub totals: Vec<(FlightKind, u64)>,
}

/// Names a location key using the program's symbol tables.
fn name_of(program: &Program, key: u64) -> Option<String> {
    let loc = Loc::from_key(key)?;
    Some(match loc {
        Loc::Global(g) => match program.globals.get(g.0 as usize) {
            Some(name) => format!("@{name}"),
            None => format!("@global#{}", g.0),
        },
        Loc::Field(o, f) => match program.field_names.get(f.0 as usize) {
            Some(name) => format!("obj#{}.{name}", o.0),
            None => format!("obj#{}.field#{}", o.0, f.0),
        },
        _ => loc.to_string(),
    })
}

impl Attribution {
    /// Folds `recording` and `events` into profiles. `totals` are the
    /// sink's exact per-kind counts ([`crate::FlightRecorder::totals`]);
    /// pass an empty vec when only the recording is available.
    pub fn build(
        program: &Program,
        recording: &Recording,
        events: &[FlightEvent],
        totals: Vec<(FlightKind, u64)>,
    ) -> Attribution {
        let mut vars: BTreeMap<u64, VarProfile> = BTreeMap::new();
        fn var<'a>(
            vars: &'a mut BTreeMap<u64, VarProfile>,
            program: &Program,
            key: u64,
        ) -> &'a mut VarProfile {
            vars.entry(key).or_insert_with(|| VarProfile {
                key,
                name: name_of(program, key).unwrap_or_else(|| format!("loc#{key:#x}")),
                stripe: stripe_of(key) as u32,
                deps: 0,
                runs: 0,
                log_longs: 0,
                prec_hits: 0,
                o1_merges: 0,
                o2_elisions: 0,
            })
        }

        // Exact structural attribution from the recording itself.
        let mut stripe_records = vec![0u64; STRIPE_COUNT];
        let mut attributed = 0u64;
        for d in &recording.deps {
            let v = var(&mut vars, program, d.loc);
            v.deps += 1;
            v.log_longs += dep_cost(d.r_first, d.r_last);
            stripe_records[stripe_of(d.loc)] += 1;
            if Loc::from_key(d.loc).is_some() {
                attributed += 1;
            }
        }
        for r in &recording.runs {
            let v = var(&mut vars, program, r.loc);
            v.runs += 1;
            v.log_longs += run_cost(r.write_ctrs.len());
            stripe_records[stripe_of(r.loc)] += 1;
            if Loc::from_key(r.loc).is_some() {
                attributed += 1;
            }
        }

        // Event-borne attribution: lines, savings, scheduler, solver.
        let mut lines: BTreeMap<u32, LineProfile> = BTreeMap::new();
        let mut sched = SchedProfile::default();
        let mut solver = SolverProfile::default();
        let mut groups: BTreeMap<u64, u64> = BTreeMap::new();
        let mut with_line_site = 0u64;
        for ev in events {
            let line = (ev.site != NO_SITE).then(|| {
                let instr = InstrId::unpack(ev.site);
                let entry = lines.entry(program.line_of(instr)).or_default();
                if entry.func.is_empty() {
                    if let Some(f) = program.funcs.get(instr.func.index()) {
                        entry.func = f.name.clone();
                    }
                }
                entry
            });
            match ev.kind {
                FlightKind::DepRecorded => {
                    if let Some(l) = line {
                        l.deps += 1;
                        l.log_longs += ev.aux;
                        with_line_site += 1;
                    }
                }
                FlightKind::RunRecorded => {
                    if let Some(l) = line {
                        l.runs += 1;
                        l.log_longs += ev.aux;
                        with_line_site += 1;
                    }
                }
                FlightKind::PrecHit => {
                    var(&mut vars, program, ev.loc).prec_hits += 1;
                    if let Some(l) = line {
                        l.prec_hits += 1;
                    }
                }
                FlightKind::O1Merge => {
                    var(&mut vars, program, ev.loc).o1_merges += 1;
                    if let Some(l) = line {
                        l.o1_merges += 1;
                    }
                }
                FlightKind::O2Elision => {
                    var(&mut vars, program, ev.loc).o2_elisions += 1;
                    if let Some(l) = line {
                        l.o2_elisions += 1;
                        l.elided_longs += 2;
                    }
                }
                FlightKind::StripeBlocked => {
                    // Counted from the recording's persisted histogram;
                    // the event only adds the (optional) line site.
                }
                FlightKind::GhostOp => {
                    if let Some(l) = line {
                        l.ghost_ops += 1;
                    }
                }
                FlightKind::SpecFail => sched.spec_fails += 1,
                FlightKind::SchedDecision => sched.decisions += 1,
                FlightKind::SchedStall => {
                    sched.stalls += 1;
                    sched.stall_ns += ev.aux;
                }
                FlightKind::SchedPark => sched.parks += 1,
                FlightKind::SolverTick => {
                    // Ticks carry cumulative counters; the final tick at
                    // solve completion is the exact total.
                    solver.decisions = solver.decisions.max(ev.loc);
                    solver.backtracks = solver.backtracks.max(ev.aux);
                }
                FlightKind::ConstraintGroup => {
                    *groups.entry(ev.loc).or_default() += ev.aux;
                }
                FlightKind::SolverComponent => {
                    solver.components += 1;
                    solver.widest_component = solver.widest_component.max(ev.loc);
                    solver.component_decisions += ev.aux;
                }
                FlightKind::StripeResized | FlightKind::BatchFlush => {
                    // Recorder-plumbing lifecycle events: surfaced by
                    // `light-inspect` from the recorder's own counters,
                    // no per-line or per-variable attribution to do.
                }
            }
        }
        solver.groups = groups
            .into_iter()
            .map(|(code, count)| {
                let name = ConstraintKind::from_index(code)
                    .map(|k| k.name().to_string())
                    .unwrap_or_else(|| format!("kind#{code}"));
                (name, count)
            })
            .collect();

        // Stripe profiles: density from the recording's structure,
        // contention from its persisted per-stripe histogram.
        let stripes = (0..STRIPE_COUNT)
            .map(|i| StripeProfile {
                stripe: i as u32,
                records: stripe_records[i],
                contention: recording.stripe_hist.get(i).copied().unwrap_or(0),
            })
            .collect();

        let units = recording.deps.len() as u64 + recording.runs.len() as u64;
        let mut vars: Vec<VarProfile> = vars.into_values().collect();
        vars.sort_by(|a, b| b.log_longs.cmp(&a.log_longs).then(a.key.cmp(&b.key)));
        let mut lines: Vec<LineProfile> = lines
            .into_iter()
            .map(|(line, mut p)| {
                p.line = line;
                p
            })
            .collect();
        lines.sort_by_key(|l| l.line);

        Attribution {
            vars,
            stripes,
            lines,
            sched,
            solver,
            coverage: Coverage {
                units,
                attributed,
                with_line_site,
            },
            totals,
        }
    }

    /// Total log traffic attributed to variables, in long words.
    pub fn log_longs(&self) -> u64 {
        self.vars.iter().map(|v| v.log_longs).sum()
    }

    /// Total O2 savings in long words (2 per elided access).
    pub fn elided_longs(&self) -> u64 {
        self.vars.iter().map(|v| v.o2_elisions * 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_core::{AccessId, DepEdge, RunRec};
    use light_runtime::Tid;

    fn program() -> Program {
        lir::parse(
            "global total;
             fn main() { total = 1; print(total); }",
        )
        .unwrap()
    }

    #[test]
    fn recording_attribution_is_complete_without_events() {
        let t1 = Tid::ROOT;
        let g = Loc::Global(lir::GlobalId(0)).key();
        let rec = Recording {
            deps: vec![DepEdge {
                loc: g,
                w: Some(AccessId::new(t1, 1)),
                r_tid: t1,
                r_first: 2,
                r_last: 4,
            }],
            runs: vec![RunRec {
                loc: g,
                tid: t1,
                w0: None,
                first: 5,
                last: 8,
                write_ctrs: vec![6],
            }],
            ..Recording::default()
        };
        let attr = Attribution::build(&program(), &rec, &[], Vec::new());
        assert_eq!(attr.coverage.units, 2);
        assert_eq!(attr.coverage.attributed, 2);
        assert!(attr.coverage.fraction() >= 0.95);
        assert_eq!(attr.vars.len(), 1);
        let v = &attr.vars[0];
        assert_eq!(v.name, "@total");
        assert_eq!(v.deps, 1);
        assert_eq!(v.runs, 1);
        // dep: 2 + 1 (range), run: 3 + 1 (one own write).
        assert_eq!(v.log_longs, 3 + 4);
        assert_eq!(attr.stripes.len(), STRIPE_COUNT);
        let hot: Vec<_> = attr.stripes.iter().filter(|s| s.records > 0).collect();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].stripe, stripe_of(g) as u32);
        assert_eq!(hot[0].records, 2);
    }

    #[test]
    fn line_sites_fold_into_line_profiles() {
        let program = program();
        let site = InstrId {
            func: lir::FuncId(0),
            block: lir::BlockId(0),
            idx: 0,
        };
        let g = Loc::Global(lir::GlobalId(0)).key();
        let events = vec![
            FlightEvent {
                ts_us: 1,
                kind: FlightKind::DepRecorded,
                tid: 0,
                site: site.pack(),
                loc: g,
                aux: 2,
            },
            FlightEvent {
                ts_us: 2,
                kind: FlightKind::O2Elision,
                tid: 0,
                site: site.pack(),
                loc: g,
                aux: 1,
            },
        ];
        let attr = Attribution::build(&program, &Recording::default(), &events, Vec::new());
        assert_eq!(attr.lines.len(), 1);
        let l = &attr.lines[0];
        assert_eq!(l.line, program.line_of(site));
        assert_eq!(l.func, "main");
        assert_eq!(l.deps, 1);
        assert_eq!(l.log_longs, 2);
        assert_eq!(l.o2_elisions, 1);
        assert_eq!(l.elided_longs, 2);
        assert_eq!(attr.coverage.with_line_site, 1);
    }

    #[test]
    fn solver_and_sched_events_aggregate() {
        let mk = |kind, loc, aux| FlightEvent {
            ts_us: 0,
            kind,
            tid: 0,
            site: NO_SITE,
            loc,
            aux,
        };
        let events = vec![
            mk(FlightKind::SolverTick, 4096, 10),
            mk(FlightKind::SolverTick, 5000, 12),
            mk(FlightKind::ConstraintGroup, 0, 3), // flow-dep
            mk(FlightKind::ConstraintGroup, 8, 2), // disjoint
            mk(FlightKind::SchedDecision, 1, 1),
            mk(FlightKind::SchedStall, 2, 500),
            mk(FlightKind::SolverComponent, 6, 900),
            mk(FlightKind::SolverComponent, 3, 100),
        ];
        let attr = Attribution::build(&program(), &Recording::default(), &events, Vec::new());
        assert_eq!(attr.solver.decisions, 5000);
        assert_eq!(attr.solver.backtracks, 12);
        assert_eq!(attr.solver.components, 2);
        assert_eq!(attr.solver.widest_component, 6);
        assert_eq!(attr.solver.component_decisions, 1000);
        assert_eq!(
            attr.solver.groups,
            vec![("flow-dep".to_string(), 3), ("disjoint".to_string(), 2)]
        );
        assert_eq!(attr.sched.decisions, 1);
        assert_eq!(attr.sched.stalls, 1);
        assert_eq!(attr.sched.stall_ns, 500);
    }
}
