//! `light-inspect` CLI behavior: graceful failure on missing or
//! truncated recordings (clear error, nonzero exit, no panic) and
//! explore-provenance rendering in both output modes.

use light_core::{write_recording, ExploreProvenance, Light, Recording};
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

fn inspect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_light-inspect"))
        .args(args)
        .output()
        .expect("spawn light-inspect")
}

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("light-inspect-test-{}-{name}", std::process::id()));
    p
}

fn sample_recording() -> Recording {
    let program = Arc::new(
        lir::parse(
            "global x; fn worker() { x = x + 1; } \
             fn main() { x = 1; let h = spawn worker(); join h; assert(x == 2); }",
        )
        .unwrap(),
    );
    let light = Light::new(program);
    let (recording, outcome) = light.record(&[], 0).unwrap();
    assert!(outcome.completed());
    recording
}

#[test]
fn missing_recording_fails_cleanly() {
    let out = inspect(&["/nonexistent/no-such-recording.lrec"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}

#[test]
fn truncated_recording_fails_cleanly() {
    let bytes = write_recording(&sample_recording());
    // Every truncation point must yield a clean load error, not a panic;
    // probe a spread of prefixes including the pathological short ones.
    let path = scratch("truncated.lrec");
    for cut in [0, 1, 4, 7, 8, 9, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let out = inspect(&[path.to_str().unwrap()]);
        assert!(!out.status.success(), "cut at {cut} byte(s) succeeded");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("cannot load"), "cut {cut}: {stderr}");
        assert!(!stderr.contains("panicked"), "cut {cut}: {stderr}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn provenance_is_rendered_when_present() {
    let mut recording = sample_recording();
    recording.provenance = Some(ExploreProvenance {
        strategy: "race".into(),
        seed: 42,
        schedules: 17,
        minimized: true,
        trace_segments: 5,
    });
    let path = scratch("provenance.lrec");
    std::fs::write(&path, write_recording(&recording)).unwrap();

    let out = inspect(&[path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("explore provenance: race seed 42 (17 schedules, 5 trace segments, minimized)"),
        "stdout: {stdout}"
    );

    let out = inspect(&[path.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"explore\""), "stdout: {stdout}");
    assert!(stdout.contains("\"strategy\": \"race\""), "stdout: {stdout}");
    std::fs::remove_file(&path).ok();
}

/// The `--json` schema envelope is a stable contract: `schema.name`
/// identifies the shape, and the version + explore fields always exist.
/// Renaming or dropping any of these keys breaks downstream consumers —
/// this test is the tripwire.
#[test]
fn json_schema_envelope_is_stable() {
    let path = scratch("schema.lrec");
    std::fs::write(&path, write_recording(&sample_recording())).unwrap();

    let out = inspect(&[path.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"schema\"",
        "\"name\": \"light-inspect/v1\"",
        &format!("\"log_format_version\": {}", light_core::LOG_FORMAT_VERSION),
        &format!(
            "\"reader_log_format_version\": {}",
            light_core::LOG_FORMAT_VERSION
        ),
        "\"explore\": null",
    ] {
        assert!(stdout.contains(key), "missing {key} in: {stdout}");
    }

    // With provenance, `schema.explore` carries the campaign facts.
    let mut recording = sample_recording();
    recording.provenance = Some(ExploreProvenance {
        strategy: "pct".into(),
        seed: 7,
        schedules: 9,
        minimized: false,
        trace_segments: 3,
    });
    std::fs::write(&path, write_recording(&recording)).unwrap();
    let out = inspect(&[path.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("\"explore\": null"), "stdout: {stdout}");
    assert!(stdout.contains("\"strategy\": \"pct\""), "stdout: {stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn summary_renders_the_turbo_solve_section() {
    let path = scratch("turbo.lrec");
    std::fs::write(&path, write_recording(&sample_recording())).unwrap();
    let out = inspect(&[path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("constraint system:"), "stdout: {stdout}");
    assert!(stdout.contains("turbo solve:"), "stdout: {stdout}");
    assert!(stdout.contains("component(s)"), "stdout: {stdout}");
    assert!(stdout.contains("preprocessing:"), "stdout: {stdout}");
    std::fs::remove_file(&path).ok();
}

/// Saved logs (every format version to date) carry no record-time byte
/// gauges, so the summary must say so explicitly rather than print
/// misleading zeros — mirroring the stripe-contention n/a idiom. The
/// inspect process itself solves the recording live, which populates the
/// solver gauges, so the live table must show real rows.
#[test]
fn summary_renders_the_memory_section_with_na_for_record_time() {
    let path = scratch("mem.lrec");
    std::fs::write(&path, write_recording(&sample_recording())).unwrap();
    let out = inspect(&[path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("memory (record-time): n/a"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("predates the memory plane"), "stdout: {stdout}");
    // The live solve registers at least the clause gauge in-process.
    assert!(
        stdout.contains("memory (this inspect process):"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("solver-clauses"), "stdout: {stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn clean_recording_summary_omits_provenance() {
    let path = scratch("clean.lrec");
    std::fs::write(&path, write_recording(&sample_recording())).unwrap();
    let out = inspect(&[path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("explore provenance"), "stdout: {stdout}");
    std::fs::remove_file(&path).ok();
}
