//! Figure 5 — space consumption (Long-integer units) of Light vs Leap vs
//! Stride, plus the paper's aggregate space statistics table. Run with
//! `cargo bench -p light-bench --bench fig5_space`.

use light_bench::{aggregate, bar, env_u64, filtered_benchmarks, measure_overhead};

fn main() {
    let threads = env_u64("LIGHT_BENCH_THREADS", 4) as i64;
    let scale = env_u64("LIGHT_BENCH_SCALE", 1) as i64;

    println!(
        "== Figure 5: recording space (Long-integer units), t={threads}, scale x{scale} =="
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>8}   normalized",
        "benchmark", "Light", "Leap", "Stride", "L/Leap"
    );

    let mut light_sp = Vec::new();
    let mut leap_sp = Vec::new();
    let mut stride_sp = Vec::new();

    for w in filtered_benchmarks() {
        // Space does not need repetitions: one run per tool.
        let row = measure_overhead(&w, threads, scale, 1);
        let norm = row.leap_space.max(row.stride_space).max(row.light_space).max(1) as f64;
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>7.1}%   L {} | P {} | S {}",
            row.name,
            row.light_space,
            row.leap_space,
            row.stride_space,
            100.0 * row.light_space as f64 / row.leap_space.max(1) as f64,
            bar(row.light_space as f64 / norm, 12),
            bar(row.leap_space as f64 / norm, 12),
            bar(row.stride_space as f64 / norm, 12),
        );
        light_sp.push(row.light_space as f64);
        leap_sp.push(row.leap_space as f64);
        stride_sp.push(row.stride_space as f64);
    }

    println!();
    println!("== Aggregate space statistics (Long-integer units) ==");
    println!("{:<10} {:>12} {:>12} {:>12}", "", "Leap", "Stride", "Light");
    let (la, lm, lmin, lmax) = aggregate(&leap_sp);
    let (sa, sm, smin, smax) = aggregate(&stride_sp);
    let (ga, gm, gmin, gmax) = aggregate(&light_sp);
    println!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "average", la, sa, ga);
    println!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "median", lm, sm, gm);
    println!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "minimum", lmin, smin, gmin);
    println!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "maximum", lmax, smax, gmax);
    println!();
    println!(
        "Paper's shape check: Light space a small fraction of Leap's (paper ~10%): measured {:.1}%: {}",
        100.0 * ga / la,
        if ga < la { "LIGHT SMALLER" } else { "DOES NOT HOLD" }
    );
}
