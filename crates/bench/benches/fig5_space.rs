//! Figure 5 — space consumption (Long-integer units) of Light vs Leap vs
//! Stride, plus the paper's aggregate space statistics table. Run with
//! `cargo bench -p light-bench --bench fig5_space`.
//!
//! Results land in `results/fig5_space.json` (primary, consumed by
//! `scripts/fill_experiments.py`) and `results/fig5_space.txt`.

use light_bench::report::{aggregate_json, Report};
use light_bench::{aggregate, bar, env_u64, filtered_benchmarks, measure_overhead};
use light_core::obs::json::Value;

fn main() {
    let threads = env_u64("LIGHT_BENCH_THREADS", 4) as i64;
    let scale = env_u64("LIGHT_BENCH_SCALE", 1) as i64;

    let mut rep = Report::new("fig5_space");
    rep.set("threads", threads);
    rep.set("scale", scale);

    rep.line(format!(
        "== Figure 5: recording space (Long-integer units), t={threads}, scale x{scale} =="
    ));
    rep.line(format!(
        "{:<18} {:>10} {:>10} {:>10} {:>8}   normalized",
        "benchmark", "Light", "Leap", "Stride", "L/Leap"
    ));

    let mut light_sp = Vec::new();
    let mut leap_sp = Vec::new();
    let mut stride_sp = Vec::new();
    let mut rows = Vec::new();

    for w in filtered_benchmarks() {
        // Space does not need repetitions: one run per tool.
        let row = measure_overhead(&w, threads, scale, 1);
        let norm = row.leap_space.max(row.stride_space).max(row.light_space).max(1) as f64;
        rep.line(format!(
            "{:<18} {:>10} {:>10} {:>10} {:>7.1}%   L {} | P {} | S {}",
            row.name,
            row.light_space,
            row.leap_space,
            row.stride_space,
            100.0 * row.light_space as f64 / row.leap_space.max(1) as f64,
            bar(row.light_space as f64 / norm, 12),
            bar(row.leap_space as f64 / norm, 12),
            bar(row.stride_space as f64 / norm, 12),
        ));
        rows.push(Value::obj([
            ("name", Value::from(row.name)),
            ("light_space", Value::from(row.light_space)),
            ("leap_space", Value::from(row.leap_space)),
            ("stride_space", Value::from(row.stride_space)),
        ]));
        light_sp.push(row.light_space as f64);
        leap_sp.push(row.leap_space as f64);
        stride_sp.push(row.stride_space as f64);
    }
    rep.set("rows", Value::Arr(rows));

    rep.blank();
    rep.line("== Aggregate space statistics (Long-integer units) ==");
    rep.line(format!("{:<10} {:>12} {:>12} {:>12}", "", "Leap", "Stride", "Light"));
    let (la, lm, lmin, lmax) = aggregate(&leap_sp);
    let (sa, sm, smin, smax) = aggregate(&stride_sp);
    let (ga, gm, gmin, gmax) = aggregate(&light_sp);
    rep.line(format!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "average", la, sa, ga));
    rep.line(format!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "median", lm, sm, gm));
    rep.line(format!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "minimum", lmin, smin, gmin));
    rep.line(format!("{:<10} {:>12.0} {:>12.0} {:>12.0}", "maximum", lmax, smax, gmax));
    rep.set(
        "aggregate",
        Value::obj([
            ("leap", aggregate_json(&leap_sp)),
            ("stride", aggregate_json(&stride_sp)),
            ("light", aggregate_json(&light_sp)),
        ]),
    );
    rep.blank();
    rep.line(format!(
        "Paper's shape check: Light space a small fraction of Leap's (paper ~10%): measured {:.1}%: {}",
        100.0 * ga / la,
        if ga < la { "LIGHT SMALLER" } else { "DOES NOT HOLD" }
    ));
    rep.set(
        "shape_check",
        Value::obj([
            ("holds", Value::from(ga < la)),
            ("light_over_leap_pct", Value::from(100.0 * ga / la)),
        ]),
    );
    rep.write_or_die();
}
