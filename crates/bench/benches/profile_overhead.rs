//! E12 — flight-recorder overhead: for a cross-suite workload sample,
//! time chaos recording with the profiler's flight recorder attached
//! against plain recording, and report the per-workload and aggregate
//! overhead. The acceptance criterion is < 5% median overhead — cheap
//! enough to leave on. Run with
//! `cargo bench -p light-bench --bench profile_overhead`.
//!
//! Results land in `results/profile_overhead.json` (consumed by
//! `scripts/bench_summary.py`) and `results/profile_overhead.txt`.

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::Light;
use light_profile::FlightRecorder;
use light_workloads::benchmarks;
use std::sync::Arc;
use std::time::Instant;

/// Timed repetitions per configuration; the median is reported so a
/// single descheduling blip cannot fake (or mask) a regression.
const REPS: usize = 7;

/// One workload per suite flavor, matching Figure 4's spread without
/// paying for all 24 programs on every CI run.
const WORKLOADS: &[&str] = &[
    "jgf.series",
    "jgf.sor",
    "stamp.kmeans",
    "stamp.vacation",
    "srv.cache4j",
    "dc.lusearch",
];

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut rep = Report::new("profile_overhead");
    rep.line("== E12: flight-recorder overhead (profiled vs plain recording) ==");
    rep.line(format!(
        "{:<16} {:>11} {:>13} {:>9} {:>10}",
        "workload", "plain(ms)", "flight(ms)", "overhead", "events"
    ));

    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for w in benchmarks().iter().filter(|w| WORKLOADS.contains(&w.name)) {
        let program = w.program();
        let args = w.default_arg_vec();
        let plain = Light::new(Arc::clone(&program));
        let mut profiled = Light::new(Arc::clone(&program));
        let recorder = FlightRecorder::new(1 << 16);
        profiled.set_flight_sink(recorder.clone());

        // Warm both paths once (interpreter, allocator) before timing.
        if let Err(e) = plain
            .record_chaos(&args, 1)
            .and(profiled.record_chaos(&args, 1))
        {
            rep.line(format!("{:<16} recording failed: {e}", w.name));
            rows.push(Value::obj([
                ("workload", Value::from(w.name)),
                ("status", Value::from("record-failed")),
            ]));
            continue;
        }

        let mut plain_ms = Vec::with_capacity(REPS);
        let mut flight_ms = Vec::with_capacity(REPS);
        let mut events_per_run = 0u64;
        for rep_i in 0..REPS {
            let seed = 2 + rep_i as u64;
            let t = Instant::now();
            plain.record_chaos(&args, seed).expect("warmed recording");
            plain_ms.push(t.elapsed().as_secs_f64() * 1e3);

            let before = recorder.events_seen();
            let t = Instant::now();
            profiled
                .record_chaos(&args, seed)
                .expect("warmed recording");
            flight_ms.push(t.elapsed().as_secs_f64() * 1e3);
            events_per_run = recorder.events_seen() - before;
        }
        let plain_med = median(&mut plain_ms);
        let flight_med = median(&mut flight_ms);
        let overhead = flight_med / plain_med - 1.0;
        overheads.push(overhead);

        rep.line(format!(
            "{:<16} {:>11.2} {:>13.2} {:>8.1}% {:>10}",
            w.name,
            plain_med,
            flight_med,
            overhead * 100.0,
            events_per_run,
        ));
        rows.push(Value::obj([
            ("workload", Value::from(w.name)),
            ("status", Value::from("measured")),
            ("plain_ms", Value::from(plain_med)),
            ("flight_ms", Value::from(flight_med)),
            ("overhead", Value::from(overhead)),
            ("events_per_run", Value::from(events_per_run)),
        ]));
    }
    rep.set("rows", Value::Arr(rows));

    if !overheads.is_empty() {
        let med = median(&mut overheads);
        rep.blank();
        rep.line(format!(
            "median overhead across workloads: {:.1}% (criterion: < 5%)",
            med * 100.0
        ));
        rep.set("median_overhead", med);
        rep.set("criterion_met", med < 0.05);
    }

    rep.blank();
    rep.line("(Profiled recording = plain chaos recording + one flight-ring event per dependence/run/prec/elision/ghost site; overhead = flight/plain - 1 on the median of 7 runs each.)");
    rep.write_or_die();
}
