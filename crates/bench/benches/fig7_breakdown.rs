//! Figure 7 / H3 — the contribution of the O1 and O2 optimizations:
//! time-overhead breakdown (7a) and space breakdown (7b) across the three
//! Light variants `V_basic`, `V_O1`, `V_both`. Run with
//! `cargo bench -p light-bench --bench fig7_breakdown`.
//!
//! Results land in `results/fig7_breakdown.json` (primary, consumed by
//! `scripts/fill_experiments.py`) and `results/fig7_breakdown.txt`.

use light_bench::report::Report;
use light_bench::{bar, env_u64, filtered_benchmarks, measure_variants};
use light_core::obs::json::Value;

fn main() {
    let threads = env_u64("LIGHT_BENCH_THREADS", 4) as i64;
    let scale = env_u64("LIGHT_BENCH_SCALE", 1) as i64;
    let reps = env_u64("LIGHT_BENCH_REPS", 3);

    let mut rep = Report::new("fig7_breakdown");
    rep.set("threads", threads);
    rep.set("scale", scale);
    rep.set("reps", reps);

    rep.line("== Figure 7a: time-overhead breakdown (100% = V_basic overhead) ==");
    rep.line(format!(
        "{:<18} {:>9} {:>9} {:>9}   remaining | O2 gain | O1 gain",
        "benchmark", "basic", "V_O1", "V_both"
    ));

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for w in filtered_benchmarks() {
        let row = measure_variants(&w, threads, scale, reps);
        let basic = (row.basic_secs / row.base_secs - 1.0).max(1e-9);
        let o1 = (row.o1_secs / row.base_secs - 1.0).clamp(0.0, basic);
        let both = (row.both_secs / row.base_secs - 1.0).clamp(0.0, o1);
        let o1_gain = (basic - o1) / basic;
        let o2_gain = (o1 - both) / basic;
        let remain = both / basic;
        rep.line(format!(
            "{:<18} {:>8.2}x {:>8.2}x {:>8.2}x   {} {:>4.0}% | {:>4.0}% | {:>4.0}%",
            row.name,
            basic,
            o1,
            both,
            bar(remain, 10),
            remain * 100.0,
            o2_gain * 100.0,
            o1_gain * 100.0,
        ));
        json_rows.push(Value::obj([
            ("name", Value::from(row.name)),
            (
                "time_overhead",
                Value::obj([
                    ("basic", Value::from(basic)),
                    ("o1", Value::from(o1)),
                    ("both", Value::from(both)),
                ]),
            ),
            (
                "space",
                Value::obj([
                    ("basic", Value::from(row.basic_space)),
                    ("o1", Value::from(row.o1_space)),
                    ("both", Value::from(row.both_space)),
                ]),
            ),
        ]));
        rows.push(row);
    }
    rep.set("rows", Value::Arr(json_rows));

    rep.blank();
    rep.line("== Figure 7b: space breakdown (100% = V_basic space) ==");
    rep.line(format!(
        "{:<18} {:>10} {:>10} {:>10}   remaining | O2 gain | O1 gain",
        "benchmark", "basic", "V_O1", "V_both"
    ));
    let mut o1_ge_20 = 0;
    let mut o1_ge_50 = 0;
    let mut o2_ge_20 = 0;
    for row in &rows {
        let basic = row.basic_space.max(1) as f64;
        let o1 = row.o1_space as f64;
        let both = row.both_space as f64;
        let o1_gain = (basic - o1) / basic;
        let o2_gain = (o1 - both) / basic;
        let remain = both / basic;
        if o1_gain >= 0.2 {
            o1_ge_20 += 1;
        }
        if o1_gain >= 0.5 {
            o1_ge_50 += 1;
        }
        if o2_gain >= 0.2 {
            o2_ge_20 += 1;
        }
        rep.line(format!(
            "{:<18} {:>10} {:>10} {:>10}   {} {:>4.0}% | {:>4.0}% | {:>4.0}%",
            row.name,
            row.basic_space,
            row.o1_space,
            row.both_space,
            bar(remain, 10),
            remain * 100.0,
            o2_gain * 100.0,
            o1_gain * 100.0,
        ));
    }

    let n = rows.len();
    rep.blank();
    rep.line(format!(
        "Space summary: O1 saves >=20% on {o1_ge_20}/{n}, >=50% on {o1_ge_50}/{n}; O2 adds >=20% on {o2_ge_20}/{n}."
    ));
    rep.line("Paper's H3: both optimizations contribute significantly, O1 dominant.");
    rep.set(
        "space_summary",
        Value::obj([
            ("o1_ge_20", Value::from(o1_ge_20 as u64)),
            ("o1_ge_50", Value::from(o1_ge_50 as u64)),
            ("o2_ge_20", Value::from(o2_ge_20 as u64)),
            ("n", Value::from(n)),
        ]),
    );
    rep.write_or_die();
}
