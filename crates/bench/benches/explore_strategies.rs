//! Figure 6 companion — time-to-first-bug of the schedule-exploration
//! strategies (chaos random walk, PCT priorities, race-directed search)
//! across the eight-bug corpus. Run with
//! `cargo bench -p light-bench --bench explore_strategies`.
//!
//! Results land in `results/explore_strategies.json` (primary, consumed
//! by `scripts/fill_experiments.py`) and `results/explore_strategies.txt`.

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_explore::{ExploreConfig, Explorer, StrategyKind};
use light_workloads::bugs;
use std::time::Duration;

const STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::Chaos,
    StrategyKind::Pct { depth: 3 },
    StrategyKind::RaceDirected,
];

fn search_config(strategy: StrategyKind) -> ExploreConfig {
    ExploreConfig {
        strategy,
        max_schedules: 2000,
        workers: 1, // single worker: schedules-to-first-bug is exact
        wall_limit: Duration::from_secs(20),
        minimize: false,
        replay_checks: 0,
        ..ExploreConfig::default()
    }
}

fn main() {
    let mut rep = Report::new("explore_strategies");
    rep.line("== Schedule exploration: time to first bug, per strategy ==");
    rep.line("cell: schedules-to-first-bug (wall ms); `-` = budget exhausted");
    rep.line(format!(
        "{:<14} {:>18} {:>18} {:>18}",
        "bug", "chaos", "pct(d=3)", "race"
    ));

    let mut rows = Vec::new();
    let mut found_counts = [0u64; STRATEGIES.len()];
    for bug in bugs() {
        let explorer = Explorer::new(bug.program());
        let mut cells = Vec::new();
        let mut fields = vec![("bug", Value::from(bug.name))];
        for (i, strategy) in STRATEGIES.into_iter().enumerate() {
            let outcome = explorer.run(&bug.args, &search_config(strategy));
            let wall_ms = outcome.metrics.wall_ns / 1_000_000;
            let cell = match &outcome.found {
                Some(_) => {
                    found_counts[i] += 1;
                    format!("{} ({wall_ms}ms)", outcome.metrics.schedules)
                }
                None => format!("- ({wall_ms}ms)"),
            };
            cells.push(cell);
            fields.push((
                strategy.name(),
                Value::obj([
                    ("found", Value::Bool(outcome.found.is_some())),
                    ("schedules", Value::from(outcome.metrics.schedules)),
                    ("wall_ms", Value::from(wall_ms)),
                ]),
            ));
        }
        rep.line(format!(
            "{:<14} {:>18} {:>18} {:>18}",
            bug.name, cells[0], cells[1], cells[2]
        ));
        rows.push(Value::obj(fields));
    }
    rep.set("rows", Value::Arr(rows));

    let total = bugs().len() as u64;
    rep.blank();
    rep.line(format!(
        "Found: chaos {}/{total}, pct {}/{total}, race {}/{total} \
         (budget 2000 schedules / 20s wall per cell)",
        found_counts[0], found_counts[1], found_counts[2]
    ));
    rep.set(
        "totals",
        Value::obj([
            ("chaos", Value::from(found_counts[0])),
            ("pct", Value::from(found_counts[1])),
            ("race", Value::from(found_counts[2])),
            ("total", Value::from(total)),
        ]),
    );
    rep.write_or_die();
}
