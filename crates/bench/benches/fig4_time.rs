//! Figure 4 — normalized time overhead of Light vs Leap vs Stride on the
//! 24 benchmarks, plus the paper's aggregate overhead statistics table
//! (Section 5.2). Run with `cargo bench -p light-bench --bench fig4_time`.

use light_bench::{aggregate, bar, env_u64, filtered_benchmarks, measure_overhead};

fn main() {
    let threads = env_u64("LIGHT_BENCH_THREADS", 4) as i64;
    let scale = env_u64("LIGHT_BENCH_SCALE", 1) as i64;
    let reps = env_u64("LIGHT_BENCH_REPS", 3);

    println!("== Figure 4: recording time overhead (normalized), t={threads}, scale x{scale}, reps={reps} ==");
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}   overhead (Leap=bar scale)",
        "benchmark", "base(ms)", "Light", "Leap", "Stride"
    );

    let mut light_ovh = Vec::new();
    let mut leap_ovh = Vec::new();
    let mut stride_ovh = Vec::new();

    for w in filtered_benchmarks() {
        let row = measure_overhead(&w, threads, scale, reps);
        let l = row.overhead(row.light_secs).max(0.0);
        let p = row.overhead(row.leap_secs).max(0.0);
        let s = row.overhead(row.stride_secs).max(0.0);
        let norm = p.max(s).max(l).max(1e-9);
        println!(
            "{:<18} {:>9.2} {:>8.2}x {:>8.2}x {:>8.2}x   L {} | P {} | S {}",
            row.name,
            row.base_secs * 1e3,
            l,
            p,
            s,
            bar(l / norm, 12),
            bar(p / norm, 12),
            bar(s / norm, 12),
        );
        light_ovh.push(l);
        leap_ovh.push(p);
        stride_ovh.push(s);
    }

    println!();
    println!("== Aggregate time overhead statistics (Section 5.2 table) ==");
    println!("{:<10} {:>8} {:>8} {:>8}", "", "Leap", "Stride", "Light");
    let (la, lm, lmin, lmax) = aggregate(&leap_ovh);
    let (sa, sm, smin, smax) = aggregate(&stride_ovh);
    let (ga, gm, gmin, gmax) = aggregate(&light_ovh);
    println!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "average", la, sa, ga);
    println!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "median", lm, sm, gm);
    println!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "minimum", lmin, smin, gmin);
    println!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "maximum", lmax, smax, gmax);
    println!();
    println!(
        "Paper's shape check: Light average ({ga:.2}x) well below Leap ({la:.2}x) and Stride ({sa:.2}x): {}",
        if ga < la && ga < sa { "HOLDS" } else { "DOES NOT HOLD" }
    );
}
