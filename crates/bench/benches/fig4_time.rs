//! Figure 4 — normalized time overhead of Light vs Leap vs Stride on the
//! 24 benchmarks, plus the paper's aggregate overhead statistics table
//! (Section 5.2). Run with `cargo bench -p light-bench --bench fig4_time`.
//!
//! Results land in `results/fig4_time.json` (primary, consumed by
//! `scripts/fill_experiments.py`) and `results/fig4_time.txt`.

use light_bench::report::{aggregate_json, Report};
use light_bench::{aggregate, bar, env_u64, filtered_benchmarks, measure_overhead};
use light_core::obs::json::Value;

fn main() {
    let threads = env_u64("LIGHT_BENCH_THREADS", 4) as i64;
    let scale = env_u64("LIGHT_BENCH_SCALE", 1) as i64;
    let reps = env_u64("LIGHT_BENCH_REPS", 3);

    let mut rep = Report::new("fig4_time");
    rep.set("threads", threads);
    rep.set("scale", scale);
    rep.set("reps", reps);

    rep.line(format!(
        "== Figure 4: recording time overhead (normalized), t={threads}, scale x{scale}, reps={reps} =="
    ));
    rep.line(format!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}   overhead (Leap=bar scale)",
        "benchmark", "base(ms)", "Light", "Leap", "Stride"
    ));

    let mut light_ovh = Vec::new();
    let mut leap_ovh = Vec::new();
    let mut stride_ovh = Vec::new();
    let mut rows = Vec::new();

    for w in filtered_benchmarks() {
        let row = measure_overhead(&w, threads, scale, reps);
        let l = row.overhead(row.light_secs).max(0.0);
        let p = row.overhead(row.leap_secs).max(0.0);
        let s = row.overhead(row.stride_secs).max(0.0);
        let norm = p.max(s).max(l).max(1e-9);
        rep.line(format!(
            "{:<18} {:>9.2} {:>8.2}x {:>8.2}x {:>8.2}x   L {} | P {} | S {}",
            row.name,
            row.base_secs * 1e3,
            l,
            p,
            s,
            bar(l / norm, 12),
            bar(p / norm, 12),
            bar(s / norm, 12),
        ));
        rows.push(Value::obj([
            ("name", Value::from(row.name)),
            ("base_secs", Value::from(row.base_secs)),
            ("light_overhead", Value::from(l)),
            ("leap_overhead", Value::from(p)),
            ("stride_overhead", Value::from(s)),
        ]));
        light_ovh.push(l);
        leap_ovh.push(p);
        stride_ovh.push(s);
    }
    rep.set("rows", Value::Arr(rows));

    rep.blank();
    rep.line("== Aggregate time overhead statistics (Section 5.2 table) ==");
    rep.line(format!("{:<10} {:>8} {:>8} {:>8}", "", "Leap", "Stride", "Light"));
    let (la, lm, lmin, lmax) = aggregate(&leap_ovh);
    let (sa, sm, smin, smax) = aggregate(&stride_ovh);
    let (ga, gm, gmin, gmax) = aggregate(&light_ovh);
    rep.line(format!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "average", la, sa, ga));
    rep.line(format!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "median", lm, sm, gm));
    rep.line(format!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "minimum", lmin, smin, gmin));
    rep.line(format!("{:<10} {:>8.2} {:>8.2} {:>8.2}", "maximum", lmax, smax, gmax));
    rep.set(
        "aggregate",
        Value::obj([
            ("leap", aggregate_json(&leap_ovh)),
            ("stride", aggregate_json(&stride_ovh)),
            ("light", aggregate_json(&light_ovh)),
        ]),
    );
    rep.blank();
    let holds = ga < la && ga < sa;
    rep.line(format!(
        "Paper's shape check: Light average ({ga:.2}x) well below Leap ({la:.2}x) and Stride ({sa:.2}x): {}",
        if holds { "HOLDS" } else { "DOES NOT HOLD" }
    ));
    rep.set(
        "shape_check",
        Value::obj([
            ("holds", Value::from(holds)),
            ("light_avg", Value::from(ga)),
            ("leap_avg", Value::from(la)),
            ("stride_avg", Value::from(sa)),
        ]),
    );
    rep.write_or_die();
}
