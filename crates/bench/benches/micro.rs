//! Criterion micro-benchmarks of the building blocks: the IDL solver, the
//! Light recorder hot paths, and the LIR front-end.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use light_core::obs::{NullSink, Obs, TraceSink};
use light_core::{Light, LightConfig, LightRecorder};
use light_runtime::{AccessKind, Loc, ObjId, Recorder, Tid};
use light_solver::{Atom, OrderSolver};
use lir::{BlockId, FieldId, FuncId, InstrId};
use std::hint::black_box;
use std::sync::Arc;

fn solver_chain(c: &mut Criterion) {
    c.bench_function("solver/chain-1000", |b| {
        b.iter(|| {
            let mut s = OrderSolver::new();
            let vars: Vec<_> = (0..1000).map(|_| s.new_var()).collect();
            for w in vars.windows(2) {
                s.add_lt(w[0], w[1]);
            }
            black_box(s.solve().unwrap());
        })
    });
}

fn solver_disjunctions(c: &mut Criterion) {
    c.bench_function("solver/noninterference-200", |b| {
        b.iter(|| {
            let mut s = OrderSolver::new();
            // 100 dependence pairs (w_i < r_i) on one location with
            // pairwise non-interference clauses, like Equation 1.
            let n = 100;
            let ws: Vec<_> = (0..n).map(|_| s.new_var()).collect();
            let rs: Vec<_> = (0..n).map(|_| s.new_var()).collect();
            for i in 0..n {
                s.add_lt(ws[i], rs[i]);
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(vec![Atom::lt(rs[i], ws[j]), Atom::lt(rs[j], ws[i])]);
                }
            }
            black_box(s.solve().unwrap());
        })
    });
}

fn recorder_hot_path(c: &mut Criterion) {
    let iid = InstrId {
        func: FuncId(0),
        block: BlockId(0),
        idx: 0,
    };
    c.bench_function("recorder/read-same-writer", |b| {
        b.iter_batched(
            || LightRecorder::new(LightConfig::default(), Default::default(), Default::default()),
            |rec| {
                let t = Tid::ROOT;
                let loc = Loc::Field(ObjId(1), FieldId(0));
                rec.on_access(t, 1, loc, AccessKind::Write, false, iid, &mut || 0);
                for ctrn in 2..1000u64 {
                    rec.on_access(t, ctrn, loc, AccessKind::Read, false, iid, &mut || 0);
                }
                rec.on_thread_exit(t);
                black_box(rec.take_recording(None, &[]));
            },
            BatchSize::SmallInput,
        )
    });
}

fn obs_span_sites(c: &mut Criterion) {
    // The instrumentation sites themselves: with no sink a span is one
    // untaken branch (no clock read, no allocation); `NullSink` reports
    // `enabled() == false` and is dropped at attach time, so it costs the
    // same; only a live sink pays for timestamps and event delivery.
    let disabled = Obs::disabled();
    c.bench_function("obs/span-disabled", |b| {
        b.iter(|| black_box(disabled.span("bench")))
    });
    let null = Obs::with_sink(Arc::new(NullSink));
    assert!(!null.enabled(), "NullSink must disable the pipeline");
    c.bench_function("obs/span-nullsink", |b| {
        b.iter(|| black_box(null.span("bench")))
    });
    let trace = Obs::with_sink(Arc::new(TraceSink::new()));
    c.bench_function("obs/span-tracesink", |b| {
        b.iter(|| black_box(trace.span("bench")))
    });
}

fn record_pipeline_with_sinks(c: &mut Criterion) {
    // End-to-end recording with and without an attached no-op sink: the
    // recorder hot path never consults the sink (counters stay in TLS
    // buffers), so these two must be statistically indistinguishable —
    // the zero-cost-when-disabled claim of the observability layer.
    let program = Arc::new(
        lir::parse(
            "global total;
             fn worker(n) {
                 let i = 0;
                 while (i < n) { total = total + 1; i = i + 1; }
             }
             fn main(n) {
                 let t1 = spawn worker(n);
                 let t2 = spawn worker(n);
                 join t1; join t2;
             }",
        )
        .unwrap(),
    );
    let plain = Light::new(Arc::clone(&program));
    c.bench_function("record/pipeline-no-sink", |b| {
        b.iter(|| black_box(plain.record(&[200], 7).unwrap()))
    });
    let mut nulled = Light::new(Arc::clone(&program));
    nulled.set_sink(Arc::new(NullSink));
    c.bench_function("record/pipeline-null-sink", |b| {
        b.iter(|| black_box(nulled.record(&[200], 7).unwrap()))
    });
}

fn frontend(c: &mut Criterion) {
    let src = light_workloads::benchmarks()
        .into_iter()
        .find(|w| w.name == "srv.ftpserver")
        .unwrap()
        .source;
    c.bench_function("frontend/parse-ftpserver", |b| {
        b.iter(|| black_box(lir::parse(src).unwrap()))
    });
}

criterion_group!(
    benches,
    solver_chain,
    solver_disjunctions,
    recorder_hot_path,
    obs_span_sites,
    record_pipeline_with_sinks,
    frontend
);
criterion_main!(benches);
