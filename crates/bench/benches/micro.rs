//! Criterion micro-benchmarks of the building blocks: the IDL solver, the
//! Light recorder hot paths, and the LIR front-end.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use light_core::{LightConfig, LightRecorder};
use light_runtime::{AccessKind, Loc, ObjId, Recorder, Tid};
use light_solver::{Atom, OrderSolver};
use lir::{BlockId, FieldId, FuncId, InstrId};
use std::hint::black_box;

fn solver_chain(c: &mut Criterion) {
    c.bench_function("solver/chain-1000", |b| {
        b.iter(|| {
            let mut s = OrderSolver::new();
            let vars: Vec<_> = (0..1000).map(|_| s.new_var()).collect();
            for w in vars.windows(2) {
                s.add_lt(w[0], w[1]);
            }
            black_box(s.solve().unwrap());
        })
    });
}

fn solver_disjunctions(c: &mut Criterion) {
    c.bench_function("solver/noninterference-200", |b| {
        b.iter(|| {
            let mut s = OrderSolver::new();
            // 100 dependence pairs (w_i < r_i) on one location with
            // pairwise non-interference clauses, like Equation 1.
            let n = 100;
            let ws: Vec<_> = (0..n).map(|_| s.new_var()).collect();
            let rs: Vec<_> = (0..n).map(|_| s.new_var()).collect();
            for i in 0..n {
                s.add_lt(ws[i], rs[i]);
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(vec![Atom::lt(rs[i], ws[j]), Atom::lt(rs[j], ws[i])]);
                }
            }
            black_box(s.solve().unwrap());
        })
    });
}

fn recorder_hot_path(c: &mut Criterion) {
    let iid = InstrId {
        func: FuncId(0),
        block: BlockId(0),
        idx: 0,
    };
    c.bench_function("recorder/read-same-writer", |b| {
        b.iter_batched(
            || LightRecorder::new(LightConfig::default(), Default::default(), Default::default()),
            |rec| {
                let t = Tid::ROOT;
                let loc = Loc::Field(ObjId(1), FieldId(0));
                rec.on_access(t, 1, loc, AccessKind::Write, false, iid, &mut || 0);
                for ctrn in 2..1000u64 {
                    rec.on_access(t, ctrn, loc, AccessKind::Read, false, iid, &mut || 0);
                }
                rec.on_thread_exit(t);
                black_box(rec.take_recording(None, &[]));
            },
            BatchSize::SmallInput,
        )
    });
}

fn frontend(c: &mut Criterion) {
    let src = light_workloads::benchmarks()
        .into_iter()
        .find(|w| w.name == "srv.ftpserver")
        .unwrap()
        .source;
    c.bench_function("frontend/parse-ftpserver", |b| {
        b.iter(|| black_box(lir::parse(src).unwrap()))
    });
}

criterion_group!(
    benches,
    solver_chain,
    solver_disjunctions,
    recorder_hot_path,
    frontend
);
criterion_main!(benches);
