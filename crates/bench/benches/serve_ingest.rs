//! E15 — replay-as-a-service ingestion throughput: one `light-serve`
//! daemon, a mixed recording corpus, and 1 / 4 / 16 concurrent clients
//! hammering the submit endpoint. Reports submissions/sec per client
//! count plus the server-side dedup and job counters. The headline
//! `serve_ingest_rps` is the 16-client throughput. Run with
//! `cargo bench -p light-bench --bench serve_ingest`.
//!
//! Results land in `results/serve_ingest.json` (primary) and
//! `results/serve_ingest.txt`.

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::{write_recording, Light};
use light_serve::{start, Client, ServerOptions};
use std::sync::Arc;
use std::time::Instant;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];
/// Submissions per client per configuration. The corpus is far smaller,
/// so most submissions are dedup hits — which is the point: ingestion
/// throughput is dominated by hashing + the wire, not by job work.
const PER_CLIENT: usize = 64;

const RACE: &str = "global total;
     fn worker(n) {
         let i = 0;
         while (i < n) { total = total + 1; i = i + 1; }
     }
     fn main(n) {
         let t1 = spawn worker(n);
         let t2 = spawn worker(n);
         join t1; join t2;
         print(total);
     }";

fn main() {
    let mut rep = Report::new("serve_ingest");
    rep.line("== E15: light-serve ingestion throughput (submissions/sec) ==");

    // One corpus shared by every configuration: 8 unique recordings.
    let light = Light::new(Arc::new(lir::parse(RACE).expect("corpus program parses")));
    let corpus: Vec<Vec<u8>> = (0..8i64)
        .map(|n| {
            let (recording, _) = light.record(&[4 + n], 7).expect("corpus record");
            write_recording(&recording).to_vec()
        })
        .collect();
    let corpus = Arc::new(corpus);
    rep.line(format!(
        "corpus: {} unique recordings, {} bytes total",
        corpus.len(),
        corpus.iter().map(Vec::len).sum::<usize>(),
    ));
    rep.line(format!(
        "{:>8} {:>12} {:>10} {:>12} {:>10}",
        "clients", "submissions", "secs", "rps", "dedup"
    ));

    let mut rows = Vec::new();
    let mut headline_rps = 0.0f64;
    for clients in CLIENT_COUNTS {
        let dir =
            std::env::temp_dir().join(format!("light-serve-bench-{}-{clients}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = start(ServerOptions {
            registry: dir.clone(),
            conn_threads: clients.max(2),
            ..ServerOptions::default()
        })
        .expect("start bench daemon");
        let addr = handle.addr().to_string();

        let total = clients * PER_CLIENT;
        let t = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let addr = &addr;
                let corpus = corpus.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("bench client connect");
                    for i in 0..PER_CLIENT {
                        let entry = &corpus[(c + i) % corpus.len()];
                        client
                            .submit("race", RACE, entry)
                            .expect("bench submit");
                    }
                });
            }
        });
        let secs = t.elapsed().as_secs_f64();
        let rps = total as f64 / secs;

        let mut client = Client::connect(&addr).expect("status client");
        client.wait_idle().expect("drain bench jobs");
        let status = client.status().expect("bench status");
        client.shutdown().expect("bench shutdown");
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(status.metrics.submissions, total as u64);
        rep.line(format!(
            "{:>8} {:>12} {:>10.3} {:>12.0} {:>10}",
            clients, total, secs, rps, status.metrics.dedup_hits,
        ));
        rows.push(Value::obj([
            ("clients", Value::from(clients as u64)),
            ("submissions", Value::from(total as u64)),
            ("secs", Value::from(secs)),
            ("rps", Value::from(rps)),
            ("dedup_hits", Value::from(status.metrics.dedup_hits)),
            ("jobs_ok", Value::from(status.metrics.jobs_ok)),
            ("jobs_failed", Value::from(status.metrics.jobs_failed)),
            ("queue_peak", Value::from(status.metrics.queue_peak)),
        ]));
        headline_rps = rps; // last config (16 clients) is the headline
    }
    rep.set("rows", Value::Arr(rows));
    rep.set("serve_ingest_rps", headline_rps);

    rep.blank();
    rep.line(format!(
        "headline serve_ingest_rps (16 clients): {headline_rps:.0} submissions/sec"
    ));
    rep.line("(Each submission is one framed TCP round trip: SHA-256 content addressing, sharded blob store, dedup check, job enqueue for fresh content. Dedup-heavy by design — the corpus is 8 recordings wide.)");
    rep.write_or_die();
}
