//! E11 — divergence-detection overhead: for each corpus bug, time a
//! plain replay against a replay with the doctor's cross-checking
//! observer attached, and report the per-bug and aggregate overhead.
//! The D11 acceptance criterion is < 10% median overhead. Run with
//! `cargo bench -p light-bench --bench doctor_overhead`.
//!
//! Results land in `results/doctor_overhead.json` (primary, consumed by
//! `scripts/fill_experiments.py` and `scripts/bench_summary.py`) and
//! `results/doctor_overhead.txt`.

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::Light;
use light_doctor::{doctor_replay, DoctorOptions};
use light_workloads::bugs;
use std::sync::Arc;
use std::time::Instant;

/// Timed repetitions per configuration; the median is reported so a
/// single descheduling blip cannot fake (or mask) a regression.
const REPS: usize = 7;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut rep = Report::new("doctor_overhead");
    rep.line("== E11: divergence-detection overhead (doctor vs plain replay) ==");
    rep.line(format!(
        "{:<14} {:>11} {:>13} {:>9} {:>9} {:>9}",
        "bug", "plain(ms)", "checked(ms)", "overhead", "reads", "uncov"
    ));

    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for bug in bugs() {
        let program = bug.program();
        let light = Light::new(Arc::clone(&program));
        // Prefer the faulting recording (the realistic doctor input); a
        // clean chaos recording keeps the row populated if the search
        // budget misses.
        let recording = match light.find_bug(&bug.args, bug.search_seeds.clone()) {
            Some((recording, _)) => recording,
            None => match light.record_chaos(&bug.args, bug.search_seeds.start) {
                Ok((recording, _)) => recording,
                Err(e) => {
                    rep.line(format!("{:<14} recording failed: {e}", bug.name));
                    rows.push(Value::obj([
                        ("bug", Value::from(bug.name)),
                        ("status", Value::from("record-failed")),
                    ]));
                    continue;
                }
            },
        };

        // Warm both paths once (schedule solving, allocator) before timing.
        let options = DoctorOptions::default();
        if let Err(e) = light.replay(&recording) {
            rep.line(format!("{:<14} replay failed: {e}", bug.name));
            rows.push(Value::obj([
                ("bug", Value::from(bug.name)),
                ("status", Value::from("replay-failed")),
            ]));
            continue;
        }
        let doctor = match doctor_replay(&light, &recording, &recording, &options) {
            Ok(r) => r,
            Err(e) => {
                rep.line(format!("{:<14} doctor replay failed: {e}", bug.name));
                rows.push(Value::obj([
                    ("bug", Value::from(bug.name)),
                    ("status", Value::from("doctor-failed")),
                ]));
                continue;
            }
        };
        assert!(
            doctor.healthy(),
            "{}: self-check must be clean, got {:?}",
            bug.name,
            doctor.divergence
        );

        let mut plain = Vec::with_capacity(REPS);
        let mut checked = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let t = Instant::now();
            light.replay(&recording).expect("warmed replay");
            plain.push(t.elapsed().as_secs_f64() * 1e3);

            let t = Instant::now();
            doctor_replay(&light, &recording, &recording, &options).expect("warmed doctor");
            checked.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let plain_ms = median(&mut plain);
        let checked_ms = median(&mut checked);
        let overhead = checked_ms / plain_ms - 1.0;
        overheads.push(overhead);

        rep.line(format!(
            "{:<14} {:>11.2} {:>13.2} {:>8.1}% {:>9} {:>9}",
            bug.name,
            plain_ms,
            checked_ms,
            overhead * 100.0,
            doctor.stats.checked_reads,
            doctor.stats.uncovered_reads,
        ));
        rows.push(Value::obj([
            ("bug", Value::from(bug.name)),
            ("status", Value::from("measured")),
            ("plain_ms", Value::from(plain_ms)),
            ("checked_ms", Value::from(checked_ms)),
            ("overhead", Value::from(overhead)),
            ("checked_reads", Value::from(doctor.stats.checked_reads)),
            ("uncovered_reads", Value::from(doctor.stats.uncovered_reads)),
        ]));
    }
    rep.set("rows", Value::Arr(rows));

    if !overheads.is_empty() {
        let med = median(&mut overheads);
        rep.blank();
        rep.line(format!(
            "median overhead across corpus: {:.1}% (criterion: < 10%)",
            med * 100.0
        ));
        rep.set("median_overhead", med);
        rep.set("criterion_met", med < 0.10);
    }

    rep.blank();
    rep.line("(Checked replay = plain replay + the doctor's expected-writer cross-check on every covered read, including monitor/thread-life ghost accesses; overhead = checked/plain - 1 on the median of 7 runs each.)");
    rep.write_or_die();
}
