//! E16 — live observability overhead: what does a 10 Hz Prometheus
//! scrape loop cost a `light-serve` daemon under full ingestion load?
//! Interleaves the E15 16-client submission storm without (baseline)
//! and with (scraped) a concurrent client polling the `Metrics` wire op
//! at 10 Hz, three rounds each, and compares median submissions/sec.
//! Criterion: the scraped median costs < 5% of baseline
//! `serve_ingest_rps`. Run with
//! `cargo bench -p light-bench --bench serve_obs_overhead`.
//!
//! Results land in `results/serve_obs_overhead.json` (primary) and
//! `results/serve_obs_overhead.txt`.

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::{write_recording, Light};
use light_serve::{start, Client, ServerOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
/// Larger than E15's per-client count: the storm must outlast several
/// scrape intervals, or the comparison measures noise, not the scrape.
const PER_CLIENT: usize = 2048;
const ROUNDS: usize = 3;
const SCRAPE_HZ: u64 = 10;

const RACE: &str = "global total;
     fn worker(n) {
         let i = 0;
         while (i < n) { total = total + 1; i = i + 1; }
     }
     fn main(n) {
         let t1 = spawn worker(n);
         let t2 = spawn worker(n);
         join t1; join t2;
         print(total);
     }";

/// One E15-shaped submission storm; `scrape` adds the 10 Hz Metrics
/// poller racing the storm. Returns (submissions/sec, scrapes served).
fn run_round(corpus: &Arc<Vec<Vec<u8>>>, tag: &str, scrape: bool) -> (f64, u64) {
    let dir = std::env::temp_dir().join(format!("light-obs-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerOptions {
        registry: dir.clone(),
        conn_threads: CLIENTS.max(2),
        ..ServerOptions::default()
    })
    .expect("start bench daemon");
    let addr = handle.addr().to_string();

    let total = CLIENTS * PER_CLIENT;
    let done = AtomicBool::new(false);
    let mut scrapes = 0u64;
    let mut secs = 0.0f64;
    let t = Instant::now();
    std::thread::scope(|scope| {
        let scraper = scrape.then(|| {
            let addr = &addr;
            let done = &done;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("scraper connect");
                let mut n = 0u64;
                while !done.load(Ordering::Relaxed) {
                    client.metrics().expect("live scrape");
                    n += 1;
                    std::thread::sleep(Duration::from_millis(1_000 / SCRAPE_HZ));
                }
                n
            })
        });
        let submitters: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = &addr;
                let corpus = corpus.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("bench client connect");
                    for i in 0..PER_CLIENT {
                        let entry = &corpus[(c + i) % corpus.len()];
                        client.submit("race", RACE, entry).expect("bench submit");
                    }
                })
            })
            .collect();
        for h in submitters {
            h.join().expect("bench submitter");
        }
        // The storm defines the timed window; the scraper's trailing
        // poll-interval sleep must not count against the scraped arm.
        secs = t.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        scrapes = scraper.map_or(0, |h| h.join().expect("scraper"));
    });
    let rps = total as f64 / secs;

    let mut client = Client::connect(&addr).expect("status client");
    client.wait_idle().expect("drain bench jobs");
    let status = client.status().expect("bench status");
    client.shutdown().expect("bench shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(status.metrics.submissions, total as u64);
    (rps, scrapes)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut rep = Report::new("serve_obs_overhead");
    rep.line("== E16: live scrape overhead on light-serve ingestion ==");

    let light = Light::new(Arc::new(lir::parse(RACE).expect("corpus program parses")));
    let corpus: Vec<Vec<u8>> = (0..8i64)
        .map(|n| {
            let (recording, _) = light.record(&[4 + n], 7).expect("corpus record");
            write_recording(&recording).to_vec()
        })
        .collect();
    let corpus = Arc::new(corpus);
    rep.line(format!(
        "workload: {CLIENTS} clients x {PER_CLIENT} submissions, {ROUNDS} interleaved rounds each; scrape at {SCRAPE_HZ} Hz"
    ));
    rep.line(format!(
        "{:>6} {:>10} {:>12} {:>12} {:>9}",
        "round", "mode", "rps", "scrapes", ""
    ));

    let mut base = Vec::new();
    let mut scraped = Vec::new();
    let mut rows = Vec::new();
    for round in 0..ROUNDS {
        // Interleave so drift (thermal, page cache) hits both arms alike.
        for scrape in [false, true] {
            let tag = format!("{round}-{}", if scrape { "scraped" } else { "base" });
            let (rps, scrapes) = run_round(&corpus, &tag, scrape);
            rep.line(format!(
                "{:>6} {:>10} {:>12.0} {:>12} {:>9}",
                round,
                if scrape { "scraped" } else { "baseline" },
                rps,
                scrapes,
                "",
            ));
            rows.push(Value::obj([
                ("round", Value::from(round as u64)),
                ("scraped", Value::from(scrape)),
                ("rps", Value::from(rps)),
                ("scrapes", Value::from(scrapes)),
            ]));
            if scrape {
                scraped.push(rps);
            } else {
                base.push(rps);
            }
        }
    }

    let base_med = median(&mut base);
    let scraped_med = median(&mut scraped);
    let overhead = (base_med - scraped_med) / base_med;
    rep.set("rows", Value::Arr(rows));
    rep.set("baseline_rps", base_med);
    rep.set("scraped_rps", scraped_med);
    rep.set("serve_obs_overhead", overhead);
    rep.set("criterion_met", overhead < 0.05);

    rep.blank();
    rep.line(format!(
        "median rps: baseline {base_med:.0}, under {SCRAPE_HZ} Hz scrape {scraped_med:.0} -> overhead {:.1}%",
        overhead * 100.0,
    ));
    rep.line(format!(
        "criterion (<5% of serve_ingest_rps): {}",
        if overhead < 0.05 { "MET" } else { "NOT MET" },
    ));
    rep.line("(Each scrape is one Metrics wire op: a snapshot clone of the daemon-wide stage histograms under the registry mutex plus the serve counters — no queue pause, no worker handshake.)");
    rep.write_or_die();
}
