//! Figure 6 / Section 5.3 (H2) — the bug-reproduction matrix: Light vs
//! the CLAP-style and Chimera-style baselines on the eight bugs. Run with
//! `cargo bench -p light-bench --bench fig6_bugs`.
//!
//! Results land in `results/fig6_bugs.json` (primary, consumed by
//! `scripts/fill_experiments.py`) and `results/fig6_bugs.txt`.

use light_baselines::{Chimera, ChimeraOutcome, Clap, ClapOutcome};
use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::Light;
use light_workloads::bugs;
use std::sync::Arc;

fn main() {
    let mut rep = Report::new("fig6_bugs");
    rep.line("== Figure 6 / H2: bug reproduction matrix ==");
    rep.line(format!(
        "{:<14} {:<8} {:<28} {:<28}",
        "bug", "Light", "CLAP-like", "Chimera-like"
    ));

    let mut light_ok = 0;
    let mut clap_ok = 0;
    let mut chimera_ok = 0;
    let total = bugs().len();
    let mut rows = Vec::new();

    for bug in bugs() {
        let program = bug.program();

        // Light: record the buggy run, replay with correlation.
        let light = Light::new(Arc::clone(&program));
        let light_cell = match light.find_bug(&bug.args, bug.search_seeds.clone()) {
            Some((recording, _)) => match light.replay(&recording) {
                Ok(report) if report.correlated => {
                    light_ok += 1;
                    "yes".to_string()
                }
                Ok(_) => "replay-miss".to_string(),
                Err(e) => format!("error: {e}"),
            },
            None => "not-found".to_string(),
        };

        // CLAP-like: thread-local recording, offline synthesis; fails on
        // solver-opaque constructs.
        let clap = Clap::new(Arc::clone(&program));
        let clap_cell = {
            let mut cell = "no-bug-found".to_string();
            for seed in bug.search_seeds.clone() {
                let (recording, outcome) = clap
                    .record_chaos(&bug.args, seed)
                    .expect("setup");
                if outcome.program_bug().is_none() {
                    continue;
                }
                cell = match clap.reproduce(&recording, bug.search_seeds.clone()) {
                    Ok(ClapOutcome::Reproduced { .. }) => {
                        clap_ok += 1;
                        "yes".to_string()
                    }
                    Ok(ClapOutcome::UnsupportedConstructs(cs)) => {
                        format!("unsupported ({})", cs.len())
                    }
                    Ok(ClapOutcome::SearchExhausted { attempts }) => {
                        format!("search-exhausted({attempts})")
                    }
                    Err(e) => format!("error: {e}"),
                };
                break;
            }
            cell
        };

        // Chimera-like: transform, hunt on the transformed program, replay
        // from lock orders.
        let chimera = Chimera::new(Arc::clone(&program));
        let chimera_cell = match chimera.hunt_and_reproduce(&bug.args, bug.search_seeds.clone()) {
            Ok(ChimeraOutcome::Reproduced { .. }) => {
                chimera_ok += 1;
                "yes".to_string()
            }
            Ok(ChimeraOutcome::BugNeverManifests { attempts }) => {
                format!("hidden-by-locks({attempts})")
            }
            Ok(ChimeraOutcome::ReplayMissed { .. }) => "replay-miss".to_string(),
            Err(e) => format!("error: {e}"),
        };

        rep.line(format!(
            "{:<14} {:<8} {:<28} {:<28}",
            bug.name, light_cell, clap_cell, chimera_cell
        ));
        rows.push(Value::obj([
            ("bug", Value::from(bug.name)),
            ("light", Value::from(light_cell)),
            ("clap", Value::from(clap_cell)),
            ("chimera", Value::from(chimera_cell)),
        ]));
    }
    rep.set("rows", Value::Arr(rows));

    rep.blank();
    rep.line(format!(
        "Totals: Light {light_ok}/{total}, CLAP-like {clap_ok}/{total}, Chimera-like {chimera_ok}/{total}"
    ));
    rep.line(
        "Paper's result: Light 8/8, CLAP 3/8 (5 HashMap-based misses), Chimera 5/8 (3 serialization misses).",
    );
    rep.set(
        "totals",
        Value::obj([
            ("light", Value::from(light_ok as u64)),
            ("clap", Value::from(clap_ok as u64)),
            ("chimera", Value::from(chimera_ok as u64)),
            ("total", Value::from(total)),
        ]),
    );
    rep.write_or_die();
}
