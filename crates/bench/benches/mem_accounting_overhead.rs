//! E17 — memory-accounting overhead: what do the per-subsystem byte
//! gauges cost the record → solve pipeline? Interleaves rounds of the
//! same record+constraint-build+turbo-solve workload with the global
//! [`light_core::obs::mem`] registry disabled (baseline) and enabled
//! (gauged), and compares median pipeline throughput. Gauge handles
//! bind at construction time, so every round rebuilds the pipeline from
//! scratch — a disabled-era `Light` would stay a no-op forever and the
//! comparison would measure nothing.
//! Criterion: the gauged median costs < 5% of baseline. Run with
//! `cargo bench -p light-bench --bench mem_accounting_overhead`.
//!
//! Results land in `results/mem_accounting_overhead.json` (primary) and
//! `results/mem_accounting_overhead.txt`, including the
//! `peak_log_bytes` headline: the recorder's dependence-log high-water
//! mark over one gauged round.

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::obs::mem;
use light_core::{ConstraintSystem, Light, TurboOptions};
use std::sync::Arc;
use std::time::Instant;

const ROUNDS: usize = 5;
/// Pipeline iterations per timed round.
const ITERS: usize = 60;

const RACE: &str = "global total;
     fn worker(n) {
         let i = 0;
         while (i < n) { total = total + 1; i = i + 1; }
     }
     fn main(n) {
         let t1 = spawn worker(n);
         let t2 = spawn worker(n);
         join t1; join t2;
         print(total);
     }";

/// One timed round: `ITERS` record → build → solve pipelines, built
/// fresh so gauge handles reflect the registry's *current* enabled
/// state. Returns (pipelines/sec, recorder-log peak bytes seen).
fn run_round(program: &Arc<lir::Program>, gauged: bool) -> (f64, u64) {
    mem::global().set_enabled(gauged);
    mem::global().reset();
    let t = Instant::now();
    for i in 0..ITERS {
        let light = Light::new(program.clone());
        let (recording, outcome) = light.record(&[40], i as u64).expect("bench record");
        assert!(outcome.completed());
        let sys = ConstraintSystem::build(&recording);
        sys.solve_with(&recording, Some(&TurboOptions::default()))
            .expect("bench solve");
    }
    let secs = t.elapsed().as_secs_f64();
    let peak = mem::global()
        .snapshot()
        .subsystems
        .get(mem::subsystem::RECORDER_LOG)
        .map_or(0, |s| s.peak_bytes);
    (ITERS as f64 / secs, peak)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut rep = Report::new("mem_accounting_overhead");
    rep.line("== E17: memory-accounting overhead on record -> solve ==");

    let program = Arc::new(lir::parse(RACE).expect("bench program parses"));
    rep.line(format!(
        "workload: {ITERS} record+build+solve pipelines per round, {ROUNDS} interleaved rounds each"
    ));
    rep.line(format!(
        "{:>6} {:>10} {:>14} {:>16}",
        "round", "mode", "pipelines/s", "peak log bytes"
    ));

    let mut base = Vec::new();
    let mut gauged = Vec::new();
    let mut peak_log_bytes = 0u64;
    let mut rows = Vec::new();
    // Warm-up round so page-cache and allocator state hit both arms alike.
    run_round(&program, false);
    for round in 0..ROUNDS {
        // Interleave so drift (thermal, page cache) hits both arms alike.
        for on in [false, true] {
            let (pps, peak) = run_round(&program, on);
            rep.line(format!(
                "{:>6} {:>10} {:>14.1} {:>16}",
                round,
                if on { "gauged" } else { "baseline" },
                pps,
                peak,
            ));
            rows.push(Value::obj([
                ("round", Value::from(round as u64)),
                ("gauged", Value::from(on)),
                ("pipelines_per_sec", Value::from(pps)),
                ("peak_log_bytes", Value::from(peak)),
            ]));
            if on {
                gauged.push(pps);
                peak_log_bytes = peak_log_bytes.max(peak);
            } else {
                base.push(pps);
            }
        }
    }
    // Leave the registry as the rest of the process expects it.
    mem::global().set_enabled(true);

    let base_med = median(&mut base);
    let gauged_med = median(&mut gauged);
    let overhead = (base_med - gauged_med) / base_med;
    rep.set("rows", Value::Arr(rows));
    rep.set("baseline_pipelines_per_sec", base_med);
    rep.set("gauged_pipelines_per_sec", gauged_med);
    rep.set("mem_accounting_overhead", overhead);
    rep.set("peak_log_bytes", peak_log_bytes as f64);
    rep.set("criterion_met", overhead < 0.05);

    rep.blank();
    rep.line(format!(
        "median pipelines/s: baseline {base_med:.1}, gauged {gauged_med:.1} -> overhead {:.1}%",
        overhead * 100.0,
    ));
    rep.line(format!("peak dependence-log bytes (gauged rounds): {peak_log_bytes}"));
    rep.line(format!(
        "criterion (<5% of baseline pipeline throughput): {}",
        if overhead < 0.05 { "MET" } else { "NOT MET" },
    ));
    rep.line("(Gauges account at ownership-transfer boundaries only — TLS merge, cache store, queue hop — so the per-access hot path never touches an atomic.)");
    rep.write_or_die();
}
