//! E14 — registry ingest overhead: for each corpus bug, time the
//! record-and-serialize path bare against the same path with a
//! `light-watch` registry ingest (SHA-256 content addressing + blob +
//! index append) attached, and report the per-bug and aggregate
//! overhead. The acceptance criterion is < 5% median overhead. Run with
//! `cargo bench -p light-bench --bench telemetry_overhead`.
//!
//! Results land in `results/telemetry_overhead.json` (primary) and
//! `results/telemetry_overhead.txt`.

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::{write_recording, Light};
use light_telemetry::{Registry, RunKind, RunRecord, RunStatus};
use light_workloads::bugs;
use std::sync::Arc;
use std::time::Instant;

/// Timed repetitions per configuration; the median is reported so a
/// single descheduling blip cannot fake (or mask) a regression.
const REPS: usize = 7;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let mut rep = Report::new("telemetry_overhead");
    rep.line("== E14: registry ingest overhead (record+serialize vs +ingest) ==");
    rep.line(format!(
        "{:<14} {:>10} {:>12} {:>9} {:>10}",
        "bug", "bare(ms)", "ingest(ms)", "overhead", "blob(B)"
    ));

    let dir = std::env::temp_dir().join(format!("light-telemetry-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).expect("open bench registry");

    let mut rows = Vec::new();
    let mut overheads = Vec::new();
    for bug in bugs() {
        let program = bug.program();
        let light = Light::new(Arc::clone(&program));
        let seed = bug.search_seeds.start;
        // Warm the pipeline (JIT-free, but allocator + page cache) and
        // capture the blob size once.
        let blob_bytes = match light.record_chaos(&bug.args, seed) {
            Ok((recording, _)) => write_recording(&recording).len(),
            Err(e) => {
                rep.line(format!("{:<14} recording failed: {e}", bug.name));
                rows.push(Value::obj([
                    ("bug", Value::from(bug.name)),
                    ("status", Value::from("record-failed")),
                ]));
                continue;
            }
        };

        let mut bare = Vec::with_capacity(REPS);
        let mut ingest = Vec::with_capacity(REPS);
        for rep_idx in 0..REPS {
            let t = Instant::now();
            let (recording, _) = light.record_chaos(&bug.args, seed).expect("warmed record");
            let bytes = write_recording(&recording);
            std::hint::black_box(&bytes);
            bare.push(t.elapsed().as_secs_f64() * 1e3);

            let t = Instant::now();
            let (recording, _) = light.record_chaos(&bug.args, seed).expect("warmed record");
            let bytes = write_recording(&recording);
            let mut record = RunRecord::new(bug.name, RunKind::Bench, RunStatus::Ok);
            record.ts_ms = 1 + rep_idx as u64;
            record.metrics = Some(recording.snapshot());
            registry
                .ingest(record, Some(bytes.as_ref()))
                .expect("bench ingest");
            ingest.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let bare_ms = median(&mut bare);
        let ingest_ms = median(&mut ingest);
        let overhead = ingest_ms / bare_ms - 1.0;
        overheads.push(overhead);

        rep.line(format!(
            "{:<14} {:>10.2} {:>12.2} {:>8.1}% {:>10}",
            bug.name,
            bare_ms,
            ingest_ms,
            overhead * 100.0,
            blob_bytes,
        ));
        rows.push(Value::obj([
            ("bug", Value::from(bug.name)),
            ("status", Value::from("measured")),
            ("bare_ms", Value::from(bare_ms)),
            ("ingest_ms", Value::from(ingest_ms)),
            ("overhead", Value::from(overhead)),
            ("blob_bytes", Value::from(blob_bytes as u64)),
        ]));
    }
    rep.set("rows", Value::Arr(rows));

    // The registry held every ingested run and stays queryable.
    let stored = registry.load().expect("reload bench registry");
    rep.set("ingested_runs", stored.len() as u64);

    if !overheads.is_empty() {
        let med = median(&mut overheads);
        rep.blank();
        rep.line(format!(
            "median ingest overhead across corpus: {:.1}% (criterion: < 5%)",
            med * 100.0
        ));
        rep.set("median_overhead", med);
        rep.set("criterion_met", med < 0.05);
    }

    let _ = std::fs::remove_dir_all(&dir);
    rep.blank();
    rep.line("(Ingest = SHA-256 of the recording bytes + content-addressed blob write + one JSONL index append, on top of chaos record + serialize; overhead = ingest/bare - 1 on the median of 7 runs each.)");
    rep.write_or_die();
}
