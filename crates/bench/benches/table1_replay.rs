//! Table 1 — replay measurement for the eight bugs: recording space,
//! schedule (solver) time, and replay run time. Run with
//! `cargo bench -p light-bench --bench table1_replay`.

use light_core::Light;
use light_workloads::bugs;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    println!("== Table 1: replay measurement (8 bugs) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "bug", "Space(L)", "Solve(ms)", "Replay(ms)", "events", "correl"
    );

    for bug in bugs() {
        let program = bug.program();
        let light = Light::new(Arc::clone(&program));
        let Some((recording, _original)) = light.find_bug(&bug.args, bug.search_seeds.clone())
        else {
            println!("{:<14} bug did not manifest in the search budget", bug.name);
            continue;
        };

        let solve_start = Instant::now();
        let schedule = light.schedule(&recording);
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        let ordered = match &schedule {
            Ok((s, _)) => s.ordered_len(),
            Err(e) => {
                println!("{:<14} schedule failed: {e}", bug.name);
                continue;
            }
        };

        let replay_start = Instant::now();
        let report = match light.replay(&recording) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<14} replay failed: {e}", bug.name);
                continue;
            }
        };
        let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<14} {:>10} {:>10.1} {:>10.1} {:>8} {:>8}",
            bug.name,
            recording.space_longs(),
            solve_ms,
            replay_ms,
            ordered,
            if report.correlated { "yes" } else { "NO" },
        );
    }

    println!();
    println!("(Space in Long-integer units; Solve includes constraint generation + IDL search; Replay is the controlled re-execution. The paper reports seconds on JVM-scale traces; shapes — solve time correlated with space — carry over.)");
}
