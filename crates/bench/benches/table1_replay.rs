//! Table 1 — replay measurement for the eight bugs: recording space,
//! schedule (solver) time, and replay run time. Run with
//! `cargo bench -p light-bench --bench table1_replay`.
//!
//! Results land in `results/table1_replay.json` (primary, consumed by
//! `scripts/fill_experiments.py`) and `results/table1_replay.txt`. Each
//! JSON row embeds the replay's unified metric snapshot (recorder,
//! solver, scheduler enforcement, phase timings).

use light_bench::report::Report;
use light_core::obs::json::Value;
use light_core::Light;
use light_workloads::bugs;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut rep = Report::new("table1_replay");
    rep.line("== Table 1: replay measurement (8 bugs) ==");
    rep.line(format!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "bug", "Space(L)", "Solve(ms)", "Replay(ms)", "events", "correl"
    ));

    let mut rows = Vec::new();
    for bug in bugs() {
        let program = bug.program();
        let light = Light::new(Arc::clone(&program));
        let Some((recording, _original)) = light.find_bug(&bug.args, bug.search_seeds.clone())
        else {
            rep.line(format!(
                "{:<14} bug did not manifest in the search budget",
                bug.name
            ));
            rows.push(Value::obj([
                ("bug", Value::from(bug.name)),
                ("status", Value::from("not-found")),
            ]));
            continue;
        };

        let solve_start = Instant::now();
        let schedule = light.schedule(&recording);
        let solve_ms = solve_start.elapsed().as_secs_f64() * 1e3;
        let ordered = match &schedule {
            Ok((s, _)) => s.ordered_len(),
            Err(e) => {
                rep.line(format!("{:<14} schedule failed: {e}", bug.name));
                rows.push(Value::obj([
                    ("bug", Value::from(bug.name)),
                    ("status", Value::from("schedule-failed")),
                ]));
                continue;
            }
        };

        let replay_start = Instant::now();
        let report = match light.replay(&recording) {
            Ok(r) => r,
            Err(e) => {
                rep.line(format!("{:<14} replay failed: {e}", bug.name));
                rows.push(Value::obj([
                    ("bug", Value::from(bug.name)),
                    ("status", Value::from("replay-failed")),
                ]));
                continue;
            }
        };
        let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;

        rep.line(format!(
            "{:<14} {:>10} {:>10.1} {:>10.1} {:>8} {:>8}",
            bug.name,
            recording.space_longs(),
            solve_ms,
            replay_ms,
            ordered,
            if report.correlated { "yes" } else { "NO" },
        ));
        // The structured row carries the replay's unified metric snapshot:
        // the recorder section, solver decisions/backtracks, scheduler
        // enforcement counters and per-phase timings all come from
        // `ReplayReport::metrics` rather than re-parsing the text above.
        rows.push(Value::obj([
            ("bug", Value::from(bug.name)),
            ("status", Value::from("replayed")),
            ("space_longs", Value::from(recording.space_longs())),
            ("solve_ms", Value::from(solve_ms)),
            ("replay_ms", Value::from(replay_ms)),
            ("ordered_events", Value::from(ordered)),
            ("correlated", Value::from(report.correlated)),
            ("metrics", report.metrics.to_json()),
        ]));
    }
    rep.set("rows", Value::Arr(rows));

    rep.blank();
    rep.line("(Space in Long-integer units; Solve includes constraint generation + IDL search; Replay is the controlled re-execution. The paper reports seconds on JVM-scale traces; shapes — solve time correlated with space — carry over.)");
    rep.write_or_die();
}
