//! E13 — turbo solver scaling: component-sharded parallel solving over
//! synthetic wide (many independent location groups) and narrow (one
//! group) recordings, swept across worker counts. The acceptance
//! criterion is >= 2x solver wall-time speedup at 4 workers on the wide
//! corpus. Run with `cargo bench -p light-bench --bench solver_scaling`.
//!
//! Results land in `results/solver_scaling.json` (consumed by
//! `scripts/bench_summary.py`, headline key `solver_speedup`) and
//! `results/solver_scaling.txt`.
//!
//! The recordings are synthetic ([`light_workloads::synthetic`]) because
//! real recordings couple all location groups through monitor ghost
//! accesses into one component; the wide shape isolates what the turbo
//! layer can parallelize, the narrow shape bounds its overhead when
//! there is nothing to split.

use light_bench::report::Report;
use light_bench::{env_u64, median};
use light_core::obs::json::Value;
use light_core::{ConstraintSystem, Recording, TurboOptions};
use light_workloads::synthetic;
use std::time::Instant;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Times one solve (constraint build excluded), returning milliseconds
/// and the component count the turbo layer reported (1 for sequential).
fn time_solve(rec: &Recording, turbo: Option<&TurboOptions>) -> (f64, u64) {
    let sys = ConstraintSystem::build(rec);
    let t = Instant::now();
    let (_, _, stats) = sys.solve_with(rec, turbo).expect("synthetic recordings are satisfiable");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    (ms, stats.map(|s| s.components).unwrap_or(1))
}

fn sweep(
    rep: &mut Report,
    rows: &mut Vec<Value>,
    label: &str,
    rec: &Recording,
    reps: usize,
) -> Vec<(usize, f64)> {
    // Sequential baseline: the exact pre-turbo path.
    let seq_ms = median((0..reps).map(|_| time_solve(rec, None).0).collect());
    rep.line(format!("{label:<8} {:>7} {:>11.2} {:>11} {:>8}", "seq", seq_ms, "-", "-"));
    rows.push(Value::obj([
        ("recording", Value::from(label)),
        ("workers", Value::from("seq")),
        ("median_ms", Value::from(seq_ms)),
    ]));

    let mut timings = Vec::new();
    for &workers in &WORKER_SWEEP {
        let opts = TurboOptions {
            workers,
            ..TurboOptions::default()
        };
        let mut components = 0;
        let ms = median(
            (0..reps)
                .map(|_| {
                    let (ms, comps) = time_solve(rec, Some(&opts));
                    components = comps;
                    ms
                })
                .collect(),
        );
        let speedup = seq_ms / ms;
        rep.line(format!(
            "{label:<8} {workers:>7} {ms:>11.2} {components:>11} {speedup:>7.2}x"
        ));
        rows.push(Value::obj([
            ("recording", Value::from(label)),
            ("workers", Value::from(workers as u64)),
            ("median_ms", Value::from(ms)),
            ("components", Value::from(components)),
            ("speedup_vs_seq", Value::from(speedup)),
        ]));
        timings.push((workers, ms));
    }
    timings
}

fn main() {
    let groups = env_u64("LIGHT_SCALING_GROUPS", 32) as usize;
    let deps = env_u64("LIGHT_SCALING_DEPS", 40) as usize;
    let reps = env_u64("LIGHT_SCALING_REPS", 5) as usize;

    let wide = synthetic::wide_recording(groups, deps);
    let narrow = synthetic::narrow_recording(groups * deps);

    let mut rep = Report::new("solver_scaling");
    rep.line("== E13: turbo solver scaling (component-sharded parallel solving) ==");
    rep.line(format!(
        "wide: {groups} groups x {deps} deps; narrow: 1 group x {} deps; median of {reps} solves",
        groups * deps
    ));
    rep.line(format!(
        "{:<8} {:>7} {:>11} {:>11} {:>8}",
        "corpus", "workers", "median(ms)", "components", "speedup"
    ));

    let mut rows = Vec::new();
    let wide_timings = sweep(&mut rep, &mut rows, "wide", &wide, reps);
    let narrow_timings = sweep(&mut rep, &mut rows, "narrow", &narrow, reps);
    rep.set("rows", Value::Arr(rows));
    rep.set("groups", groups as u64);
    rep.set("deps_per_group", deps as u64);

    let at = |timings: &[(usize, f64)], w: usize| {
        timings.iter().find(|&&(x, _)| x == w).map(|&(_, ms)| ms)
    };
    if let (Some(t1), Some(t4)) = (at(&wide_timings, 1), at(&wide_timings, 4)) {
        let speedup = t1 / t4;
        rep.blank();
        rep.line(format!(
            "wide-corpus solver speedup at 4 workers: {speedup:.2}x (criterion: >= 2x)"
        ));
        rep.set("solver_speedup", speedup);
        rep.set("criterion_met", speedup >= 2.0);
    }
    if let (Some(n1), Some(n4)) = (at(&narrow_timings, 1), at(&narrow_timings, 4)) {
        // Single component: extra workers must be near-free (idle pool).
        rep.set("narrow_worker_overhead", n4 / n1 - 1.0);
    }

    rep.blank();
    rep.line("(Times cover solve only, constraint build excluded; speedup = 1-worker turbo median / N-worker turbo median on the same recording. The narrow corpus has one component, so its sweep bounds the turbo layer's overhead.)");
    rep.write_or_die();
}
