//! E18 — recorder hot-path scaling: recording overhead as thread count
//! grows 2 → 64 on a fixed total event budget (strong scaling, 10M+
//! events by default). The acceptance criterion is <= 2x overhead growth
//! from 8 to 64 threads with the adaptive recorder. Run with
//! `cargo bench -p light-bench --bench record_overhead_scaling`.
//!
//! Results land in `results/record_overhead_scaling.json` (consumed by
//! `scripts/bench_summary.py`, headline key `record_overhead_scaling`)
//! and `results/record_overhead_scaling.txt`.
//!
//! Three arms execute the *identical* planned access stream
//! ([`light_workloads::contention`]) at every sweep point:
//!
//! - `base` — [`NullRecorder`]: trait dispatch + the access op only;
//! - `fixed` — the Light recorder pinned at 256 stripes
//!   ([`StripeAdapt::Off`]), the pre-adaptive configuration;
//! - `adapt` — the Light recorder with default tuning (contention-driven
//!   stripe growth + batched flushes), the shipped configuration.
//!
//! `overhead(N) = arm_ms(N) / base_ms(N) - 1` at the same N, so the
//! baseline absorbs scheduler/oversubscription noise and the ratio
//! isolates what the *recorder* adds. The headline is
//! `overhead_adapt(64) / overhead_adapt(8)`.
//!
//! Env knobs: `LIGHT_RECORD_EVENTS` (total accesses per run, default
//! 10M), `LIGHT_RECORD_THREADS` (sweep cap, default 64),
//! `LIGHT_RECORD_REPS` (default 3).

use light_bench::report::Report;
use light_bench::{env_u64, median};
use light_core::obs::json::Value;
use light_core::{LightConfig, LightRecorder, RecorderTuning, StripeAdapt};
use light_runtime::{NullRecorder, Recorder};
use light_workloads::contention::ContentionSpec;
use lir::{BlockId, FuncId, InstrId};
use std::sync::{Arc, Barrier};
use std::time::Instant;

const THREAD_SWEEP: [usize; 6] = [2, 4, 8, 16, 32, 64];

fn iid() -> InstrId {
    InstrId {
        func: FuncId(0),
        block: BlockId(0),
        idx: 0,
    }
}

/// Replays the spec's planned streams against `recorder` from real OS
/// threads (barrier-released together); returns wall milliseconds from
/// release to last-thread completion.
fn run_arm(spec: &ContentionSpec, recorder: &Arc<dyn Recorder>) -> f64 {
    let barrier = Barrier::new(spec.threads + 1);
    let mut start = None;
    std::thread::scope(|scope| {
        for k in 0..spec.threads {
            let barrier = &barrier;
            let recorder = Arc::clone(recorder);
            let spec = *spec;
            scope.spawn(move || {
                let tid = spec.tid(k);
                let stream = spec.stream(k);
                let instr = iid();
                let mut acc = 0u64;
                barrier.wait();
                for (i, planned) in stream.enumerate() {
                    let key = planned.loc.key();
                    let mut op = || {
                        acc = acc.wrapping_mul(3).wrapping_add(key);
                        acc
                    };
                    recorder.on_access(
                        tid,
                        i as u64 + 1,
                        planned.loc,
                        planned.kind,
                        false,
                        instr,
                        &mut op,
                    );
                }
                recorder.on_thread_exit(tid);
                std::hint::black_box(acc);
            });
        }
        barrier.wait();
        start = Some(Instant::now());
        // The scope joins every worker on exit; elapsed is read after.
    });
    start.expect("barrier released").elapsed().as_secs_f64() * 1e3
}

/// Stats pulled off a recorded arm after one run.
struct ArmStats {
    deps: u64,
    runs: u64,
    contention: u64,
    stripes: u64,
    resizes: u64,
    flushes: u64,
}

fn recorded_arm(spec: &ContentionSpec, tuning: RecorderTuning) -> (f64, ArmStats) {
    let recorder =
        LightRecorder::new(LightConfig::default(), Default::default(), Default::default())
            .with_tuning(tuning);
    let dynrec: Arc<dyn Recorder> = recorder.clone();
    let ms = run_arm(spec, &dynrec);
    let stats = ArmStats {
        stripes: recorder.stripe_count() as u64,
        resizes: recorder.stripe_resizes(),
        flushes: recorder.batch_flushes(),
        deps: 0,
        runs: 0,
        contention: 0,
    };
    let recording = recorder.take_recording(None, &[]);
    let stats = ArmStats {
        deps: recording.stats.deps,
        runs: recording.stats.runs,
        contention: recording.stats.stripe_contention,
        ..stats
    };
    (ms, stats)
}

fn main() {
    let total_events = env_u64("LIGHT_RECORD_EVENTS", 10_000_000);
    let max_threads = env_u64("LIGHT_RECORD_THREADS", 64) as usize;
    let reps = env_u64("LIGHT_RECORD_REPS", 3) as usize;

    let fixed_tuning = RecorderTuning {
        adapt: StripeAdapt::Off,
        ..RecorderTuning::default()
    };
    let adaptive_tuning = RecorderTuning::default();

    let mut rep = Report::new("record_overhead_scaling");
    rep.line("== E18: recorder hot-path scaling (adaptive stripes + batched flushes) ==");
    rep.line(format!(
        "strong scaling: {total_events} total events split across N threads; median of {reps} reps"
    ));
    rep.line(format!(
        "{:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "threads", "base(ms)", "fixed(ms)", "adapt(ms)", "ovh-fix", "ovh-ada", "stripes", "resizes", "flushes"
    ));

    let mut rows = Vec::new();
    let mut overhead_by_n: Vec<(usize, f64)> = Vec::new();
    let mut adaptive_ms_at_max = 0.0;
    for &threads in THREAD_SWEEP.iter().filter(|&&n| n <= max_threads) {
        let spec = ContentionSpec {
            threads,
            events_per_thread: (total_events / threads as u64).max(1),
            ..ContentionSpec::default()
        };

        let null_rec: Arc<dyn Recorder> = Arc::new(NullRecorder);
        let base_ms = median((0..reps).map(|_| run_arm(&spec, &null_rec)).collect());

        let mut fixed_samples = Vec::new();
        for _ in 0..reps {
            fixed_samples.push(recorded_arm(&spec, fixed_tuning).0);
        }
        let fixed_ms = median(fixed_samples);

        let mut adapt_samples = Vec::new();
        let mut last_stats = None;
        for _ in 0..reps {
            let (ms, stats) = recorded_arm(&spec, adaptive_tuning);
            adapt_samples.push(ms);
            last_stats = Some(stats);
        }
        let adapt_ms = median(adapt_samples);
        let stats = last_stats.expect("reps >= 1");

        // Guard against a sub-resolution baseline on tiny CI budgets.
        let overhead_fixed = fixed_ms / base_ms.max(1e-3) - 1.0;
        let overhead_adapt = adapt_ms / base_ms.max(1e-3) - 1.0;
        overhead_by_n.push((threads, overhead_adapt));
        adaptive_ms_at_max = adapt_ms;

        rep.line(format!(
            "{threads:>7} {base_ms:>10.1} {fixed_ms:>10.1} {adapt_ms:>10.1} {overhead_fixed:>8.2}x {overhead_adapt:>8.2}x {:>8} {:>8} {:>8}",
            stats.stripes, stats.resizes, stats.flushes
        ));
        rows.push(Value::obj([
            ("threads", Value::from(threads as u64)),
            ("base_ms", Value::from(base_ms)),
            ("fixed_ms", Value::from(fixed_ms)),
            ("adaptive_ms", Value::from(adapt_ms)),
            ("overhead_fixed", Value::from(overhead_fixed)),
            ("overhead_adaptive", Value::from(overhead_adapt)),
            ("stripes_final", Value::from(stats.stripes)),
            ("stripe_resizes", Value::from(stats.resizes)),
            ("batch_flushes", Value::from(stats.flushes)),
            ("deps", Value::from(stats.deps)),
            ("runs", Value::from(stats.runs)),
            ("stripe_contention", Value::from(stats.contention)),
        ]));
    }
    rep.set("rows", Value::Arr(rows));
    rep.set("total_events", total_events);

    let at = |n: usize| {
        overhead_by_n
            .iter()
            .find(|&&(x, _)| x == n)
            .map(|&(_, o)| o)
    };
    let lo_n = if max_threads >= 8 { 8 } else { 2 };
    let hi_n = *THREAD_SWEEP
        .iter()
        .filter(|&&n| n <= max_threads)
        .max()
        .expect("nonempty sweep");
    if let (Some(lo), Some(hi)) = (at(lo_n), at(hi_n)) {
        // Clamp the denominator: on a quiet machine the 8-thread overhead
        // can be tiny, and a ratio of two near-zero noise terms is
        // meaningless. Negative overheads (timer noise) clamp the same way.
        let growth = hi.max(0.0) / lo.max(0.05);
        rep.blank();
        rep.line(format!(
            "adaptive overhead growth {lo_n}->{hi_n} threads: {growth:.2}x (criterion: <= 2x)"
        ));
        rep.set("record_overhead_scaling", growth);
        rep.set("record_overhead_lo", lo);
        rep.set("record_overhead_hi", hi);
        rep.set(
            "record_events_per_sec",
            total_events as f64 / (adaptive_ms_at_max / 1e3).max(1e-9),
        );
        rep.set("criterion_met", growth <= 2.0);
    }

    rep.blank();
    rep.line("(overhead = arm/base - 1 at the same thread count; base is the NullRecorder executing the identical planned stream, so the ratio isolates recorder cost from scheduler noise. fixed = 256 stripes pinned; adapt = contention-driven doubling to 4096 + batched flushes.)");
    rep.write_or_die();
}
