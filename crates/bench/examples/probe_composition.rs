use light_core::Light;
use light_workloads::benchmarks;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    for name in ["stamp.kmeans", "dc.sensor-net", "srv.cache4j", "jgf.sor"] {
        let w = benchmarks().into_iter().find(|w| w.name == name).unwrap();
        let program = w.program();
        let light = Light::new(Arc::clone(&program));
        let args = w.args(4, 20);
        let (rec, out) = light.record(&args, 1).unwrap();
        assert!(out.completed());
        // Classify records by loc tag (low 3 bits of key).
        let mut dep_kinds: HashMap<u64, u64> = HashMap::new();
        let mut run_kinds: HashMap<u64, u64> = HashMap::new();
        for d in &rec.deps { *dep_kinds.entry(d.loc & 7).or_default() += 1; }
        for r in &rec.runs { *run_kinds.entry(r.loc & 7).or_default() += 1; }
        println!("{name}: space={} deps={} runs={} o2skip={}", rec.space_longs(), rec.stats.deps, rec.stats.runs, rec.stats.o2_skipped);
        println!("  deps by kind (0=glob,1=field,2=elem,3=map,4=mon,5=life): {:?}", dep_kinds);
        println!("  runs by kind: {:?}", run_kinds);
        let mut fat: Vec<&light_core::RunRec> = rec.runs.iter().collect();
        fat.sort_by_key(|r| std::cmp::Reverse(r.write_ctrs.len()));
        for r in fat.iter().take(4) {
            println!(
                "  fat run: loc_kind={} tid={} [{}..{}] writes={}",
                r.loc & 7, r.tid, r.first, r.last, r.write_ctrs.len()
            );
        }
    }
}
