//! `light-inspect` — human-readable (and machine-readable) views of a
//! saved Light recording.
//!
//! ```text
//! light-inspect <recording.lrec>            # summary
//! light-inspect <recording.lrec> --json     # unified metric snapshot JSON
//! light-inspect <recording.lrec> --trace out.json
//!                                           # chrome://tracing export of the
//!                                           # pipeline + computed schedule
//! ```

use light_core::obs::json::Value;
use light_core::obs::{chrome_trace_json, Histogram, Obs, TraceEvent, TraceSink};
use light_core::{
    peek_log_version, read_recording, ConstraintSystem, Recording, TurboOptions,
    LOG_FORMAT_VERSION,
};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: light-inspect <recording> [--json] [--trace <out.json>]";

/// Location-key tag names, mirroring `Loc::key`'s low 3 bits.
const TAGS: [&str; 6] = ["global", "field", "elem", "map-state", "monitor", "thread-life"];

fn tag_name(loc: u64) -> &'static str {
    TAGS.get((loc & 7) as usize).copied().unwrap_or("unknown")
}

fn main() -> ExitCode {
    let mut path = None;
    let mut json = false;
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--trace" => match args.next() {
                Some(out) => trace_out = Some(out),
                None => {
                    eprintln!("--trace needs an output path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => {
                eprintln!("unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    // Collect the inspection pipeline itself (log-load, constraint-build,
    // solve) into the trace when one was requested.
    let sink = Arc::new(TraceSink::new());
    let obs = if trace_out.is_some() {
        Obs::with_sink(sink.clone())
    } else {
        Obs::disabled()
    };

    // Load by hand (rather than via `load_recording_traced`) so the
    // on-disk format version can be peeked before parsing.
    let (recording, file_version) = {
        let _span = obs.span("log-load");
        let loaded = std::fs::read(&path)
            .map_err(light_core::LogError::Io)
            .and_then(|bytes| Ok((read_recording(&bytes)?, peek_log_version(&bytes)?)));
        match loaded {
            Ok(r) => r,
            Err(e) => {
                eprintln!("light-inspect: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Best-effort registry ingest (no-op unless LIGHT_REGISTRY is set):
    // inspecting a recording files it under its content hash, so ad-hoc
    // `.lrec` files become queryable alongside pipeline runs.
    {
        use light_telemetry::{auto_ingest, RunKind, RunRecord, RunStatus};
        let status = if recording.fault.is_some() {
            RunStatus::Failed
        } else {
            RunStatus::Ok
        };
        let mut reg = RunRecord::new(&path, RunKind::Inspect, status);
        reg.metrics = Some(recording.snapshot());
        reg.provenance = recording
            .provenance
            .as_ref()
            .map(|p| format!("explore:{} seed {}", p.strategy, p.seed));
        auto_ingest(reg, Some(light_core::write_recording(&recording).as_ref()));
    }

    if json {
        let mut snap = recording.snapshot().to_json();
        if let Value::Obj(pairs) = &mut snap {
            // The stable machine-readable envelope: consumers key off
            // `schema.name` and may rely on every field below existing.
            let explore = match &recording.provenance {
                Some(p) => Value::obj([
                    ("strategy", Value::Str(p.strategy.clone())),
                    ("seed", Value::from(p.seed)),
                    ("schedules", Value::from(p.schedules)),
                    ("minimized", Value::Bool(p.minimized)),
                    ("trace_segments", Value::from(p.trace_segments)),
                ]),
                None => Value::Null,
            };
            pairs.insert(
                0,
                (
                    "schema".into(),
                    Value::obj([
                        ("name", Value::Str("light-inspect/v1".into())),
                        ("log_format_version", Value::U64(u64::from(file_version))),
                        (
                            "reader_log_format_version",
                            Value::U64(u64::from(LOG_FORMAT_VERSION)),
                        ),
                        ("explore", explore),
                    ]),
                ),
            );
        }
        if let (Value::Obj(pairs), Some(p)) = (&mut snap, &recording.provenance) {
            // Kept alongside `schema.explore` for existing consumers.
            pairs.push((
                "explore".into(),
                Value::obj([
                    ("strategy", Value::Str(p.strategy.clone())),
                    ("seed", Value::from(p.seed)),
                    ("schedules", Value::from(p.schedules)),
                    ("minimized", Value::Bool(p.minimized)),
                    ("trace_segments", Value::from(p.trace_segments)),
                ]),
            ));
        }
        println!("{}", snap.to_json_pretty());
    } else {
        print_summary(&recording, file_version);
    }

    if let Some(out) = trace_out {
        match write_trace(&recording, &obs, &sink, &out) {
            Ok(events) => eprintln!("[light-inspect] wrote {events} trace events to {out}"),
            Err(e) => {
                eprintln!("light-inspect: cannot write trace {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_summary(rec: &Recording, file_version: u32) {
    println!("== recording summary ==");
    println!("args: {:?}", rec.args);
    match &rec.fault {
        Some(f) => println!("fault: {f}"),
        None => println!("fault: none (clean run)"),
    }
    if let Some(p) = &rec.provenance {
        let minimized = if p.minimized { ", minimized" } else { "" };
        println!(
            "explore provenance: {} seed {} ({} schedules, {} trace segments{})",
            p.strategy, p.seed, p.schedules, p.trace_segments, minimized
        );
    }

    let s = &rec.stats;
    println!();
    println!("recorder stats:");
    println!("  space (longs):      {}", s.space_longs);
    println!("  dependence edges:   {}", s.deps);
    println!("  non-interleaved runs: {}", s.runs);
    println!("  O2-skipped accesses:  {}", s.o2_skipped);
    // Pre-v2 logs predate the contention counter and pre-v4 logs the
    // per-stripe histogram: render "n/a" rather than a misleading zero.
    if file_version < 2 {
        println!("  stripe contention:    n/a (log format v{file_version} predates it)");
    } else {
        println!("  stripe contention:    {}", s.stripe_contention);
    }
    // Stripe layout the histogram was recorded under: the dense vector is
    // sized to the recorder's final (possibly adaptively grown) count.
    if file_version >= 4 && !rec.stripe_hist.is_empty() {
        let layout = rec.stripe_hist.len();
        if layout > light_core::STRIPE_COUNT {
            println!(
                "  stripe layout:        {layout} stripes (adaptively grown from {})",
                light_core::STRIPE_COUNT
            );
        } else {
            println!("  stripe layout:        {layout} stripes");
        }
    }
    let hist = rec.stripe_hist_sparse();
    println!();
    if file_version < 4 {
        println!("contended last-write-map stripes: n/a (log format v{file_version} predates the histogram)");
    } else if hist.is_empty() {
        println!("contended last-write-map stripes: none (no contended accesses)");
    } else {
        println!("contended last-write-map stripes ({}):", hist.len());
        let max = hist.iter().map(|&(_, n)| n).max().unwrap_or(1);
        let mut hot: Vec<_> = hist;
        hot.sort_by_key(|&(stripe, n)| (std::cmp::Reverse(n), stripe));
        const WIDTH: u64 = 40;
        for &(stripe, n) in hot.iter().take(16) {
            let bar = (n * WIDTH).div_ceil(max) as usize;
            println!("  stripe {stripe:>3} {n:>8} |{}|", "#".repeat(bar));
        }
        if hot.len() > 16 {
            println!("  ... {} more stripes", hot.len() - 16);
        }
    }

    println!();
    println!("threads ({}):", rec.thread_extents.len());
    let mut extents: Vec<_> = rec.thread_extents.iter().collect();
    extents.sort();
    for (tid, extent) in extents {
        println!("  {tid}: {extent} events");
    }

    println!();
    println!("dependence edges by location kind ({} total):", rec.deps.len());
    let mut by_tag: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for d in &rec.deps {
        let e = by_tag.entry(tag_name(d.loc)).or_default();
        e.0 += 1;
        if d.w.is_none() {
            e.1 += 1;
        }
    }
    for (tag, (count, initial)) in &by_tag {
        println!("  {tag:<12} {count:>8} ({initial} initial-value reads)");
    }

    println!();
    let mut lengths = Histogram::new();
    for r in &rec.runs {
        lengths.record(r.last - r.first + 1);
    }
    println!(
        "non-interleaved run lengths ({} runs, mean {:.1}, max {}):",
        lengths.count(),
        lengths.mean(),
        lengths.max()
    );
    print!("{}", lengths.render(40));

    println!();
    println!("signal edges ({}):", rec.signals.len());
    for sig in &rec.signals {
        println!("  notify {} -> wait-after {}", sig.notify, sig.wait_after);
    }

    println!();
    let sys = ConstraintSystem::build(rec);
    println!(
        "constraint system: {} order variables, {} constraints",
        sys.num_vars(),
        sys.num_constraints()
    );
    match sys.solve_with(rec, Some(&TurboOptions::default())) {
        Ok((_, stats, turbo)) => {
            // The turbo path can legitimately return no turbo stats
            // (e.g. a trivially small system solved sequentially):
            // render "n/a" rather than asserting.
            match turbo {
                Some(t) => {
                    println!(
                        "turbo solve: {} component(s), widest {} vars, {} worker(s), {} decisions, {} backtracks, {:.2}ms",
                        t.components,
                        t.widest_component,
                        t.workers,
                        stats.decisions,
                        stats.backtracks,
                        stats.solve_time.as_secs_f64() * 1e3,
                    );
                    println!(
                        "  preprocessing: {} units promoted, {} atoms dropped, {} clauses dropped, {} subsumed",
                        t.prep.promoted_units,
                        t.prep.dropped_atoms,
                        t.prep.dropped_clauses,
                        t.prep.subsumed_clauses,
                    );
                    if t.cache_hits + t.cache_misses > 0 {
                        println!(
                            "  component cache: {} hits, {} misses",
                            t.cache_hits, t.cache_misses
                        );
                    }
                }
                None => println!(
                    "turbo solve: n/a (solved sequentially), {} decisions, {} backtracks, {:.2}ms",
                    stats.decisions,
                    stats.backtracks,
                    stats.solve_time.as_secs_f64() * 1e3,
                ),
            }
        }
        Err(e) => println!("turbo solve: FAILED ({e}) — see light-doctor --explain"),
    }

    // Memory plane: saved logs (all versions to date) carry no record-time
    // byte gauges, so those render "n/a" like the other pre-format fields.
    // The solve we just ran *does* populate the live solver gauges in this
    // process, so show whatever the registry has.
    println!();
    let mem = light_core::obs::mem::global().snapshot();
    println!("memory (record-time): n/a (log format v{file_version} predates the memory plane)");
    if mem.subsystems.is_empty() {
        println!("memory (this inspect process): n/a (no gauges registered)");
    } else {
        println!("memory (this inspect process):");
        println!("  {:<16} {:>12} {:>12}", "subsystem", "bytes", "peak");
        for (name, stat) in &mem.subsystems {
            println!("  {:<16} {:>12} {:>12}", name, stat.bytes, stat.peak_bytes);
        }
    }
}

fn write_trace(
    rec: &Recording,
    obs: &Obs,
    sink: &TraceSink,
    out: &str,
) -> Result<usize, Box<dyn std::error::Error>> {
    // Recompute the replay schedule so the trace shows the enforced total
    // order per thread lane (the recording itself stores constraints, not
    // the solved order).
    let sys = {
        let _span = obs.span("constraint-build");
        ConstraintSystem::build(rec)
    };
    let (schedule, _stats) = {
        let _span = obs.span("solve");
        sys.solve(rec)?
    };

    let mut events = sink.events();
    let base = light_core::obs::now_us();
    let mut named = std::collections::HashSet::new();
    for (i, (tid, _seq)) in schedule.ordered_slots().into_iter().enumerate() {
        let lane = tid.raw() + 1;
        if named.insert(lane) {
            events.push(TraceEvent::ThreadName {
                tid: lane,
                label: tid.to_string(),
            });
        }
        // One synthetic microsecond per schedule slot: the lane picture
        // shows the enforced interleaving, not wall-clock time.
        events.push(TraceEvent::Complete {
            name: "slot",
            tid: lane,
            ts_us: base + i as u64,
            dur_us: 1,
        });
    }
    std::fs::write(out, chrome_trace_json(&events))?;
    Ok(events.len())
}
