use light_baselines::{LeapRecorder, StrideRecorder};
use light_core::{LightConfig, LightRecorder};
use light_runtime::{AccessKind, Loc, NullRecorder, ObjId, Recorder, Tid};
use lir::{BlockId, FuncId, InstrId};
#[allow(unused_imports)]
use lir::Operand as _Unused;
use std::sync::Arc;
use std::time::Instant;

fn bench(name: &str, rec: Arc<dyn Recorder>) {
    let iid = InstrId { func: FuncId(0), block: BlockId(0), idx: 0 };
    let t = Tid::ROOT;
    let n = 2_000_000u64;
    // Mixed pattern: strided writes to many locs + reads of same loc.
    let start = Instant::now();
    for i in 0..n {
        let loc = Loc::Elem(ObjId((i % 1024) as u32), (i % 64) as u32);
        let kind = if i % 4 == 0 { AccessKind::Write } else { AccessKind::Read };
        rec.on_access(t, i + 1, loc, kind, false, iid, &mut || 7);
    }
    rec.on_thread_exit(t);
    let el = start.elapsed();
    println!("{name:>8}: {:.1} ns/access", el.as_nanos() as f64 / n as f64);
}

/// Multi-threaded phase: several OS threads hammer a handful of hot
/// locations so their last-write-map stripes collide, then the recorder's
/// contention counter (surfaced in `RecordStats::stripe_contention`) shows
/// how often the non-blocking stripe acquisition failed.
fn bench_contended(threads: u64, per_thread: u64) {
    let iid = InstrId { func: FuncId(0), block: BlockId(0), idx: 0 };
    let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                let tid = if t == 0 { Tid::ROOT } else { Tid::ROOT.child((t - 1) as u32) };
                for i in 0..per_thread {
                    // Two hot locations shared by every thread: maximal
                    // stripe collision pressure.
                    let loc = Loc::Elem(ObjId((i % 2) as u32), 0);
                    let kind = if i % 4 == 0 { AccessKind::Write } else { AccessKind::Read };
                    rec.on_access(tid, i + 1, loc, kind, false, iid, &mut || 7);
                }
                rec.on_thread_exit(tid);
            });
        }
    });
    let el = start.elapsed();
    let stats = rec.take_recording(None, &[]).stats;
    let n = threads * per_thread;
    println!(
        "contended: {threads} threads x {per_thread} accesses: {:.1} ns/access, stripe contention {} ({:.2}% of accesses)",
        el.as_nanos() as f64 / n as f64,
        stats.stripe_contention,
        100.0 * stats.stripe_contention as f64 / n as f64,
    );
}

fn main() {
    bench("null", Arc::new(NullRecorder));
    bench("light", LightRecorder::new(LightConfig::default(), Default::default(), Default::default()));
    bench("leap", LeapRecorder::new());
    bench("stride", StrideRecorder::new());
    bench_contended(4, 500_000);
}
