use light_baselines::{LeapRecorder, StrideRecorder};
use light_core::{LightConfig, LightRecorder};
use light_runtime::{AccessKind, Loc, NullRecorder, ObjId, Recorder, Tid};
use lir::{BlockId, FuncId, InstrId};
#[allow(unused_imports)]
use lir::Operand as _Unused;
use std::sync::Arc;
use std::time::Instant;

fn bench(name: &str, rec: Arc<dyn Recorder>) {
    let iid = InstrId { func: FuncId(0), block: BlockId(0), idx: 0 };
    let t = Tid::ROOT;
    let n = 2_000_000u64;
    // Mixed pattern: strided writes to many locs + reads of same loc.
    let start = Instant::now();
    for i in 0..n {
        let loc = Loc::Elem(ObjId((i % 1024) as u32), (i % 64) as u32);
        let kind = if i % 4 == 0 { AccessKind::Write } else { AccessKind::Read };
        rec.on_access(t, i + 1, loc, kind, false, iid, &mut || 7);
    }
    rec.on_thread_exit(t);
    let el = start.elapsed();
    println!("{name:>8}: {:.1} ns/access", el.as_nanos() as f64 / n as f64);
}

fn main() {
    bench("null", Arc::new(NullRecorder));
    bench("light", LightRecorder::new(LightConfig::default(), Default::default(), Default::default()));
    bench("leap", LeapRecorder::new());
    bench("stride", StrideRecorder::new());
}
