//! Structured result reporting for the evaluation harnesses.
//!
//! Every figure/table harness routes its output through a [`Report`]:
//! each printed line is mirrored into a text transcript, and the
//! harness attaches a machine-readable JSON document built from the
//! unified metric snapshots (`light_core::obs::MetricsSnapshot` and
//! friends). On [`Report::write`] both artifacts land in the results
//! directory as `<name>.json` (primary, consumed by
//! `scripts/fill_experiments.py`) and `<name>.txt` (secondary, for
//! humans reading the raw transcript).
//!
//! The directory defaults to `<repo>/results` and can be redirected
//! with `LIGHT_RESULTS_DIR`.

use light_core::obs::json::Value;
use std::path::PathBuf;

/// Where result artifacts are written: `LIGHT_RESULTS_DIR` if set, the
/// repository's `results/` directory otherwise.
pub fn results_dir() -> PathBuf {
    match std::env::var_os("LIGHT_RESULTS_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results")),
    }
}

/// A harness result under construction: a line-oriented text transcript
/// (also echoed to stdout) plus a JSON object of structured fields.
pub struct Report {
    name: &'static str,
    text: String,
    fields: Vec<(String, Value)>,
}

impl Report {
    /// Starts a report named after its harness (e.g. `"fig4_time"`).
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            text: String::new(),
            fields: vec![("name".to_string(), Value::from(name))],
        }
    }

    /// Prints one line to stdout and appends it to the transcript.
    pub fn line(&mut self, line: impl AsRef<str>) {
        let line = line.as_ref();
        println!("{line}");
        self.text.push_str(line);
        self.text.push('\n');
    }

    /// Prints and records an empty line.
    pub fn blank(&mut self) {
        self.line("");
    }

    /// Attaches a structured field to the JSON document. Later values
    /// win when a key is set twice.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
    }

    /// The transcript accumulated so far.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The JSON document accumulated so far.
    pub fn to_json(&self) -> Value {
        Value::Obj(self.fields.clone())
    }

    /// Writes `<name>.json` and `<name>.txt` into [`results_dir`],
    /// creating it if needed. Returns the JSON path. When
    /// `LIGHT_REGISTRY` is set the report is also ingested into the run
    /// registry (kind `bench`, headline = the report's numeric fields,
    /// blob = the JSON document), so `light-watch trend`/`regress` can
    /// gate on every harness without extra plumbing.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or
    /// writing either artifact. Registry ingest is best-effort and
    /// never fails the write.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let json_path = dir.join(format!("{}.json", self.name));
        let doc = self.to_json().to_json_pretty() + "\n";
        std::fs::write(&json_path, &doc)?;
        std::fs::write(dir.join(format!("{}.txt", self.name)), &self.text)?;

        let mut rec = light_telemetry::RunRecord::new(
            self.name,
            light_telemetry::RunKind::Bench,
            light_telemetry::RunStatus::Ok,
        );
        rec.headline = self.headline_fields();
        light_telemetry::auto_ingest(rec, Some(doc.as_bytes()));
        Ok(json_path)
    }

    /// The report's numeric fields flattened for trending: top-level
    /// numbers keep their key, one nesting level (the `aggregate_json`
    /// shape) flattens to `key.subkey`.
    fn headline_fields(&self) -> std::collections::BTreeMap<String, f64> {
        let mut out = std::collections::BTreeMap::new();
        for (k, v) in &self.fields {
            if let Some(x) = v.as_f64() {
                out.insert(k.clone(), x);
            } else if let Value::Obj(pairs) = v {
                for (sub, sv) in pairs {
                    if let Some(x) = sv.as_f64() {
                        out.insert(format!("{k}.{sub}"), x);
                    }
                }
            } else if let Value::Bool(b) = v {
                // Criterion flags (`criterion_met`) trend as 0/1.
                out.insert(k.clone(), if *b { 1.0 } else { 0.0 });
            }
        }
        out
    }

    /// [`Report::write`], panicking on filesystem errors (harnesses have
    /// no better recovery than failing loudly).
    pub fn write_or_die(&self) {
        match self.write() {
            Ok(path) => eprintln!("[report] wrote {}", path.display()),
            Err(e) => panic!("failed to write results for {}: {e}", self.name),
        }
    }
}

/// Builds the `{average, median, min, max}` JSON object the aggregate
/// tables are generated from.
pub fn aggregate_json(xs: &[f64]) -> Value {
    let (avg, med, min, max) = crate::aggregate(xs);
    Value::obj([
        ("average", Value::from(avg)),
        ("median", Value::from(med)),
        ("min", Value::from(min)),
        ("max", Value::from(max)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_text_and_fields() {
        let mut r = Report::new("unit_test_report");
        r.line("hello");
        r.set("threads", 4u64);
        r.set("threads", 8u64);
        assert_eq!(r.text(), "hello\n");
        let json = r.to_json();
        assert_eq!(json.get("name").and_then(Value::as_str), Some("unit_test_report"));
        assert_eq!(json.get("threads").and_then(Value::as_u64), Some(8));
    }

    #[test]
    fn headline_flattens_numeric_fields() {
        let mut r = Report::new("unit_headline");
        r.set("rows", 5u64);
        r.set("criterion_met", Value::Bool(true));
        r.set("overhead", aggregate_json(&[1.0, 3.0]));
        r.set("label", "text");
        let head = r.headline_fields();
        assert_eq!(head.get("rows"), Some(&5.0));
        assert_eq!(head.get("criterion_met"), Some(&1.0));
        assert_eq!(head.get("overhead.median"), Some(&2.0));
        assert!(!head.contains_key("label"));
    }

    #[test]
    fn aggregate_json_shape() {
        let v = aggregate_json(&[1.0, 2.0, 3.0]);
        assert_eq!(v.get("average").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("max").and_then(Value::as_f64), Some(3.0));
    }
}
