//! Shared plumbing for the evaluation harnesses (one per paper
//! table/figure; see the `benches/` directory).
//!
//! Environment knobs, honored by every harness:
//!
//! - `LIGHT_BENCH_THREADS` — LIR thread count (default 4);
//! - `LIGHT_BENCH_SCALE` — problem-size multiplier (default 1);
//! - `LIGHT_BENCH_REPS` — repetitions per measurement, median taken
//!   (default 3);
//! - `LIGHT_BENCH_FILTER` — substring filter on benchmark names.

pub mod report;

use light_baselines::{LeapRecorder, StrideRecorder};
use light_core::{Light, LightConfig};
use light_runtime::{run, ExecConfig, NullRecorder, RunOutcome, SchedulerSpec, SharedPolicy};
use light_workloads::Workload;
use std::sync::Arc;
use std::time::Duration;

/// Reads an env knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The name filter from `LIGHT_BENCH_FILTER`.
pub fn name_filter() -> Option<String> {
    std::env::var("LIGHT_BENCH_FILTER").ok()
}

/// Applies the filter to a workload list.
pub fn filtered_benchmarks() -> Vec<Workload> {
    let filter = name_filter();
    light_workloads::benchmarks()
        .into_iter()
        .filter(|w| {
            filter
                .as_ref()
                .map(|f| w.name.contains(f.as_str()))
                .unwrap_or(true)
        })
        .collect()
}

/// Median of a sample (panics on empty input).
pub fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// (average, median, min, max) summary, mirroring the paper's aggregate
/// statistics tables.
pub fn aggregate(xs: &[f64]) -> (f64, f64, f64, f64) {
    let avg = mean(xs);
    let med = median(xs.to_vec());
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (avg, med, min, max)
}

/// One timed run of `workload` with the given recorder configuration;
/// returns the outcome and elapsed seconds.
fn timed_run(
    program: &Arc<lir::Program>,
    args: &[i64],
    policy: SharedPolicy,
    recorder: Arc<dyn light_runtime::Recorder>,
) -> (RunOutcome, f64) {
    let config = ExecConfig {
        recorder,
        scheduler: SchedulerSpec::Free,
        policy,
        wall_timeout: Duration::from_secs(120),
        ..ExecConfig::default()
    };
    let out = run(program, args, config).expect("benchmark setup");
    assert!(
        out.completed(),
        "benchmark faulted during measurement: {}",
        out.fault.clone().unwrap()
    );
    let secs = out.stats.duration.as_secs_f64();
    (out, secs)
}

/// Time and space measurements of one workload across all recorders.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    pub name: &'static str,
    pub base_secs: f64,
    pub light_secs: f64,
    pub leap_secs: f64,
    pub stride_secs: f64,
    pub light_space: u64,
    pub leap_space: u64,
    pub stride_space: u64,
}

impl OverheadRow {
    /// Normalized time overhead of a tool (`t/t0 - 1`).
    pub fn overhead(&self, secs: f64) -> f64 {
        secs / self.base_secs - 1.0
    }
}

/// Measures one workload under the null, Light, Leap and Stride recorders.
/// Each configuration runs `reps` times; medians are reported.
pub fn measure_overhead(w: &Workload, threads: i64, scale: i64, reps: u64) -> OverheadRow {
    let program = w.program();
    let args = w.args(threads, scale);
    let light = Light::new(Arc::clone(&program));
    let policy = light.analysis().policy.clone();

    let mut base = Vec::new();
    let mut light_t = Vec::new();
    let mut leap_t = Vec::new();
    let mut stride_t = Vec::new();
    let mut light_space = 0;
    let mut leap_space = 0;
    let mut stride_space = 0;

    // All three tools flush their buffers to disk as they fill, exactly
    // as the paper's measurement setup configures them (Section 5.2).
    let spill_threshold = 4096;
    for _ in 0..reps {
        let (_, secs) = timed_run(&program, &args, policy.clone(), Arc::new(NullRecorder));
        base.push(secs);

        let sink = light_core::SpillSink::to_temp("light").expect("spill file");
        let recorder = light.make_recorder().with_spill(sink, spill_threshold);
        let (out, secs) = timed_run(&program, &args, policy.clone(), recorder.clone());
        let recording = recorder.take_recording(out.fault.clone(), &args);
        light_space = recording.space_longs();
        light_t.push(secs);

        let sink = light_core::SpillSink::to_temp("leap").expect("spill file");
        let leap = LeapRecorder::new().with_spill(sink, spill_threshold);
        let (out, secs) = timed_run(&program, &args, policy.clone(), leap.clone());
        leap_space = leap.take_recording(out.fault.clone(), &args).space_longs();
        leap_t.push(secs);

        let sink = light_core::SpillSink::to_temp("stride").expect("spill file");
        let stride = StrideRecorder::new().with_spill(sink, spill_threshold);
        let (out, secs) = timed_run(&program, &args, policy.clone(), stride.clone());
        stride_space = stride
            .take_recording(out.fault.clone(), &args)
            .space_longs();
        stride_t.push(secs);
    }

    OverheadRow {
        name: w.name,
        base_secs: median(base),
        light_secs: median(light_t),
        leap_secs: median(leap_t),
        stride_secs: median(stride_t),
        light_space,
        leap_space,
        stride_space,
    }
}

/// Time/space of one Light variant on one workload (for Figure 7).
#[derive(Debug, Clone)]
pub struct VariantRow {
    pub name: &'static str,
    pub base_secs: f64,
    pub basic_secs: f64,
    pub o1_secs: f64,
    pub both_secs: f64,
    pub basic_space: u64,
    pub o1_space: u64,
    pub both_space: u64,
}

/// Measures the three Light variants (`V_basic`, `V_O1`, `V_both`).
pub fn measure_variants(w: &Workload, threads: i64, scale: i64, reps: u64) -> VariantRow {
    let program = w.program();
    let args = w.args(threads, scale);

    let configs = [
        LightConfig::basic(),
        LightConfig::o1_only(),
        LightConfig::default(),
    ];
    let mut secs = [0.0f64; 3];
    let mut space = [0u64; 3];
    let mut base = Vec::new();

    for (k, cfg) in configs.iter().enumerate() {
        let light = Light::with_config(Arc::clone(&program), *cfg);
        let policy = light.analysis().policy.clone();
        let mut times = Vec::new();
        for _ in 0..reps {
            if k == 0 {
                let (_, s) = timed_run(&program, &args, policy.clone(), Arc::new(NullRecorder));
                base.push(s);
            }
            let sink = light_core::SpillSink::to_temp("variant").expect("spill file");
            let recorder = light.make_recorder().with_spill(sink, 4096);
            let (out, s) = timed_run(&program, &args, policy.clone(), recorder.clone());
            space[k] = recorder
                .take_recording(out.fault.clone(), &args)
                .space_longs();
            times.push(s);
        }
        secs[k] = median(times);
    }

    VariantRow {
        name: w.name,
        base_secs: median(base),
        basic_secs: secs[0],
        o1_secs: secs[1],
        both_secs: secs[2],
        basic_space: space[0],
        o1_space: space[1],
        both_space: space[2],
    }
}

/// Renders a unicode bar of `frac` (clamped to the unit interval) out of
/// `width` cells.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::new();
    for _ in 0..filled {
        s.push('█');
    }
    for _ in filled..width {
        s.push('·');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_aggregate() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![1.0, 2.0, 3.0, 4.0]), 2.5);
        let (avg, med, min, max) = aggregate(&[1.0, 2.0, 3.0]);
        assert_eq!((avg, med, min, max), (2.0, 2.0, 1.0, 3.0));
    }

    #[test]
    fn bar_renders_fixed_width() {
        assert_eq!(bar(0.5, 4).chars().count(), 4);
        assert_eq!(bar(2.0, 4), "████");
        assert_eq!(bar(-1.0, 4), "····");
    }

    #[test]
    fn overhead_row_math() {
        let row = OverheadRow {
            name: "x",
            base_secs: 1.0,
            light_secs: 1.4,
            leap_secs: 5.0,
            stride_secs: 5.5,
            light_space: 10,
            leap_space: 100,
            stride_space: 100,
        };
        assert!((row.overhead(row.light_secs) - 0.4).abs() < 1e-9);
        assert!((row.overhead(row.leap_secs) - 4.0).abs() < 1e-9);
    }
}
