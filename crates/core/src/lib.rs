//! Light: replay via tightly bounded recording (PLDI 2015), in Rust.
//!
//! This crate implements the paper's contribution: a record/replay
//! technique that records only **flow dependences** over shared locations
//! (the provably necessary and sufficient information, Theorem 1), uses
//! thread-local buffers to avoid recording synchronization, and computes a
//! feasible replay schedule with an Integer Difference Logic solver
//! (Equation 1 / Lemma 4.1).
//!
//! The high-level API is [`Light`]:
//!
//! ```
//! use std::sync::Arc;
//! use light_core::Light;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(lir::parse(
//!     "global total;
//!      fn worker(n) {
//!          let i = 0;
//!          while (i < n) { total = total + 1; i = i + 1; }
//!      }
//!      fn main(n) {
//!          let t1 = spawn worker(n);
//!          let t2 = spawn worker(n);
//!          join t1; join t2;
//!          print(total);
//!      }",
//! )?);
//! let light = Light::new(program);
//! let (recording, original) = light.record(&[50], 42)?;
//! let report = light.replay(&recording)?;
//! assert!(report.correlated);
//! // The replay prints the same (possibly lost-update) total as recorded.
//! assert_eq!(original.prints, report.outcome.prints);
//! # Ok(())
//! # }
//! ```

mod constraints;
pub mod fastmap;
mod log;
mod recorder;
mod recording;
mod replay;
pub mod spill;

pub use constraints::{
    ConstraintKind, ConstraintOrigin, ConstraintSystem, CoreConstraint, ScheduleError,
};
pub use fastmap::FastMap;
pub use log::{
    load_recording, load_recording_traced, peek_log_version, read_recording, save_recording,
    save_recording_traced, write_recording, LogError, LOG_FORMAT_VERSION,
};
pub use recorder::{
    stripe_of, LightConfig, LightRecorder, RecorderTuning, StripeAdapt, MAX_STRIPE_COUNT,
    STRIPE_COUNT,
};
pub use spill::SpillSink;
pub use recording::{
    AccessId, DepEdge, ExploreProvenance, RecordStats, Recording, RunRec, SignalEdge,
};
pub use replay::{
    compute_schedule, compute_schedule_instrumented, compute_schedule_traced,
    compute_schedule_with, faults_correlate, replay, replay_observed, replay_traced, ReplayError,
    ReplayOptions, ReplayReport,
};

/// Re-export of the turbo solving layer so downstream drivers (explore,
/// doctor, the CLIs) can configure component-sharded parallel solving
/// without a direct `light-solver` dependency.
pub use light_solver::{ComponentCache, TurboOptions, TurboStats};

/// Re-export of the observability crate, so downstream users can attach
/// sinks ([`obs::TraceSink`], [`obs::MetricsRegistry`]) without a direct
/// dependency.
pub use light_obs as obs;

use light_analysis::Analysis;
use light_obs::Obs;
use light_runtime::{
    run, ExecConfig, NondetMode, ReplaySchedule, RunOutcome, SchedulerSpec, SetupError,
};
use light_solver::SolveStats;
use lir::Program;
use std::collections::HashSet;
use std::sync::Arc;

/// The Light record/replay tool for one program: bundles the static
/// analyses (shared-location policy, lockset verdicts), the recorder
/// configuration, and the replay pipeline.
pub struct Light {
    program: Arc<Program>,
    analysis: Analysis,
    config: LightConfig,
    tuning: Option<RecorderTuning>,
    replay_options: ReplayOptions,
    obs: Obs,
    flight: light_obs::Flight,
}

impl Light {
    /// Creates a Light instance with both optimizations enabled
    /// (`V_both`), running the static analyses on `program`.
    pub fn new(program: Arc<Program>) -> Self {
        Self::with_config(program, LightConfig::default())
    }

    /// Creates a Light instance with an explicit variant configuration
    /// (used by the Figure 7 ablation).
    pub fn with_config(program: Arc<Program>, config: LightConfig) -> Self {
        let analysis = light_analysis::analyze(&program);
        Self {
            program,
            analysis,
            config,
            tuning: None,
            replay_options: ReplayOptions::default(),
            obs: Obs::disabled(),
            flight: light_obs::Flight::disabled(),
        }
    }

    /// Overrides the recorder hot-path tuning (stripe layout, adaptation
    /// policy, batch size) for every recorder this instance creates.
    /// Recording content is identical under every tuning — only recording
    /// throughput changes — so this is safe to vary per deployment.
    pub fn set_recorder_tuning(&mut self, tuning: RecorderTuning) {
        self.tuning = Some(tuning);
    }

    /// The recorder tuning override, if one was set.
    pub fn recorder_tuning(&self) -> Option<RecorderTuning> {
        self.tuning
    }

    /// Overrides the replay timeouts.
    pub fn set_replay_options(&mut self, options: ReplayOptions) {
        self.replay_options = options;
    }

    /// The active replay options (mutable, for in-place tweaks like
    /// attaching a [`ComponentCache`] or setting turbo workers).
    pub fn replay_options_mut(&mut self) -> &mut ReplayOptions {
        &mut self.replay_options
    }

    /// Attaches a shared solver [`ComponentCache`] to this instance's
    /// replays. Embedding drivers (a `light-serve` job pool, an explore
    /// campaign) hand every [`Light`] the same cache so identical
    /// location groups across recordings solve once and hit thereafter.
    /// A no-op when turbo solving was explicitly disabled.
    pub fn set_solver_cache(&mut self, cache: ComponentCache) {
        if let Some(turbo) = &mut self.replay_options.turbo {
            turbo.cache = Some(cache);
        }
    }

    /// Sets the turbo component-pool worker count for this instance's
    /// replays (`0` = one per core). A no-op when turbo solving was
    /// explicitly disabled.
    pub fn set_solver_workers(&mut self, workers: usize) {
        if let Some(turbo) = &mut self.replay_options.turbo {
            turbo.workers = workers;
        }
    }

    /// Attaches an observability sink. Pipeline phases (`record`,
    /// `constraint-build`, `solve`, `replay-run`), per-thread lanes and
    /// end-of-phase counters are emitted to it; with no sink attached (the
    /// default) every instrumentation site reduces to one untaken branch.
    pub fn set_sink(&mut self, sink: Arc<dyn light_obs::Sink>) {
        self.obs = Obs::with_sink(sink);
    }

    /// The active observability handle (disabled unless [`Light::set_sink`]
    /// was called).
    pub fn observability(&self) -> &Obs {
        &self.obs
    }

    /// Attaches a causal run id to this pipeline. Every subsequent
    /// record/solve/replay pass emits its events under this id (see
    /// [`light_obs::Obs::with_run_id`]) and [`ReplayReport::run_id`]
    /// carries it, so one invocation's artifacts are joinable across
    /// trace exports, progress streams, and the `light-watch` registry.
    /// Works with or without a sink attached.
    pub fn set_run_id(&mut self, run: light_obs::RunId) {
        self.obs = self.obs.clone().with_run_id(run);
    }

    /// Attaches a flight-recorder sink. Every pipeline stage — the
    /// recorder's dependence/run/elision path, the controlled scheduler's
    /// admission decisions, the constraint builder's census and the
    /// solver's progress ticks — emits compact [`light_obs::FlightEvent`]s
    /// to it. With no sink attached (the default) each emit site is one
    /// untaken branch, and recordings are byte-identical either way.
    pub fn set_flight_sink(&mut self, sink: Arc<dyn light_obs::FlightSink>) {
        self.flight = light_obs::Flight::with_sink(sink);
    }

    /// The active flight handle (disabled unless
    /// [`Light::set_flight_sink`] was called).
    pub fn flight(&self) -> &light_obs::Flight {
        &self.flight
    }

    /// The analysis products (shared policy, guarded locations, races).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The program under test.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The active variant configuration.
    pub fn config(&self) -> LightConfig {
        self.config
    }

    fn guarded_sets(&self) -> (HashSet<u32>, HashSet<u32>) {
        let fields = self.analysis.guarded.fields.keys().map(|f| f.0).collect();
        let globals = self.analysis.guarded.globals.keys().map(|g| g.0).collect();
        (fields, globals)
    }

    /// Creates a fresh recorder wired to this instance's configuration.
    /// Useful for driving custom runs (e.g. the overhead benchmarks).
    pub fn make_recorder(&self) -> Arc<LightRecorder> {
        let (fields, globals) = self.guarded_sets();
        let mut recorder = LightRecorder::new(self.config, fields, globals);
        if let Some(tuning) = self.tuning {
            recorder = recorder.with_tuning(tuning);
        }
        if self.flight.enabled() {
            recorder.with_flight(self.flight.clone())
        } else {
            recorder
        }
    }

    /// Records an original run under native (free) scheduling.
    ///
    /// # Errors
    ///
    /// [`SetupError`] when the program has no entry or the argument count
    /// does not match.
    pub fn record(&self, args: &[i64], seed: u64) -> Result<(Recording, RunOutcome), SetupError> {
        self.record_with(args, SchedulerSpec::Free, seed)
    }

    /// Records an original run under seeded chaos scheduling — the way
    /// buggy interleavings are found and captured deterministically.
    ///
    /// # Errors
    ///
    /// See [`Light::record`].
    pub fn record_chaos(
        &self,
        args: &[i64],
        seed: u64,
    ) -> Result<(Recording, RunOutcome), SetupError> {
        self.record_with(args, SchedulerSpec::Chaos { seed }, seed)
    }

    /// Records an original run under an explicit scheduler.
    ///
    /// # Errors
    ///
    /// See [`Light::record`].
    pub fn record_with(
        &self,
        args: &[i64],
        scheduler: SchedulerSpec,
        seed: u64,
    ) -> Result<(Recording, RunOutcome), SetupError> {
        let recorder = self.make_recorder();
        let config = ExecConfig {
            recorder: recorder.clone(),
            scheduler,
            policy: self.analysis.policy.clone(),
            nondet: NondetMode::Real { seed },
            obs: self.obs.clone(),
            flight: self.flight.clone(),
            ..ExecConfig::default()
        };
        let outcome = {
            let _span = self.obs.span("record");
            run(&self.program, args, config)?
        };
        let recording = recorder.take_recording(outcome.fault.clone(), args);
        if self.obs.enabled() {
            let s = &recording.stats;
            self.obs.counter("record.space_longs", s.space_longs);
            self.obs.counter("record.deps", s.deps);
            self.obs.counter("record.runs", s.runs);
            self.obs.counter("record.o2_skipped", s.o2_skipped);
            self.obs
                .counter("record.stripe_contention", s.stripe_contention);
            self.obs
                .counter("record.stripe_count", recorder.stripe_count() as u64);
            self.obs
                .counter("record.stripe_resizes", recorder.stripe_resizes());
            self.obs
                .counter("record.batch_flushes", recorder.batch_flushes());
        }
        Ok((recording, outcome))
    }

    /// Computes the replay schedule for `recording` (Table 1's solver
    /// phase) without running it.
    ///
    /// # Errors
    ///
    /// [`ScheduleError`] if the constraint system cannot be solved.
    pub fn schedule(
        &self,
        recording: &Recording,
    ) -> Result<(ReplaySchedule, SolveStats), ScheduleError> {
        replay::compute_schedule_with(
            recording,
            &self.analysis,
            self.config.o2,
            &self.obs,
            &self.flight,
            self.replay_options.turbo.as_ref(),
        )
        .map(|(schedule, stats, _, _)| (schedule, stats))
    }

    /// Replays `recording` and checks Theorem 1's correlation criterion.
    ///
    /// # Errors
    ///
    /// See [`replay`].
    pub fn replay(&self, recording: &Recording) -> Result<ReplayReport, ReplayError> {
        let mut options = self.replay_options.clone();
        if self.flight.enabled() {
            options.flight = self.flight.clone();
        }
        replay::replay_traced(
            &self.program,
            recording,
            &self.analysis,
            self.config.o2,
            &options,
            &self.obs,
        )
    }

    /// Searches chaos seeds for a run exhibiting a program bug; returns
    /// the first faulting recording.
    pub fn find_bug(
        &self,
        args: &[i64],
        seeds: std::ops::Range<u64>,
    ) -> Option<(Recording, RunOutcome)> {
        for seed in seeds {
            let Ok((recording, outcome)) = self.record_chaos(args, seed) else {
                return None;
            };
            if outcome.program_bug().is_some() {
                return Some((recording, outcome));
            }
        }
        None
    }
}
