//! The replay phase: schedule computation, controlled re-execution, and
//! the Theorem 1 correlation check.

use crate::constraints::{ConstraintSystem, ScheduleError};
use crate::recording::Recording;
use light_analysis::Analysis;
use light_obs::{Histogram, MetricsSnapshot, Obs, PhaseRecord, RunMetrics};
use light_runtime::{
    run, ExecConfig, FaultKind, FaultReport, HaltFlag, NondetMode, NullRecorder, Recorder,
    ReplaySchedule, RunOutcome, SchedulerSpec, SetupError,
};
use light_solver::{SolveStats, TurboOptions, TurboStats};
use lir::Program;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Options controlling the replay run.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// How long one event may wait for its schedule slot before the run is
    /// declared divergent.
    pub gate_timeout: Duration,
    /// Overall wall-clock budget of the replay run.
    pub wall_timeout: Duration,
    /// Flight recorder threaded through the replay pipeline: the
    /// constraint builder's census, the solver's progress ticks, and the
    /// controlled scheduler's admission decisions emit to it. Disabled by
    /// default (one untaken branch per site).
    pub flight: light_obs::Flight,
    /// Turbo solving: component decomposition, constraint preprocessing,
    /// and a parallel component pool ([`light_solver::TurboOptions`]).
    /// `Some(default)` by default — single-component recordings still take
    /// the exact sequential path, so schedules are unchanged. `None`
    /// forces the plain sequential solver.
    pub turbo: Option<TurboOptions>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        Self {
            gate_timeout: Duration::from_secs(10),
            wall_timeout: Duration::from_secs(60),
            flight: light_obs::Flight::disabled(),
            turbo: Some(TurboOptions::default()),
        }
    }
}

/// The result of a replay attempt.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The replay run's outcome.
    pub outcome: RunOutcome,
    /// Whether the replay reproduced the original observation per
    /// Theorem 1: for a faulting recording, a *correlated* fault (same
    /// thread, counter, statement, kind and illegal value); for a clean
    /// recording, a clean replay.
    pub correlated: bool,
    /// Solver statistics (the "Solve(s)" column of Table 1).
    pub solve_stats: SolveStats,
    /// Number of events in the enforced total order.
    pub schedule_len: u32,
    /// The unified metric snapshot of the whole replay pipeline: the
    /// recording's recorder section, the solver, the controlled
    /// scheduler's enforcement counters, the replay run, and phase
    /// timings (constraint-build, solve, replay-run). Always populated,
    /// with or without a sink attached.
    pub metrics: MetricsSnapshot,
    /// The causal trace id this replay ran under, when the driving
    /// [`Obs`] handle carried one ([`light_obs::Obs::with_run_id`]);
    /// joins this report with trace exports, progress streams, and
    /// `light-watch` registry entries.
    pub run_id: Option<light_obs::RunId>,
}

/// Failure to replay.
#[derive(Debug)]
pub enum ReplayError {
    /// The constraint system could not be solved.
    Schedule(ScheduleError),
    /// The replay run could not be set up.
    Setup(SetupError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Schedule(e) => write!(f, "{e}"),
            ReplayError::Setup(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<ScheduleError> for ReplayError {
    fn from(e: ScheduleError) -> Self {
        ReplayError::Schedule(e)
    }
}

impl From<SetupError> for ReplayError {
    fn from(e: SetupError) -> Self {
        ReplayError::Setup(e)
    }
}

/// Computes the replay schedule for `recording`, marking the
/// lock-guarded locations from `analysis` as free (their order is
/// subsumed by the recorded monitor dependences, Lemma 4.2).
pub fn compute_schedule(
    recording: &Recording,
    analysis: &Analysis,
    o2: bool,
) -> Result<(ReplaySchedule, SolveStats), ScheduleError> {
    compute_schedule_traced(recording, analysis, o2, &Obs::disabled())
        .map(|(schedule, stats, _)| (schedule, stats))
}

/// [`compute_schedule`] with observability: emits `constraint-build` and
/// `solve` pipeline spans to `obs` and returns the same timings as
/// [`PhaseRecord`]s for embedding in a [`MetricsSnapshot`].
///
/// # Errors
///
/// See [`compute_schedule`].
pub fn compute_schedule_traced(
    recording: &Recording,
    analysis: &Analysis,
    o2: bool,
    obs: &Obs,
) -> Result<(ReplaySchedule, SolveStats, Vec<PhaseRecord>), ScheduleError> {
    compute_schedule_instrumented(recording, analysis, o2, obs, &light_obs::Flight::disabled())
}

/// [`compute_schedule_traced`] with a flight recorder attached to the
/// constraint builder and solver: emits `constraint-group` census events
/// and `solver-tick` progress events to `flight` in addition to the
/// pipeline spans on `obs`.
///
/// # Errors
///
/// See [`compute_schedule`].
pub fn compute_schedule_instrumented(
    recording: &Recording,
    analysis: &Analysis,
    o2: bool,
    obs: &Obs,
    flight: &light_obs::Flight,
) -> Result<(ReplaySchedule, SolveStats, Vec<PhaseRecord>), ScheduleError> {
    compute_schedule_with(recording, analysis, o2, obs, flight, None)
        .map(|(schedule, stats, _, phases)| (schedule, stats, phases))
}

/// The full-control schedule computation: observability spans, flight
/// events, and — when `turbo` is given — component-sharded parallel
/// solving with preprocessing and the component cache
/// ([`light_solver::OrderSolver::solve_turbo`]). Returns the turbo
/// breakdown alongside the aggregate [`SolveStats`]; it is `None` when
/// the sequential path was requested.
///
/// # Errors
///
/// See [`compute_schedule`].
pub fn compute_schedule_with(
    recording: &Recording,
    analysis: &Analysis,
    o2: bool,
    obs: &Obs,
    flight: &light_obs::Flight,
    turbo: Option<&TurboOptions>,
) -> Result<(ReplaySchedule, SolveStats, Option<TurboStats>, Vec<PhaseRecord>), ScheduleError> {
    let mut phases = Vec::new();
    let mut timed = |name: &str, start_us: u64| {
        phases.push(PhaseRecord {
            name: name.to_string(),
            start_us,
            dur_us: light_obs::now_us().saturating_sub(start_us),
        });
    };

    let start = light_obs::now_us();
    let sys = {
        let _span = obs.span("constraint-build");
        let mut sys = ConstraintSystem::build(recording);
        if flight.enabled() {
            sys.set_flight(flight.clone());
        }
        sys
    };
    timed("constraint-build", start);

    let start = light_obs::now_us();
    let (mut schedule, stats, turbo_stats) = {
        let _span = obs.span("solve");
        sys.solve_with(recording, turbo)?
    };
    timed("solve", start);

    if o2 {
        for &field in analysis.guarded.fields.keys() {
            schedule.free_field(field.0);
        }
        for &global in analysis.guarded.globals.keys() {
            schedule.free_global(global.0);
        }
    }
    Ok((schedule, stats, turbo_stats, phases))
}

/// Runs the replay: controlled scheduling, scripted nondeterminism,
/// wake-all notify semantics.
///
/// # Errors
///
/// [`ReplayError`] if the schedule cannot be computed or the program has no
/// entry point; divergence *during* the run surfaces as a
/// [`FaultKind::ReplayDiverged`] fault in the report instead.
pub fn replay(
    program: &Arc<Program>,
    recording: &Recording,
    analysis: &Analysis,
    o2: bool,
    options: &ReplayOptions,
) -> Result<ReplayReport, ReplayError> {
    replay_traced(program, recording, analysis, o2, options, &Obs::disabled())
}

/// [`replay`] with observability: emits `constraint-build`, `solve` and
/// `replay-run` pipeline spans to `obs`, threads `obs` into the replay
/// run (per-thread lanes), and fills [`ReplayReport::metrics`] with phase
/// timings in addition to the always-collected counter sections.
///
/// # Errors
///
/// See [`replay`].
pub fn replay_traced(
    program: &Arc<Program>,
    recording: &Recording,
    analysis: &Analysis,
    o2: bool,
    options: &ReplayOptions,
    obs: &Obs,
) -> Result<ReplayReport, ReplayError> {
    replay_observed(
        program,
        recording,
        analysis,
        o2,
        options,
        obs,
        Arc::new(NullRecorder),
        None,
    )
}

/// [`replay_traced`] with an observer attached to the replay run: the
/// given recorder's hooks see every shared access the controlled run
/// makes (used by the doctor's divergence checker), and `halt`, when
/// provided, lets the observer wind the run down early. Replay behavior
/// is otherwise identical — the observer must not perturb the events.
///
/// # Errors
///
/// See [`replay`].
#[allow(clippy::too_many_arguments)]
pub fn replay_observed(
    program: &Arc<Program>,
    recording: &Recording,
    analysis: &Analysis,
    o2: bool,
    options: &ReplayOptions,
    obs: &Obs,
    observer: Arc<dyn Recorder>,
    halt: Option<HaltFlag>,
) -> Result<ReplayReport, ReplayError> {
    let (schedule, solve_stats, turbo_stats, mut phases) = compute_schedule_with(
        recording,
        analysis,
        o2,
        obs,
        &options.flight,
        options.turbo.as_ref(),
    )?;
    let schedule_len = schedule.ordered_len();
    let config = ExecConfig {
        recorder: observer,
        scheduler: SchedulerSpec::Controlled {
            schedule,
            timeout: options.gate_timeout,
        },
        policy: analysis.policy.clone(),
        nondet: NondetMode::Scripted(recording.nondet.clone()),
        wake_all_on_notify: true,
        wall_timeout: options.wall_timeout,
        obs: obs.clone(),
        halt,
        flight: options.flight.clone(),
        ..ExecConfig::default()
    };
    let start = light_obs::now_us();
    let outcome = {
        let _span = obs.span("replay-run");
        run(program, &recording.args, config)?
    };
    phases.push(PhaseRecord {
        name: "replay-run".to_string(),
        start_us: start,
        dur_us: light_obs::now_us().saturating_sub(start),
    });
    let correlated = faults_correlate(recording.fault.as_ref(), outcome.fault.as_ref());
    let mut latencies = std::collections::BTreeMap::new();
    for p in &phases {
        latencies
            .entry(p.name.clone())
            .or_insert_with(Histogram::new)
            .record(p.dur_us);
    }
    let metrics = MetricsSnapshot {
        record: Some(recording.metrics()),
        solver: Some(solve_stats.metrics()),
        turbo: turbo_stats.map(|t| t.metrics()),
        scheduler: outcome.sched,
        replay_run: Some(RunMetrics {
            duration_ns: outcome.stats.duration.as_nanos() as u64,
            threads: outcome.stats.threads as u64,
            events: outcome.stats.events,
            objects: outcome.stats.objects as u64,
        }),
        phases,
        latencies,
        ..Default::default()
    };
    Ok(ReplayReport {
        outcome,
        correlated,
        solve_stats,
        schedule_len,
        metrics,
        run_id: obs.run_id(),
    })
}

/// Theorem 1's success criterion, with deadlocks compared by kind (a
/// deadlock has no single faulting statement; the guarantee is that the
/// replay neither misses nor introduces deadlocks, Section 4.3).
pub fn faults_correlate(original: Option<&FaultReport>, replayed: Option<&FaultReport>) -> bool {
    match (original, replayed) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            if a.kind == FaultKind::Deadlock {
                // Replay of a deadlocked run ends blocked: detected either
                // as a deadlock (chaos detector) or as a timeout with all
                // ordered slots consumed.
                matches!(b.kind, FaultKind::Deadlock | FaultKind::Timeout)
            } else {
                a.correlates_with(b)
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::{Tid, Value};
    use lir::{BlockId, FuncId, InstrId};

    fn fault(kind: FaultKind, ctr: u64) -> FaultReport {
        FaultReport {
            tid: Tid::ROOT,
            ctr,
            instr: InstrId {
                func: FuncId(0),
                block: BlockId(0),
                idx: 0,
            },
            line: 1,
            kind,
            value: Value::NULL,
            detail: String::new(),
        }
    }

    #[test]
    fn clean_runs_correlate() {
        assert!(faults_correlate(None, None));
    }

    #[test]
    fn missing_fault_does_not_correlate() {
        let f = fault(FaultKind::NullDeref, 3);
        assert!(!faults_correlate(Some(&f), None));
        assert!(!faults_correlate(None, Some(&f)));
    }

    #[test]
    fn exact_fault_correlates() {
        let f = fault(FaultKind::NullDeref, 3);
        assert!(faults_correlate(Some(&f), Some(&f)));
        let other = fault(FaultKind::NullDeref, 4);
        assert!(!faults_correlate(Some(&f), Some(&other)));
    }

    #[test]
    fn deadlock_correlates_by_kind() {
        let a = fault(FaultKind::Deadlock, 3);
        let b = fault(FaultKind::Deadlock, 99);
        assert!(faults_correlate(Some(&a), Some(&b)));
        let t = fault(FaultKind::Timeout, 0);
        assert!(faults_correlate(Some(&a), Some(&t)));
    }
}
