//! The data model of a Light recording.

use light_runtime::{FaultReport, Tid};
use std::collections::HashMap;
use std::fmt;

/// Identifies one instrumented event: a thread and its local counter value
/// (the `(t, c)` access identifiers of the paper, Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccessId {
    pub tid: Tid,
    pub ctr: u64,
}

impl AccessId {
    /// Builds an access id.
    pub fn new(tid: Tid, ctr: u64) -> Self {
        Self { tid, ctr }
    }
}

impl fmt::Display for AccessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.tid, self.ctr)
    }
}

/// A recorded flow dependence: writer → a consecutive same-thread read
/// range `[r_first, r_last]` (the `prec` optimization of Algorithm 1 lines
/// 7–9 collapses consecutive reads of the same write into one record;
/// `r_first == r_last` for a single read).
///
/// `w == None` records reads of a location's *initial* value: no write may
/// be replayed before them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Dynamic location key (used to group dependences per location when
    /// building Equation 1; never needed during the replay run itself).
    pub loc: u64,
    pub w: Option<AccessId>,
    pub r_tid: Tid,
    pub r_first: u64,
    pub r_last: u64,
}

/// A recorded non-interleaved same-thread access run (Lemma 4.3, O1): all
/// events in `[first, last]` of `tid` touch `loc`, starting from external
/// write `w0` (if any), with own writes at `write_ctrs`. Only the start and
/// end accesses are ordered during replay; interior accesses run freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRec {
    pub loc: u64,
    pub tid: Tid,
    pub w0: Option<AccessId>,
    pub first: u64,
    pub last: u64,
    /// Counters of the run's own writes (needed so replay does not
    /// suppress them as blind, and to split dependences from interior
    /// writes).
    pub write_ctrs: Vec<u64>,
}

/// A notify → wait-after ordering (Section 4.3's wait/notify modeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalEdge {
    pub notify: AccessId,
    pub wait_after: AccessId,
}

/// Aggregate statistics of one recording.
///
/// Persisted with the recording (log format v2) and convertible to the
/// unified observability section via [`RecordStats::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordStats {
    /// Space in the paper's unit: the number of long integers recorded.
    pub space_longs: u64,
    /// Dependence edges recorded.
    pub deps: u64,
    /// Non-interleaved runs recorded.
    pub runs: u64,
    /// Speculative read-matching retries. On this substrate reads hold a
    /// shared stripe lock rather than looping optimistically (the paper's
    /// Section 2.3 loop), so this stays 0; the field is kept for log
    /// compatibility and for recorder variants that do retry.
    pub retries: u64,
    /// Accesses for which recording was skipped thanks to O2 (lock-guarded
    /// locations, Lemma 4.2).
    pub o2_skipped: u64,
    /// Accesses whose last-write-map stripe lock was contended: the
    /// non-blocking acquisition failed and the thread had to block.
    pub stripe_contention: u64,
}

impl RecordStats {
    /// Converts to the unified observability section.
    pub fn metrics(&self) -> light_obs::RecorderMetrics {
        light_obs::RecorderMetrics {
            space_longs: self.space_longs,
            deps: self.deps,
            runs: self.runs,
            retries: self.retries,
            o2_skipped: self.o2_skipped,
            stripe_contention: self.stripe_contention,
        }
    }
}

/// How a recording was discovered by schedule exploration: the search
/// strategy, the seed that reproduces the schedule, and how much searching
/// it took. Stamped by `light-explore` (log format v3); absent for
/// recordings captured directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreProvenance {
    /// Strategy name (`chaos`, `pct`, `race`).
    pub strategy: String,
    /// The seed whose schedule surfaced the failure.
    pub seed: u64,
    /// Schedules executed before this failure surfaced.
    pub schedules: u64,
    /// Whether the repro's decision trace was minimized before capture.
    pub minimized: bool,
    /// Decision-trace segments of the captured schedule (context-switch
    /// granularity; smaller is a simpler repro).
    pub trace_segments: u64,
}

/// Everything Light persists about an original run.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    pub deps: Vec<DepEdge>,
    pub runs: Vec<RunRec>,
    pub signals: Vec<SignalEdge>,
    /// Recorded nondeterministic intrinsic values, per thread in call order.
    pub nondet: HashMap<Tid, Vec<i64>>,
    /// Per thread, the counter of its last instrumented event — the event
    /// frontier a replay must not overtake (relevant for runs that halted
    /// at a fault).
    pub thread_extents: HashMap<Tid, u64>,
    /// The fault observed during the original run, if any.
    pub fault: Option<FaultReport>,
    /// The entry arguments of the original run.
    pub args: Vec<i64>,
    pub stats: RecordStats,
    /// How schedule exploration found this run, when it did.
    pub provenance: Option<ExploreProvenance>,
    /// Per-stripe breakdown of [`RecordStats::stripe_contention`]: one
    /// slot per last-write-map stripe counting the accesses whose stripe
    /// lock was contended. Empty when no contention was observed (the
    /// common case); dense (`STRIPES` slots) otherwise. Persisted from
    /// log format v4; older logs load with an empty histogram.
    pub stripe_hist: Vec<u64>,
}

impl Recording {
    /// Space consumption in Long-integer units (the measure of Figure 5).
    pub fn space_longs(&self) -> u64 {
        self.stats.space_longs
    }

    /// The recorder's unified metric section for this recording.
    pub fn metrics(&self) -> light_obs::RecorderMetrics {
        self.stats.metrics()
    }

    /// A metric snapshot describing this recording: the recorder section
    /// plus structural counters (threads, dependence edges, runs, signal
    /// edges) useful to `light-inspect` and the benches.
    pub fn snapshot(&self) -> light_obs::MetricsSnapshot {
        let mut snap = light_obs::MetricsSnapshot {
            record: Some(self.metrics()),
            ..Default::default()
        };
        snap.counters
            .insert("threads".into(), self.thread_extents.len() as u64);
        snap.counters.insert("deps".into(), self.deps.len() as u64);
        snap.counters.insert("runs".into(), self.runs.len() as u64);
        snap.counters
            .insert("signals".into(), self.signals.len() as u64);
        snap.stripe_hist = self.stripe_hist_sparse();
        snap
    }

    /// The non-zero entries of [`Recording::stripe_hist`] as
    /// `(stripe index, contended accesses)` pairs — the shape persisted in
    /// the log and exported through [`light_obs::MetricsSnapshot`].
    pub fn stripe_hist_sparse(&self) -> Vec<(u32, u64)> {
        self.stripe_hist
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }

    /// All write access ids participating in any dependence or run — the
    /// writes that are *not* blind.
    pub fn mentioned_writes(&self) -> Vec<AccessId> {
        let mut out = Vec::new();
        for d in &self.deps {
            if let Some(w) = d.w {
                out.push(w);
            }
        }
        for r in &self.runs {
            if let Some(w) = r.w0 {
                out.push(w);
            }
            for &c in &r.write_ctrs {
                out.push(AccessId::new(r.tid, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mentioned_writes_cover_deps_and_runs() {
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        let rec = Recording {
            deps: vec![DepEdge {
                loc: 1,
                w: Some(AccessId::new(t1, 5)),
                r_tid: t2,
                r_first: 2,
                r_last: 4,
            }],
            runs: vec![RunRec {
                loc: 1,
                tid: t2,
                w0: Some(AccessId::new(t1, 9)),
                first: 6,
                last: 9,
                write_ctrs: vec![7, 8],
            }],
            ..Recording::default()
        };
        let writes = rec.mentioned_writes();
        assert!(writes.contains(&AccessId::new(t1, 5)));
        assert!(writes.contains(&AccessId::new(t1, 9)));
        assert!(writes.contains(&AccessId::new(t2, 7)));
        assert!(writes.contains(&AccessId::new(t2, 8)));
    }
}
