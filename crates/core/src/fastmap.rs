//! A fast hasher for the recorder hot paths.
//!
//! The last-write map and the thread-local run tables are keyed by 64-bit
//! location keys and sit on the per-access fast path; SipHash (std's
//! default, DoS-resistant) costs more than the rest of the lookup. Keys
//! here are internal (never attacker-controlled), so a single multiply
//! (Fibonacci hashing) suffices.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys.
#[derive(Default)]
pub struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused on the hot path).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }
}

/// `HashMap` with the multiplicative hasher — for internal integer keys
/// only.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<KeyHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastmap_behaves_like_a_map() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&i));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        use std::hash::BuildHasher;
        let bh: BuildHasherDefault<KeyHasher> = Default::default();
        let h = |x: u64| {
            let mut hasher = bh.build_hasher();
            hasher.write_u64(x);
            hasher.finish()
        };
        // Top bits must differ for adjacent keys (HashMap uses the high
        // bits for its control bytes).
        assert_ne!(h(1) >> 57, h(2) >> 57);
    }
}
