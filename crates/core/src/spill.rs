//! Log persistence ("dump to disk") for recorders.
//!
//! The paper's measurement methodology configures *all* tools — Light,
//! Leap and Stride — to buffer recorded data and flush it to disk when the
//! buffer fills (Section 5.2). Persisting the log is part of a recorder's
//! real cost, and it scales with recorded volume — which is precisely
//! where Light's tight bound pays off. [`SpillSink`] is that disk sink:
//! recorders in spill mode append fixed-width words and drop the entries
//! from memory.
//!
//! Spill mode is measurement-oriented: the in-memory recording returned by
//! `take_recording` no longer contains the spilled entries (reloading the
//! file is not implemented), so replay-bound recordings should not enable
//! it. The overhead harnesses (`light-bench`) always enable it, matching
//! the paper's setup.

use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared append-only spill file counting the words written.
pub struct SpillSink {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
    words: AtomicU64,
}

impl SpillSink {
    /// Creates a spill file under the system temp directory.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn to_temp(prefix: &str) -> std::io::Result<Arc<Self>> {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}.spill",
            std::process::id(),
            UNIQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = File::create(&path)?;
        Ok(Arc::new(Self {
            writer: Mutex::new(BufWriter::new(file)),
            path,
            words: AtomicU64::new(0),
        }))
    }

    /// Appends `longs` to the file.
    pub fn write_longs(&self, longs: &[u64]) {
        let mut writer = self.writer.lock();
        for &l in longs {
            // Ignore I/O errors during measurement; the words counter still
            // reflects attempted volume.
            let _ = writer.write_all(&l.to_le_bytes());
        }
        self.words.fetch_add(longs.len() as u64, Ordering::Relaxed);
    }

    /// Total words written so far.
    pub fn words(&self) -> u64 {
        self.words.load(Ordering::Relaxed)
    }

    /// The file path (useful for diagnostics).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for SpillSink {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_counts_and_persists_words() {
        let sink = SpillSink::to_temp("light-test").unwrap();
        sink.write_longs(&[1, 2, 3]);
        sink.write_longs(&[4]);
        assert_eq!(sink.words(), 4);
        assert!(sink.path().exists());
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let sink = SpillSink::to_temp("light-test").unwrap();
        let path = sink.path().to_path_buf();
        sink.write_longs(&[9]);
        drop(sink);
        assert!(!path.exists());
    }
}
