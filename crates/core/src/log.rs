//! Binary log format for [`Recording`]s.
//!
//! The paper's recorder dumps its buffers to disk; this module provides
//! the equivalent compact binary format (little-endian, length-prefixed
//! sections) plus file save/load helpers.

use crate::recording::{
    AccessId, DepEdge, ExploreProvenance, Recording, RecordStats, RunRec, SignalEdge,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use light_runtime::{FaultKind, FaultReport, Tid, Value};
use lir::{BlockId, FuncId, InstrId};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

const MAGIC: u32 = 0x4C52_4543; // "LREC"
/// v1: original layout. v2 appends `stats.stripe_contention` so the full
/// metric snapshot survives save/load; v1 logs still load (the counter
/// reads back as 0). v3 appends an optional explore-provenance section
/// (strategy, seed, schedule count) stamped by `light-explore`; v1/v2
/// logs load with no provenance. v4 appends the sparse per-stripe
/// contention histogram (count + `(stripe u32, hits u64)` pairs); older
/// logs load with an empty histogram. The adaptive-stripe recorder needs
/// no format bump: sparse indices were always u32, so histograms from
/// grown maps (up to `MAX_STRIPE_COUNT`) persist in the same layout —
/// stripe layout is runtime-only and never shapes recording content.
const VERSION: u32 = 4;

/// The log format version this reader writes ([`write_recording`]) and the
/// newest version it accepts. Exposed so tools (`light-inspect --json`)
/// can report both the file's version and the reader's ceiling.
pub const LOG_FORMAT_VERSION: u32 = VERSION;

/// Reads the format version out of a serialized recording without parsing
/// the rest, accepting versions this reader cannot load (the caller can
/// report "file is v9, reader supports up to v3").
///
/// # Errors
///
/// [`LogError::Malformed`] when the data is too short or the magic does
/// not match.
pub fn peek_log_version(mut data: &[u8]) -> Result<u32, LogError> {
    let buf = &mut data;
    if remaining(buf) < 8 || buf.get_u32_le() != MAGIC {
        return Err(bad("missing magic"));
    }
    Ok(buf.get_u32_le())
}

/// Errors reading or writing a recording log.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The data is not a recording log or is truncated/corrupt.
    Malformed(String),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::Malformed(m) => write!(f, "malformed recording log: {m}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

fn bad(msg: &str) -> LogError {
    LogError::Malformed(msg.to_owned())
}

/// Serializes a recording to bytes.
pub fn write_recording(rec: &Recording) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);

    buf.put_u32_le(rec.deps.len() as u32);
    for d in &rec.deps {
        buf.put_u64_le(d.loc);
        put_opt_access(&mut buf, d.w);
        buf.put_u64_le(d.r_tid.raw());
        buf.put_u64_le(d.r_first);
        buf.put_u64_le(d.r_last);
    }

    buf.put_u32_le(rec.runs.len() as u32);
    for r in &rec.runs {
        buf.put_u64_le(r.loc);
        buf.put_u64_le(r.tid.raw());
        put_opt_access(&mut buf, r.w0);
        buf.put_u64_le(r.first);
        buf.put_u64_le(r.last);
        buf.put_u32_le(r.write_ctrs.len() as u32);
        for &c in &r.write_ctrs {
            buf.put_u64_le(c);
        }
    }

    buf.put_u32_le(rec.signals.len() as u32);
    for s in &rec.signals {
        put_access(&mut buf, s.notify);
        put_access(&mut buf, s.wait_after);
    }

    buf.put_u32_le(rec.nondet.len() as u32);
    let mut nondet: Vec<(&Tid, &Vec<i64>)> = rec.nondet.iter().collect();
    nondet.sort_by_key(|(t, _)| t.raw());
    for (tid, values) in nondet {
        buf.put_u64_le(tid.raw());
        buf.put_u32_le(values.len() as u32);
        for &v in values {
            buf.put_i64_le(v);
        }
    }

    buf.put_u32_le(rec.thread_extents.len() as u32);
    let mut extents: Vec<(&Tid, &u64)> = rec.thread_extents.iter().collect();
    extents.sort_by_key(|(t, _)| t.raw());
    for (tid, &ext) in extents {
        buf.put_u64_le(tid.raw());
        buf.put_u64_le(ext);
    }

    match &rec.fault {
        None => buf.put_u8(0),
        Some(f) => {
            buf.put_u8(1);
            buf.put_u64_le(f.tid.raw());
            buf.put_u64_le(f.ctr);
            buf.put_u32_le(f.instr.func.0);
            buf.put_u32_le(f.instr.block.0);
            buf.put_u32_le(f.instr.idx);
            buf.put_u32_le(f.line);
            buf.put_u8(fault_kind_code(f.kind));
            buf.put_u64_le(f.value.bits());
            let detail = f.detail.as_bytes();
            buf.put_u32_le(detail.len() as u32);
            buf.put_slice(detail);
        }
    }

    buf.put_u32_le(rec.args.len() as u32);
    for &a in &rec.args {
        buf.put_i64_le(a);
    }

    buf.put_u64_le(rec.stats.space_longs);
    buf.put_u64_le(rec.stats.deps);
    buf.put_u64_le(rec.stats.runs);
    buf.put_u64_le(rec.stats.retries);
    buf.put_u64_le(rec.stats.o2_skipped);
    buf.put_u64_le(rec.stats.stripe_contention);

    match &rec.provenance {
        None => buf.put_u8(0),
        Some(p) => {
            buf.put_u8(1);
            let strategy = p.strategy.as_bytes();
            buf.put_u32_le(strategy.len() as u32);
            buf.put_slice(strategy);
            buf.put_u64_le(p.seed);
            buf.put_u64_le(p.schedules);
            buf.put_u8(u8::from(p.minimized));
            buf.put_u64_le(p.trace_segments);
        }
    }

    // v4: sparse per-stripe contention histogram.
    let sparse = rec.stripe_hist_sparse();
    buf.put_u32_le(sparse.len() as u32);
    for (stripe, hits) in sparse {
        buf.put_u32_le(stripe);
        buf.put_u64_le(hits);
    }

    buf.freeze()
}

/// Deserializes a recording from bytes.
///
/// # Errors
///
/// [`LogError::Malformed`] when the data is not a valid recording log.
pub fn read_recording(mut data: &[u8]) -> Result<Recording, LogError> {
    let buf = &mut data;
    if remaining(buf) < 8 || buf.get_u32_le() != MAGIC {
        return Err(bad("missing magic"));
    }
    let version = buf.get_u32_le();
    if version == 0 || version > VERSION {
        return Err(LogError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let ndeps = get_u32(buf)? as usize;
    let mut deps = Vec::with_capacity(ndeps.min(1 << 20));
    for _ in 0..ndeps {
        ensure(buf, 8)?;
        let loc = buf.get_u64_le();
        let w = get_opt_access(buf)?;
        ensure(buf, 24)?;
        let r_tid = Tid::from_raw(buf.get_u64_le());
        let r_first = buf.get_u64_le();
        let r_last = buf.get_u64_le();
        deps.push(DepEdge {
            loc,
            w,
            r_tid,
            r_first,
            r_last,
        });
    }

    let nruns = get_u32(buf)? as usize;
    let mut runs = Vec::with_capacity(nruns.min(1 << 20));
    for _ in 0..nruns {
        ensure(buf, 16)?;
        let loc = buf.get_u64_le();
        let tid = Tid::from_raw(buf.get_u64_le());
        let w0 = get_opt_access(buf)?;
        ensure(buf, 16)?;
        let first = buf.get_u64_le();
        let last = buf.get_u64_le();
        let nw = get_u32(buf)? as usize;
        ensure(buf, nw * 8)?;
        let write_ctrs = (0..nw).map(|_| buf.get_u64_le()).collect();
        runs.push(RunRec {
            loc,
            tid,
            w0,
            first,
            last,
            write_ctrs,
        });
    }

    let nsignals = get_u32(buf)? as usize;
    let mut signals = Vec::with_capacity(nsignals.min(1 << 20));
    for _ in 0..nsignals {
        let notify = get_access(buf)?;
        let wait_after = get_access(buf)?;
        signals.push(SignalEdge { notify, wait_after });
    }

    let ntids = get_u32(buf)? as usize;
    let mut nondet = HashMap::new();
    for _ in 0..ntids {
        ensure(buf, 8)?;
        let tid = Tid::from_raw(buf.get_u64_le());
        let n = get_u32(buf)? as usize;
        ensure(buf, n * 8)?;
        nondet.insert(tid, (0..n).map(|_| buf.get_i64_le()).collect());
    }

    let nextents = get_u32(buf)? as usize;
    let mut thread_extents = HashMap::new();
    for _ in 0..nextents {
        ensure(buf, 16)?;
        let tid = Tid::from_raw(buf.get_u64_le());
        let ext = buf.get_u64_le();
        thread_extents.insert(tid, ext);
    }

    ensure(buf, 1)?;
    let fault = if buf.get_u8() == 1 {
        ensure(buf, 8 + 8 + 4 + 4 + 4 + 4 + 1 + 8 + 4)?;
        let tid = Tid::from_raw(buf.get_u64_le());
        let ctr = buf.get_u64_le();
        let func = FuncId(buf.get_u32_le());
        let block = BlockId(buf.get_u32_le());
        let idx = buf.get_u32_le();
        let line = buf.get_u32_le();
        let kind = fault_kind_from_code(buf.get_u8())?;
        let value = Value::from_bits(buf.get_u64_le());
        let dlen = buf.get_u32_le() as usize;
        ensure(buf, dlen)?;
        let mut detail = vec![0u8; dlen];
        buf.copy_to_slice(&mut detail);
        Some(FaultReport {
            tid,
            ctr,
            instr: InstrId { func, block, idx },
            line,
            kind,
            value,
            detail: String::from_utf8_lossy(&detail).into_owned(),
        })
    } else {
        None
    };

    let nargs = get_u32(buf)? as usize;
    ensure(buf, nargs * 8)?;
    let args = (0..nargs).map(|_| buf.get_i64_le()).collect();

    ensure(buf, 40)?;
    let stats = RecordStats {
        space_longs: buf.get_u64_le(),
        deps: buf.get_u64_le(),
        runs: buf.get_u64_le(),
        retries: buf.get_u64_le(),
        o2_skipped: buf.get_u64_le(),
        stripe_contention: if version >= 2 {
            ensure(buf, 8)?;
            buf.get_u64_le()
        } else {
            0
        },
    };

    let provenance = if version >= 3 {
        ensure(buf, 1)?;
        if buf.get_u8() == 1 {
            let slen = get_u32(buf)? as usize;
            ensure(buf, slen)?;
            let mut strategy = vec![0u8; slen];
            buf.copy_to_slice(&mut strategy);
            ensure(buf, 8 + 8 + 1 + 8)?;
            let seed = buf.get_u64_le();
            let schedules = buf.get_u64_le();
            let minimized = buf.get_u8() != 0;
            let trace_segments = buf.get_u64_le();
            Some(ExploreProvenance {
                strategy: String::from_utf8_lossy(&strategy).into_owned(),
                seed,
                schedules,
                minimized,
                trace_segments,
            })
        } else {
            None
        }
    } else {
        None
    };

    let mut stripe_hist = Vec::new();
    if version >= 4 {
        let nstripes = get_u32(buf)? as usize;
        ensure(buf, nstripes * 12)?;
        for _ in 0..nstripes {
            let stripe = buf.get_u32_le() as usize;
            let hits = buf.get_u64_le();
            if stripe >= crate::recorder::MAX_STRIPE_COUNT {
                return Err(LogError::Malformed(format!(
                    "stripe index {stripe} out of range"
                )));
            }
            // Dense vector sized to the smallest power-of-two stripe
            // layout covering every index seen (adaptive recorders can
            // report indices past the base 256).
            let want = (stripe + 1)
                .next_power_of_two()
                .max(crate::recorder::STRIPE_COUNT);
            if stripe_hist.len() < want {
                stripe_hist.resize(want, 0);
            }
            stripe_hist[stripe] = hits;
        }
    }

    Ok(Recording {
        deps,
        runs,
        signals,
        nondet,
        thread_extents,
        fault,
        args,
        stats,
        provenance,
        stripe_hist,
    })
}

/// Saves a recording to a file.
///
/// # Errors
///
/// [`LogError::Io`] on filesystem failures.
pub fn save_recording(rec: &Recording, path: impl AsRef<Path>) -> Result<(), LogError> {
    std::fs::write(path, write_recording(rec))?;
    Ok(())
}

/// Loads a recording from a file.
///
/// # Errors
///
/// [`LogError`] on I/O failure or malformed content.
pub fn load_recording(path: impl AsRef<Path>) -> Result<Recording, LogError> {
    let data = std::fs::read(path)?;
    read_recording(&data)
}

/// [`save_recording`] wrapped in a `log-persist` pipeline span.
///
/// # Errors
///
/// See [`save_recording`].
pub fn save_recording_traced(
    rec: &Recording,
    path: impl AsRef<Path>,
    obs: &light_obs::Obs,
) -> Result<(), LogError> {
    let _span = obs.span("log-persist");
    save_recording(rec, path)
}

/// [`load_recording`] wrapped in a `log-load` pipeline span.
///
/// # Errors
///
/// See [`load_recording`].
pub fn load_recording_traced(
    path: impl AsRef<Path>,
    obs: &light_obs::Obs,
) -> Result<Recording, LogError> {
    let _span = obs.span("log-load");
    load_recording(path)
}

fn remaining(buf: &&[u8]) -> usize {
    buf.len()
}

fn ensure(buf: &&[u8], n: usize) -> Result<(), LogError> {
    if remaining(buf) < n {
        Err(bad("truncated"))
    } else {
        Ok(())
    }
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, LogError> {
    ensure(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn put_access(buf: &mut BytesMut, id: AccessId) {
    buf.put_u64_le(id.tid.raw());
    buf.put_u64_le(id.ctr);
}

fn get_access(buf: &mut &[u8]) -> Result<AccessId, LogError> {
    ensure(buf, 16)?;
    let tid = Tid::from_raw(buf.get_u64_le());
    let ctr = buf.get_u64_le();
    Ok(AccessId { tid, ctr })
}

fn put_opt_access(buf: &mut BytesMut, id: Option<AccessId>) {
    match id {
        None => buf.put_u8(0),
        Some(id) => {
            buf.put_u8(1);
            put_access(buf, id);
        }
    }
}

fn get_opt_access(buf: &mut &[u8]) -> Result<Option<AccessId>, LogError> {
    ensure(buf, 1)?;
    if buf.get_u8() == 1 {
        Ok(Some(get_access(buf)?))
    } else {
        Ok(None)
    }
}

fn fault_kind_code(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::NullDeref => 0,
        FaultKind::DivByZero => 1,
        FaultKind::IndexOutOfBounds => 2,
        FaultKind::AssertFailed => 3,
        FaultKind::MonitorMisuse => 4,
        FaultKind::Deadlock => 5,
        FaultKind::TypeError => 6,
        FaultKind::StackOverflow => 7,
        FaultKind::StepLimit => 8,
        FaultKind::Timeout => 9,
        FaultKind::ReplayDiverged => 10,
        _ => 255,
    }
}

fn fault_kind_from_code(code: u8) -> Result<FaultKind, LogError> {
    Ok(match code {
        0 => FaultKind::NullDeref,
        1 => FaultKind::DivByZero,
        2 => FaultKind::IndexOutOfBounds,
        3 => FaultKind::AssertFailed,
        4 => FaultKind::MonitorMisuse,
        5 => FaultKind::Deadlock,
        6 => FaultKind::TypeError,
        7 => FaultKind::StackOverflow,
        8 => FaultKind::StepLimit,
        9 => FaultKind::Timeout,
        10 => FaultKind::ReplayDiverged,
        other => return Err(LogError::Malformed(format!("unknown fault kind {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recording {
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        let mut nondet = HashMap::new();
        nondet.insert(t1, vec![1, -2, 3]);
        Recording {
            deps: vec![DepEdge {
                loc: 42,
                w: Some(AccessId::new(t1, 7)),
                r_tid: t2,
                r_first: 3,
                r_last: 9,
            }],
            runs: vec![RunRec {
                loc: 43,
                tid: t2,
                w0: None,
                first: 10,
                last: 20,
                write_ctrs: vec![10, 15],
            }],
            signals: vec![SignalEdge {
                notify: AccessId::new(t1, 8),
                wait_after: AccessId::new(t2, 21),
            }],
            nondet,
            thread_extents: [(t1, 9u64), (t2, 22u64)].into_iter().collect(),
            fault: Some(FaultReport {
                tid: t2,
                ctr: 22,
                instr: InstrId {
                    func: FuncId(1),
                    block: BlockId(2),
                    idx: 3,
                },
                line: 14,
                kind: FaultKind::NullDeref,
                value: Value::NULL,
                detail: "x.f with x null".into(),
            }),
            args: vec![100, -5],
            stats: RecordStats {
                space_longs: 17,
                deps: 1,
                runs: 1,
                retries: 2,
                o2_skipped: 5,
                stripe_contention: 4,
            },
            provenance: Some(ExploreProvenance {
                strategy: "pct".into(),
                seed: 77,
                schedules: 1234,
                minimized: true,
                trace_segments: 6,
            }),
            stripe_hist: {
                let mut h = vec![0u64; crate::recorder::STRIPE_COUNT];
                h[10] = 3;
                h[200] = 1;
                h
            },
        }
    }

    /// Strips the v4 stripe-histogram section from a serialized sample,
    /// yielding the exact v3 byte layout (version field still says 4).
    fn strip_stripe_hist(bytes: &[u8]) -> Vec<u8> {
        // sample()'s histogram: 4 count + 2 * (4 stripe + 8 hits) = 28.
        let mut v = bytes.to_vec();
        v.truncate(v.len() - 28);
        v
    }

    #[test]
    fn round_trip_preserves_everything() {
        let rec = sample();
        let bytes = write_recording(&rec);
        let back = read_recording(&bytes).unwrap();
        assert_eq!(back.deps, rec.deps);
        assert_eq!(back.runs, rec.runs);
        assert_eq!(back.signals, rec.signals);
        assert_eq!(back.nondet, rec.nondet);
        assert_eq!(back.thread_extents, rec.thread_extents);
        assert_eq!(back.fault, rec.fault);
        assert_eq!(back.args, rec.args);
        assert_eq!(back.stats, rec.stats);
        assert_eq!(back.provenance, rec.provenance);
        assert_eq!(back.stripe_hist, rec.stripe_hist);
    }

    #[test]
    fn empty_recording_round_trips() {
        let rec = Recording::default();
        let back = read_recording(&write_recording(&rec)).unwrap();
        assert!(back.deps.is_empty());
        assert!(back.fault.is_none());
    }

    /// Strips the v3 provenance section from a serialized sample, yielding
    /// the exact v2 byte layout (version field still says 4).
    fn strip_provenance(bytes: &[u8]) -> Vec<u8> {
        // sample()'s provenance: 1 presence + 4 len + 3 "pct" + 8 seed +
        // 8 schedules + 1 minimized + 8 trace_segments = 33 bytes.
        let mut v = strip_stripe_hist(bytes);
        v.truncate(v.len() - 33);
        v
    }

    #[test]
    fn v1_logs_still_load_with_zero_contention() {
        // A v1 log is a v2 log minus the trailing stripe_contention word,
        // with the version field rewritten.
        let rec = sample();
        let mut v1 = strip_provenance(&write_recording(&rec));
        v1.truncate(v1.len() - 8);
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let back = read_recording(&v1).unwrap();
        assert_eq!(back.stats.stripe_contention, 0);
        assert_eq!(back.stats.o2_skipped, rec.stats.o2_skipped);
        assert_eq!(back.deps, rec.deps);
        assert_eq!(back.provenance, None);
    }

    #[test]
    fn v2_logs_load_with_no_provenance() {
        let rec = sample();
        let mut v2 = strip_provenance(&write_recording(&rec));
        v2[4..8].copy_from_slice(&2u32.to_le_bytes());
        let back = read_recording(&v2).unwrap();
        assert_eq!(back.stats, rec.stats);
        assert_eq!(back.provenance, None);
        assert_eq!(back.deps, rec.deps);
    }

    #[test]
    fn v3_logs_load_with_empty_stripe_hist() {
        let rec = sample();
        let mut v3 = strip_stripe_hist(&write_recording(&rec));
        v3[4..8].copy_from_slice(&3u32.to_le_bytes());
        let back = read_recording(&v3).unwrap();
        assert_eq!(back.stats, rec.stats);
        assert_eq!(back.provenance, rec.provenance);
        assert!(back.stripe_hist.is_empty());
    }

    #[test]
    fn rejects_out_of_range_stripe_index() {
        let rec = sample();
        let bytes = write_recording(&rec).to_vec();
        let mut bad = bytes.clone();
        // First sparse entry's stripe index sits 24 bytes from the end.
        let at = bad.len() - 24;
        bad[at..at + 4].copy_from_slice(&100_000u32.to_le_bytes());
        assert!(read_recording(&bad).is_err());
    }

    #[test]
    fn absent_provenance_round_trips() {
        let rec = Recording {
            provenance: None,
            ..sample()
        };
        let back = read_recording(&write_recording(&rec)).unwrap();
        assert_eq!(back.provenance, None);
        assert_eq!(back.stats, rec.stats);
    }

    #[test]
    fn peek_reads_version_without_parsing() {
        let bytes = write_recording(&sample());
        assert_eq!(peek_log_version(&bytes).unwrap(), LOG_FORMAT_VERSION);
        // A future version peeks fine even though read_recording rejects it.
        let mut v9 = bytes.to_vec();
        v9[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(peek_log_version(&v9).unwrap(), 9);
        assert!(read_recording(&v9).is_err());
        assert!(peek_log_version(b"nope").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_recording(b"not a log").is_err());
        assert!(read_recording(&[]).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = write_recording(&sample());
        for cut in [4usize, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                read_recording(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let rec = sample();
        let dir = std::env::temp_dir().join(format!("light-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rec.bin");
        save_recording(&rec, &path).unwrap();
        let back = load_recording(&path).unwrap();
        assert_eq!(back.deps, rec.deps);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
